//! Wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary shared by server and client.
//!
//! Frame layout: `u32` little-endian payload length, then that many bytes of
//! UTF-8 JSON. Both directions carry a *tagged* document: requests have an
//! `"op"` field, responses have a `"kind"` field plus an `"ok"` boolean
//! (`{"ok":true,...}` on success, `{"ok":false,"error":"..."}` on failure).
//! The tags exist only at the parse boundary — everything behind
//! [`Request::from_json`] / [`Response::from_json`] dispatches on the
//! [`Request`] and [`Response`] enums with exhaustive matches, so adding an
//! op is a compile-error-guided edit, not a string hunt.

use std::io::{Read, Write};

use gcmae_obs::{HistogramSnapshot, Snapshot};

use crate::json::{f32_to_json, json_to_f32, Json, JsonError};

/// Frames larger than this are rejected before allocation — a corrupt or
/// adversarial length prefix must not OOM the server.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Protocol-level failure.
#[derive(Debug)]
pub enum ProtocolError {
    /// Socket/file error.
    Io(std::io::Error),
    /// Length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// Payload is not valid UTF-8 JSON.
    BadJson(JsonError),
    /// Valid JSON but not a well-formed request/response.
    BadMessage(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io error: {e}"),
            ProtocolError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            ProtocolError::BadJson(e) => write!(f, "bad frame payload: {e}"),
            ProtocolError::BadMessage(msg) => write!(f, "bad message: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> Result<(), ProtocolError> {
    let payload = doc.dump();
    let len = payload.len();
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Blocks until a full frame arrives or the stream errors.
pub fn read_frame(r: &mut impl Read) -> Result<Json, ProtocolError> {
    let mut len_buf = [0_u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0_u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload).map_err(|_| ProtocolError::BadMessage("not utf-8"))?;
    Json::parse(text).map_err(ProtocolError::BadJson)
}

/// Highest protocol version this build speaks. Version 1 is the implicit
/// legacy protocol (frames without a `version` field); version 2 added the
/// version field itself plus the sharding envelope (`halo`, `top_k_owned`);
/// version 3 added `seq_probe`/`seq_state` (the gateway's recovery
/// reconciliation probe); version 4 added `sim_top_k`/`sim_top_k_owned`
/// (global similarity search over the ANN index) and the additive
/// ANN/quantized-store stats fields. Servers accept any frame tagged
/// `version <= PROTOCOL_VERSION` as well as untagged legacy frames, and
/// answer frames from the future with a typed [`Response::Error`] instead
/// of mis-parsing them.
pub const PROTOCOL_VERSION: u32 = 4;

/// Optional per-request header fields riding alongside the op payload:
/// a client-relative deadline, the client identity + mutation sequence
/// number used for exactly-once replay after reconnects, the protocol
/// version, and the sharding routing envelope. All fields are additive —
/// requests without them parse exactly as before, and servers that predate
/// them ignore unknown keys.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RequestMeta {
    /// Time budget in milliseconds, measured from server receipt. Expired
    /// requests are answered with [`Response::Expired`] instead of being
    /// executed.
    pub deadline_ms: Option<u64>,
    /// Stable client identity for mutation dedup (nonzero).
    pub client: Option<u64>,
    /// Client-assigned mutation sequence number, strictly increasing per
    /// client (starting at 1). A replay of the last acknowledged `seq`
    /// returns the recorded answer instead of re-applying the mutation.
    pub seq: Option<u64>,
    /// Protocol version of the sender. `None` means a legacy (v1) frame,
    /// which every server keeps accepting; a value above
    /// [`PROTOCOL_VERSION`] is rejected loudly at the connection boundary.
    pub version: Option<u32>,
    /// Sharding envelope: marks an `add_node` fanned out by the gateway as
    /// a halo replica (resident but owned by another shard), so the shard
    /// records the node as un-owned and keeps it out of `top_k_owned`
    /// answers. Meaningless outside a sharded tier.
    pub halo: Option<bool>,
}

impl RequestMeta {
    /// True when no header field is set — the wire document is then
    /// byte-identical to a pre-meta request.
    pub fn is_empty(&self) -> bool {
        self.deadline_ms.is_none()
            && self.client.is_none()
            && self.seq.is_none()
            && self.version.is_none()
            && self.halo.is_none()
    }

    /// Extracts the header fields from a request document; absent or
    /// malformed fields simply stay `None` (the header is best-effort by
    /// design — an old client never sends it).
    pub fn from_json(doc: &Json) -> RequestMeta {
        let u = |key: &str| doc.get(key).and_then(Json::as_f64).map(|v| v as u64);
        RequestMeta {
            deadline_ms: u("deadline_ms"),
            client: u("client").filter(|&c| c != 0),
            seq: u("seq").filter(|&s| s != 0),
            version: u("version").map(|v| v as u32),
            halo: doc.get("halo").and_then(Json::as_bool),
        }
    }

    /// `Err` with the rejection message when the frame claims a protocol
    /// version newer than this build speaks; `Ok` for legacy (untagged) and
    /// current frames. Checked at every connection boundary so a true
    /// mismatch fails loudly instead of mis-parsing.
    pub fn check_version(&self) -> Result<(), String> {
        match self.version {
            Some(v) if v > PROTOCOL_VERSION => Err(format!(
                "unsupported protocol version {v}: this server speaks <= {PROTOCOL_VERSION}"
            )),
            _ => Ok(()),
        }
    }
}

/// A client request. `Ping`, `Stats`, `Metrics`, `Embed`, `LinkScore`, and
/// `TopK` are read-only and may be coalesced into one encoder forward by the
/// scheduler; `AddEdges`, `AddNode`, and `Reindex` mutate the graph and act
/// as ordering barriers.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server counters (cache hits/misses, epoch, graph size).
    Stats,
    /// Point-in-time telemetry snapshot: counters, gauges, histograms.
    Metrics,
    /// Embeddings for the listed nodes.
    Embed {
        /// Target node ids (duplicates allowed; order is preserved).
        nodes: Vec<usize>,
    },
    /// Dot-product link scores for node pairs.
    LinkScore {
        /// `(u, v)` pairs to score.
        pairs: Vec<(usize, usize)>,
    },
    /// The `k` graph neighbors of `node` with the highest link score.
    TopK {
        /// Anchor node.
        node: usize,
        /// How many neighbors to return.
        k: usize,
    },
    /// Like [`Request::TopK`], but restricted to candidates the answering
    /// shard *owns*. The gateway fans this out to every shard holding the
    /// anchor and merges the per-shard heaps: each true neighbor is owned by
    /// exactly one shard, so the merged answer is exact with no dedup. On an
    /// unsharded server every node is owned and this equals `TopK`.
    TopKOwned {
        /// Anchor node.
        node: usize,
        /// How many neighbors to return.
        k: usize,
    },
    /// The `k` most similar nodes to `node` across the *whole* graph by
    /// embedding dot product (protocol v4). Candidates come from the ANN
    /// index over the quantized store; every returned score is re-computed
    /// from exact f32 rows, so scores are bit-identical to a brute-force
    /// scan. The anchor itself is excluded from the answer.
    SimTopK {
        /// Anchor node.
        node: usize,
        /// How many similar nodes to return.
        k: usize,
    },
    /// Shard-facing form of [`Request::SimTopK`] (protocol v4): restricted
    /// to candidates the answering shard *owns*, so the gateway can fan it
    /// out to every shard and merge the per-shard heaps without dedup. When
    /// the anchor node is not resident on the shard, the gateway ships the
    /// exact f32 anchor row in `anchor` and the shard searches by vector;
    /// `exclude` says whether the local `node` id must be filtered from the
    /// answer (true only on the shard that owns the anchor).
    SimTopKOwned {
        /// Anchor node in the answering shard's local id space (ignored
        /// when `anchor` carries the row and `exclude` is false).
        node: usize,
        /// How many similar nodes to return.
        k: usize,
        /// Exact f32 anchor row for shards where the anchor is not
        /// resident. Absent on the wire for same-shard searches.
        anchor: Option<Vec<f32>>,
        /// Whether to exclude local id `node` from the answer. Absent on
        /// the wire parses as `true` (the single-server behavior).
        exclude: bool,
    },
    /// The last mutation sequence number the server has acknowledged for
    /// the given client identity (0 when it has none on record). Read-only
    /// (protocol v3): a restarted gateway probes each shard under its own
    /// mutator identity to learn how far its repair-frame stream got, then
    /// re-delivers exactly the journaled tail the shard never applied.
    SeqProbe {
        /// Client identity to look up (the prober usually asks about its
        /// own).
        client: u64,
    },
    /// Incrementally insert undirected edges.
    AddEdges {
        /// `(u, v)` pairs to insert.
        edges: Vec<(usize, usize)>,
    },
    /// Append a node with the given neighbors and feature row.
    AddNode {
        /// Existing nodes to connect to.
        neighbors: Vec<usize>,
        /// Feature row for the new node (must match the model input width).
        features: Vec<f32>,
    },
    /// Relabel every resident node: new id `i` takes over old id
    /// `order[i]`'s adjacency, features, and ownership flag. `order` must be
    /// a permutation of the current node ids. Shard-internal (protocol v2):
    /// the gateway issues it after a repair whose installs broke a shard's
    /// ascending-global local-id order, because local-id order is the f32
    /// summation order of neighbor aggregation and therefore part of the
    /// bit-parity contract with an unsharded engine.
    Reindex {
        /// `order[new_id] = old_id`; must be a permutation.
        order: Vec<usize>,
    },
    /// Stop the server after answering.
    Shutdown,
}

impl Request {
    /// True for requests that never mutate engine state — the scheduler may
    /// batch these together.
    pub fn is_read_only(&self) -> bool {
        match self {
            Request::Ping
            | Request::Stats
            | Request::Metrics
            | Request::Embed { .. }
            | Request::LinkScore { .. }
            | Request::TopK { .. }
            | Request::TopKOwned { .. }
            | Request::SimTopK { .. }
            | Request::SimTopKOwned { .. }
            | Request::SeqProbe { .. } => true,
            Request::AddEdges { .. }
            | Request::AddNode { .. }
            | Request::Reindex { .. }
            | Request::Shutdown => false,
        }
    }

    /// Wire tag, also used as the per-op telemetry counter suffix.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Embed { .. } => "embed",
            Request::LinkScore { .. } => "link_score",
            Request::TopK { .. } => "top_k",
            Request::TopKOwned { .. } => "top_k_owned",
            Request::SimTopK { .. } => "sim_top_k",
            Request::SimTopKOwned { .. } => "sim_top_k_owned",
            Request::SeqProbe { .. } => "seq_probe",
            Request::AddEdges { .. } => "add_edges",
            Request::AddNode { .. } => "add_node",
            Request::Reindex { .. } => "reindex",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serializes the request to its wire document.
    pub fn to_json(&self) -> Json {
        self.to_json_with(&RequestMeta::default())
    }

    /// Serializes the request with header fields ([`RequestMeta`]) appended.
    /// With an empty meta this is byte-identical to [`Request::to_json`].
    pub fn to_json_with(&self, meta: &RequestMeta) -> Json {
        let mut fields = vec![("op".to_string(), Json::str(self.op_name()))];
        if let Some(ms) = meta.deadline_ms {
            fields.push(("deadline_ms".into(), Json::num(ms as f64)));
        }
        if let Some(c) = meta.client {
            fields.push(("client".into(), Json::num(c as f64)));
        }
        if let Some(s) = meta.seq {
            fields.push(("seq".into(), Json::num(s as f64)));
        }
        if let Some(v) = meta.version {
            fields.push(("version".into(), Json::num(v as f64)));
        }
        if let Some(h) = meta.halo {
            fields.push(("halo".into(), Json::Bool(h)));
        }
        match self {
            Request::Ping | Request::Stats | Request::Metrics | Request::Shutdown => {}
            Request::Embed { nodes } => {
                fields.push((
                    "nodes".into(),
                    Json::Arr(nodes.iter().map(|&n| Json::int(n)).collect()),
                ));
            }
            Request::LinkScore { pairs } => fields.push(("pairs".into(), pairs_to_json(pairs))),
            Request::TopK { node, k }
            | Request::TopKOwned { node, k }
            | Request::SimTopK { node, k } => {
                fields.push(("node".into(), Json::int(*node)));
                fields.push(("k".into(), Json::int(*k)));
            }
            Request::SimTopKOwned {
                node,
                k,
                anchor,
                exclude,
            } => {
                fields.push(("node".into(), Json::int(*node)));
                fields.push(("k".into(), Json::int(*k)));
                if let Some(row) = anchor {
                    fields.push((
                        "anchor".into(),
                        Json::Arr(row.iter().map(|&v| f32_to_json(v)).collect()),
                    ));
                }
                // `exclude: true` is the legacy-compatible default; only the
                // false case needs to ride the wire.
                if !exclude {
                    fields.push(("exclude".into(), Json::Bool(false)));
                }
            }
            // "probe_client", not "client": the header's own `client` key
            // identifies the *sender*, which need not be the identity being
            // probed.
            Request::SeqProbe { client } => {
                fields.push(("probe_client".into(), Json::num(*client as f64)));
            }
            Request::AddEdges { edges } => fields.push(("edges".into(), pairs_to_json(edges))),
            Request::AddNode {
                neighbors,
                features,
            } => {
                fields.push((
                    "neighbors".into(),
                    Json::Arr(neighbors.iter().map(|&n| Json::int(n)).collect()),
                ));
                fields.push((
                    "features".into(),
                    Json::Arr(features.iter().map(|&v| f32_to_json(v)).collect()),
                ));
            }
            Request::Reindex { order } => {
                fields.push((
                    "order".into(),
                    Json::Arr(order.iter().map(|&n| Json::int(n)).collect()),
                ));
            }
        }
        Json::Obj(fields)
    }

    /// Parses a wire document into a request.
    pub fn from_json(doc: &Json) -> Result<Request, ProtocolError> {
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::BadMessage("missing op"))?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "embed" => Ok(Request::Embed {
                nodes: usize_list(doc, "nodes")?,
            }),
            "link_score" => Ok(Request::LinkScore {
                pairs: pair_list(doc, "pairs")?,
            }),
            "top_k" | "top_k_owned" | "sim_top_k" | "sim_top_k_owned" => {
                let node = doc
                    .get("node")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("top_k needs node"))?;
                let k = doc
                    .get("k")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("top_k needs k"))?;
                match op {
                    "top_k" => Ok(Request::TopK { node, k }),
                    "top_k_owned" => Ok(Request::TopKOwned { node, k }),
                    "sim_top_k" => Ok(Request::SimTopK { node, k }),
                    _ => {
                        let anchor = match doc.get("anchor").and_then(Json::as_arr) {
                            Some(arr) => Some(
                                arr.iter()
                                    .map(|v| {
                                        json_to_f32(v).ok_or(ProtocolError::BadMessage(
                                            "anchor value must be a number",
                                        ))
                                    })
                                    .collect::<Result<Vec<f32>, _>>()?,
                            ),
                            None => None,
                        };
                        // Absent parses as true: a bare sim_top_k_owned
                        // behaves like the single-server op.
                        let exclude = doc
                            .get("exclude")
                            .and_then(Json::as_bool)
                            .unwrap_or(true);
                        Ok(Request::SimTopKOwned {
                            node,
                            k,
                            anchor,
                            exclude,
                        })
                    }
                }
            }
            "seq_probe" => {
                let client = doc
                    .get("probe_client")
                    .and_then(Json::as_f64)
                    .map(|v| v as u64)
                    .ok_or(ProtocolError::BadMessage("seq_probe needs probe_client"))?;
                Ok(Request::SeqProbe { client })
            }
            "add_edges" => Ok(Request::AddEdges {
                edges: pair_list(doc, "edges")?,
            }),
            "add_node" => {
                let neighbors = usize_list(doc, "neighbors")?;
                let features = doc
                    .get("features")
                    .and_then(Json::as_arr)
                    .ok_or(ProtocolError::BadMessage("add_node needs features"))?
                    .iter()
                    .map(|j| {
                        json_to_f32(j).ok_or(ProtocolError::BadMessage("feature must be a number"))
                    })
                    .collect::<Result<Vec<f32>, _>>()?;
                Ok(Request::AddNode {
                    neighbors,
                    features,
                })
            }
            "reindex" => Ok(Request::Reindex {
                order: usize_list(doc, "order")?,
            }),
            _ => Err(ProtocolError::BadMessage("unknown op")),
        }
    }
}

/// Typed scheduler + engine counters behind the `stats` op. Wire field names
/// match the historical flat response, so pre-enum clients keep parsing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Nodes in the resident graph.
    pub num_nodes: usize,
    /// Undirected edges in the resident graph.
    pub num_edges: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// Cache row lookups answered without recompute.
    pub cache_hits: u64,
    /// Cache row lookups that required a recompute.
    pub cache_misses: u64,
    /// Rows currently valid in the cache.
    pub cache_resident: usize,
    /// Mutations observed by the cache.
    pub cache_epoch: u64,
    /// Rows cleared by graph mutations (cumulative).
    pub invalidated: u64,
    /// Coalesced groups executed by the scheduler.
    pub batches: u64,
    /// Read-only jobs answered across all groups.
    pub batched_jobs: u64,
    /// Configured coalescing cap.
    pub max_batch: usize,
    /// Kernel backend servicing the engine's dense math (`reference`/`simd`
    /// on the wire). Absent in frames from pre-backend servers, which parses
    /// as the Reference default.
    pub backend: gcmae_tensor::Backend,
    /// Requests rejected at admission because the queue was full. Absent in
    /// frames from pre-fault-tolerance servers; parses as 0.
    pub shed: u64,
    /// Requests dropped because their deadline expired before execution.
    pub expired: u64,
    /// Replayed mutations answered from the dedup table.
    pub dedup_hits: u64,
    /// Mutations durably appended to the write-ahead log.
    pub wal_records: u64,
    /// Embedding rows served from stale cache entries under overload.
    pub stale_served: u64,
    /// Connections closed for stalling mid-frame past the read timeout.
    pub slow_closes: u64,
    /// Nodes this server owns (equal to `num_nodes` outside a sharded tier;
    /// on a shard, residents minus halo replicas). Absent in frames from
    /// pre-sharding servers; parses as 0 and is then treated as all-owned.
    pub owned_nodes: usize,
    /// Human-readable description of the training objective baked into the
    /// served model (`Objective::describe()`). Absent in frames from
    /// pre-objective servers; parses as the empty string.
    pub objective: String,
    /// Rows inserted into the ANN index (cumulative). Absent in frames from
    /// pre-v4 servers; parses as 0, like every ANN/quantized field below.
    pub ann_inserts: u64,
    /// ANN similarity searches answered.
    pub ann_searches: u64,
    /// Candidate nodes visited across all ANN searches (graph hops).
    pub ann_hops: u64,
    /// Bytes held by the ANN index's link lists and level tables.
    pub ann_resident_bytes: u64,
    /// Nodes currently present in the ANN index.
    pub ann_indexed: usize,
    /// Rows currently resident in the quantized sidecar store.
    pub quantized_rows: usize,
    /// Bytes held by the quantized sidecar store.
    pub quantized_bytes: u64,
}

/// A server response — exactly one variant per [`Request`] outcome, plus
/// [`Response::Error`]. `to_json`/`from_json` are total over the enum, so an
/// unhandled variant is a compile error.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `Ping` succeeded.
    Pong,
    /// `Stats` payload.
    Stats(ServerStats),
    /// `Embed` payload: one row per requested node, in request order.
    Embeddings {
        /// Embedding width.
        dim: usize,
        /// `rows[i]` is the embedding of `nodes[i]`.
        rows: Vec<Vec<f32>>,
    },
    /// `LinkScore` payload, in request order.
    Scores(Vec<f32>),
    /// `TopK` payload: `(neighbor, score)` ranked best-first.
    Neighbors(Vec<(usize, f32)>),
    /// `AddEdges` payload: how many cached rows were invalidated.
    EdgesAdded {
        /// Cached embedding rows cleared by this mutation.
        invalidated: usize,
    },
    /// `AddNode` payload: the id assigned to the new node.
    NodeAdded {
        /// New node id.
        node: usize,
    },
    /// `Reindex` payload: how many nodes were relabeled.
    Reindexed {
        /// Nodes in the relabeled graph.
        nodes: usize,
    },
    /// `SeqProbe` payload: the probed client's dedup horizon.
    SeqState {
        /// Last acknowledged mutation sequence for the probed client (0 when
        /// the server has none on record).
        last: u64,
    },
    /// `Metrics` payload: live telemetry snapshot.
    Metrics(Snapshot),
    /// `Shutdown` acknowledged; the server stops after this frame.
    ShutdownAck,
    /// The server shed this request at admission: its queue is full. The
    /// client should back off (at least `retry_after_ms`) and retry; the
    /// connection stays usable.
    Overloaded {
        /// Server-suggested minimum backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before execution; nothing was applied.
    Expired,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl Response {
    /// True unless this is a failure frame ([`Response::Error`],
    /// [`Response::Overloaded`], [`Response::Expired`]).
    pub fn is_ok(&self) -> bool {
        !matches!(
            self,
            Response::Error { .. } | Response::Overloaded { .. } | Response::Expired
        )
    }

    /// Wire tag under the `"kind"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Stats(_) => "stats",
            Response::Embeddings { .. } => "embeddings",
            Response::Scores(_) => "scores",
            Response::Neighbors(_) => "neighbors",
            Response::EdgesAdded { .. } => "edges_added",
            Response::NodeAdded { .. } => "node_added",
            Response::Reindexed { .. } => "reindexed",
            Response::SeqState { .. } => "seq_state",
            Response::Metrics(_) => "metrics",
            Response::ShutdownAck => "shutdown",
            Response::Overloaded { .. } => "overloaded",
            Response::Expired => "expired",
            Response::Error { .. } => "error",
        }
    }

    /// Serializes the response to its wire document. The `"ok"` boolean and
    /// the flat payload field names predate the `"kind"` tag and are kept
    /// for wire compatibility.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ok".to_string(), Json::Bool(self.is_ok())),
            ("kind".to_string(), Json::str(self.kind())),
        ];
        match self {
            Response::Pong => fields.push(("pong".into(), Json::Bool(true))),
            Response::Stats(s) => {
                fields.push(("num_nodes".into(), Json::int(s.num_nodes)));
                fields.push(("num_edges".into(), Json::int(s.num_edges)));
                fields.push(("embed_dim".into(), Json::int(s.embed_dim)));
                fields.push(("cache_hits".into(), Json::num(s.cache_hits as f64)));
                fields.push(("cache_misses".into(), Json::num(s.cache_misses as f64)));
                fields.push(("cache_resident".into(), Json::int(s.cache_resident)));
                fields.push(("cache_epoch".into(), Json::num(s.cache_epoch as f64)));
                fields.push(("invalidated".into(), Json::num(s.invalidated as f64)));
                fields.push(("batches".into(), Json::num(s.batches as f64)));
                fields.push(("batched_jobs".into(), Json::num(s.batched_jobs as f64)));
                fields.push(("max_batch".into(), Json::int(s.max_batch)));
                fields.push(("backend".into(), Json::str(s.backend.name())));
                fields.push(("shed".into(), Json::num(s.shed as f64)));
                fields.push(("expired".into(), Json::num(s.expired as f64)));
                fields.push(("dedup_hits".into(), Json::num(s.dedup_hits as f64)));
                fields.push(("wal_records".into(), Json::num(s.wal_records as f64)));
                fields.push(("stale_served".into(), Json::num(s.stale_served as f64)));
                fields.push(("slow_closes".into(), Json::num(s.slow_closes as f64)));
                fields.push(("owned_nodes".into(), Json::int(s.owned_nodes)));
                fields.push(("objective".into(), Json::str(&s.objective)));
                fields.push(("ann_inserts".into(), Json::num(s.ann_inserts as f64)));
                fields.push(("ann_searches".into(), Json::num(s.ann_searches as f64)));
                fields.push(("ann_hops".into(), Json::num(s.ann_hops as f64)));
                fields.push((
                    "ann_resident_bytes".into(),
                    Json::num(s.ann_resident_bytes as f64),
                ));
                fields.push(("ann_indexed".into(), Json::int(s.ann_indexed)));
                fields.push(("quantized_rows".into(), Json::int(s.quantized_rows)));
                fields.push(("quantized_bytes".into(), Json::num(s.quantized_bytes as f64)));
            }
            Response::Embeddings { dim, rows } => {
                fields.push(("dim".into(), Json::int(*dim)));
                fields.push((
                    "embeddings".into(),
                    Json::Arr(
                        rows.iter()
                            .map(|row| Json::Arr(row.iter().map(|&v| f32_to_json(v)).collect()))
                            .collect(),
                    ),
                ));
            }
            Response::Scores(scores) => fields.push((
                "scores".into(),
                Json::Arr(scores.iter().map(|&s| f32_to_json(s)).collect()),
            )),
            Response::Neighbors(ranked) => fields.push((
                "neighbors".into(),
                Json::Arr(
                    ranked
                        .iter()
                        .map(|&(v, s)| Json::Arr(vec![Json::int(v), f32_to_json(s)]))
                        .collect(),
                ),
            )),
            Response::EdgesAdded { invalidated } => {
                fields.push(("invalidated".into(), Json::int(*invalidated)));
            }
            Response::NodeAdded { node } => fields.push(("node".into(), Json::int(*node))),
            Response::Reindexed { nodes } => fields.push(("nodes".into(), Json::int(*nodes))),
            Response::SeqState { last } => {
                fields.push(("last".into(), Json::num(*last as f64)));
            }
            Response::Metrics(snap) => {
                fields.push((
                    "counters".into(),
                    Json::Obj(
                        snap.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::num(*v as f64)))
                            .collect(),
                    ),
                ));
                fields.push((
                    "gauges".into(),
                    Json::Obj(
                        snap.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::num(*v)))
                            .collect(),
                    ),
                ));
                fields.push((
                    "histograms".into(),
                    Json::Obj(
                        snap.histograms
                            .iter()
                            .map(|h| {
                                (
                                    h.name.clone(),
                                    Json::Obj(vec![
                                        ("count".into(), Json::num(h.count as f64)),
                                        ("sum".into(), Json::num(h.sum)),
                                        ("p50".into(), Json::num(h.p50)),
                                        ("p90".into(), Json::num(h.p90)),
                                        ("p99".into(), Json::num(h.p99)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
            Response::ShutdownAck => {}
            Response::Overloaded { retry_after_ms } => {
                // ok:false + error keeps pre-fault-tolerance clients working:
                // they see a generic server error and fail the call, which is
                // the correct degraded behavior for a shed.
                fields.push(("error".into(), Json::str("server overloaded")));
                fields.push(("retry_after_ms".into(), Json::num(*retry_after_ms as f64)));
            }
            Response::Expired => {
                fields.push(("error".into(), Json::str("deadline expired")));
            }
            Response::Error { message } => {
                fields.push(("error".into(), Json::str(message.clone())));
            }
        }
        Json::Obj(fields)
    }

    /// Parses a wire document into a response.
    pub fn from_json(doc: &Json) -> Result<Response, ProtocolError> {
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or(ProtocolError::BadMessage("response missing ok field"))?;
        if !ok {
            // Failure frames dispatch on the kind tag when present; anything
            // unrecognized (including legacy frames without a tag) degrades
            // to the generic error variant.
            match doc.get("kind").and_then(Json::as_str) {
                Some("overloaded") => {
                    let retry_after_ms = doc
                        .get("retry_after_ms")
                        .and_then(Json::as_f64)
                        .map(|v| v as u64)
                        .unwrap_or(0);
                    return Ok(Response::Overloaded { retry_after_ms });
                }
                Some("expired") => return Ok(Response::Expired),
                _ => {}
            }
            let message = doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_string();
            return Ok(Response::Error { message });
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(ProtocolError::BadMessage("response missing kind tag"))?;
        match kind {
            "pong" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShutdownAck),
            "stats" => {
                let us = |key| {
                    doc.get(key)
                        .and_then(Json::as_usize)
                        .ok_or(ProtocolError::BadMessage("stats field missing"))
                };
                let u64f = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_f64)
                        .map(|v| v as u64)
                        .ok_or(ProtocolError::BadMessage("stats field missing"))
                };
                Ok(Response::Stats(ServerStats {
                    num_nodes: us("num_nodes")?,
                    num_edges: us("num_edges")?,
                    embed_dim: us("embed_dim")?,
                    cache_hits: u64f("cache_hits")?,
                    cache_misses: u64f("cache_misses")?,
                    cache_resident: us("cache_resident")?,
                    cache_epoch: u64f("cache_epoch")?,
                    invalidated: u64f("invalidated")?,
                    batches: u64f("batches")?,
                    batched_jobs: u64f("batched_jobs")?,
                    max_batch: us("max_batch")?,
                    backend: doc
                        .get("backend")
                        .and_then(Json::as_str)
                        .and_then(gcmae_tensor::backend::parse_backend)
                        .unwrap_or_default(),
                    // Fault-tolerance counters are additive: absent in frames
                    // from older servers, parsing as 0.
                    shed: u64_or_zero(doc, "shed"),
                    expired: u64_or_zero(doc, "expired"),
                    dedup_hits: u64_or_zero(doc, "dedup_hits"),
                    wal_records: u64_or_zero(doc, "wal_records"),
                    stale_served: u64_or_zero(doc, "stale_served"),
                    slow_closes: u64_or_zero(doc, "slow_closes"),
                    owned_nodes: u64_or_zero(doc, "owned_nodes") as usize,
                    // Objective tag is additive and descriptive-only: lenient
                    // parse so pre-objective frames (and frames with a
                    // non-string value) still load.
                    objective: doc
                        .get("objective")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    // ANN/quantized-store counters are additive (v4): absent
                    // in frames from older servers, parsing as 0.
                    ann_inserts: u64_or_zero(doc, "ann_inserts"),
                    ann_searches: u64_or_zero(doc, "ann_searches"),
                    ann_hops: u64_or_zero(doc, "ann_hops"),
                    ann_resident_bytes: u64_or_zero(doc, "ann_resident_bytes"),
                    ann_indexed: u64_or_zero(doc, "ann_indexed") as usize,
                    quantized_rows: u64_or_zero(doc, "quantized_rows") as usize,
                    quantized_bytes: u64_or_zero(doc, "quantized_bytes"),
                }))
            }
            "embeddings" => {
                let dim = doc
                    .get("dim")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("embeddings missing dim"))?;
                let rows = doc
                    .get("embeddings")
                    .and_then(Json::as_arr)
                    .ok_or(ProtocolError::BadMessage("missing embeddings"))?
                    .iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or(ProtocolError::BadMessage("embedding row is not an array"))?
                            .iter()
                            .map(|v| {
                                json_to_f32(v).ok_or(ProtocolError::BadMessage("non-numeric value"))
                            })
                            .collect()
                    })
                    .collect::<Result<Vec<Vec<f32>>, _>>()?;
                Ok(Response::Embeddings { dim, rows })
            }
            "scores" => {
                let scores = doc
                    .get("scores")
                    .and_then(Json::as_arr)
                    .ok_or(ProtocolError::BadMessage("missing scores"))?
                    .iter()
                    .map(|v| json_to_f32(v).ok_or(ProtocolError::BadMessage("non-numeric score")))
                    .collect::<Result<Vec<f32>, _>>()?;
                Ok(Response::Scores(scores))
            }
            "neighbors" => {
                let ranked = doc
                    .get("neighbors")
                    .and_then(Json::as_arr)
                    .ok_or(ProtocolError::BadMessage("missing neighbors"))?
                    .iter()
                    .map(|item| {
                        let pair = item
                            .as_arr()
                            .ok_or(ProtocolError::BadMessage("neighbor is not a pair"))?;
                        let id = pair
                            .first()
                            .and_then(Json::as_usize)
                            .ok_or(ProtocolError::BadMessage("bad neighbor id"))?;
                        let score = pair
                            .get(1)
                            .and_then(json_to_f32)
                            .ok_or(ProtocolError::BadMessage("bad neighbor score"))?;
                        Ok((id, score))
                    })
                    .collect::<Result<Vec<(usize, f32)>, ProtocolError>>()?;
                Ok(Response::Neighbors(ranked))
            }
            "edges_added" => {
                let invalidated = doc
                    .get("invalidated")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("missing invalidated count"))?;
                Ok(Response::EdgesAdded { invalidated })
            }
            "node_added" => {
                let node = doc
                    .get("node")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("missing node id"))?;
                Ok(Response::NodeAdded { node })
            }
            "reindexed" => {
                let nodes = doc
                    .get("nodes")
                    .and_then(Json::as_usize)
                    .ok_or(ProtocolError::BadMessage("missing node count"))?;
                Ok(Response::Reindexed { nodes })
            }
            "seq_state" => {
                let last = doc
                    .get("last")
                    .and_then(Json::as_f64)
                    .map(|v| v as u64)
                    .ok_or(ProtocolError::BadMessage("missing last seq"))?;
                Ok(Response::SeqState { last })
            }
            "metrics" => Ok(Response::Metrics(snapshot_from_json(doc)?)),
            _ => Err(ProtocolError::BadMessage("unknown response kind")),
        }
    }
}

fn snapshot_from_json(doc: &Json) -> Result<Snapshot, ProtocolError> {
    let obj = |key: &'static str| match doc.get(key) {
        Some(Json::Obj(fields)) => Ok(fields.as_slice()),
        _ => Err(ProtocolError::BadMessage("metrics section missing")),
    };
    let counters = obj("counters")?
        .iter()
        .map(|(k, v)| {
            let n = v
                .as_f64()
                .ok_or(ProtocolError::BadMessage("counter must be a number"))?;
            Ok((k.clone(), n as u64))
        })
        .collect::<Result<Vec<(String, u64)>, ProtocolError>>()?;
    let gauges = obj("gauges")?
        .iter()
        .map(|(k, v)| {
            // A non-finite gauge serializes as `null`; recover it as NaN.
            Ok((k.clone(), v.as_f64().unwrap_or(f64::NAN)))
        })
        .collect::<Result<Vec<(String, f64)>, ProtocolError>>()?;
    let histograms = obj("histograms")?
        .iter()
        .map(|(k, v)| {
            let num = |key: &'static str| {
                v.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(ProtocolError::BadMessage("histogram field missing"))
            };
            Ok(HistogramSnapshot {
                name: k.clone(),
                count: num("count")? as u64,
                sum: num("sum")?,
                p50: num("p50")?,
                p90: num("p90")?,
                p99: num("p99")?,
            })
        })
        .collect::<Result<Vec<HistogramSnapshot>, ProtocolError>>()?;
    Ok(Snapshot {
        counters,
        gauges,
        histograms,
    })
}

fn u64_or_zero(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_f64).map(|v| v as u64).unwrap_or(0)
}

fn pairs_to_json(pairs: &[(usize, usize)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(u, v)| Json::Arr(vec![Json::int(u), Json::int(v)]))
            .collect(),
    )
}

fn usize_list(doc: &Json, key: &'static str) -> Result<Vec<usize>, ProtocolError> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or(ProtocolError::BadMessage("missing id list"))?
        .iter()
        .map(|j| {
            j.as_usize()
                .ok_or(ProtocolError::BadMessage("id must be a non-negative int"))
        })
        .collect()
}

fn pair_list(doc: &Json, key: &'static str) -> Result<Vec<(usize, usize)>, ProtocolError> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or(ProtocolError::BadMessage("missing pair list"))?
        .iter()
        .map(|j| {
            let pair = j
                .as_arr()
                .ok_or(ProtocolError::BadMessage("pair must be an array"))?;
            if pair.len() != 2 {
                return Err(ProtocolError::BadMessage("pair must have 2 elements"));
            }
            let u = pair[0]
                .as_usize()
                .ok_or(ProtocolError::BadMessage("pair id must be int"))?;
            let v = pair[1]
                .as_usize()
                .ok_or(ProtocolError::BadMessage("pair id must be int"))?;
            Ok((u, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_through_a_buffer() {
        let docs = vec![
            Request::Ping.to_json(),
            Request::Embed {
                nodes: vec![0, 5, 5, 2],
            }
            .to_json(),
            Request::AddNode {
                neighbors: vec![1, 2],
                features: vec![0.25, -1.5e-3],
            }
            .to_json(),
        ];
        let mut buf = Vec::new();
        for d in &docs {
            write_frame(&mut buf, d).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for d in &docs {
            assert_eq!(&read_frame(&mut cur).unwrap(), d);
        }
    }

    #[test]
    fn every_request_roundtrips_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Embed {
                nodes: vec![3, 1, 3],
            },
            Request::LinkScore {
                pairs: vec![(0, 1), (7, 7)],
            },
            Request::TopK { node: 4, k: 10 },
            Request::TopKOwned { node: 4, k: 10 },
            Request::SimTopK { node: 4, k: 10 },
            Request::SimTopKOwned {
                node: 4,
                k: 10,
                anchor: None,
                exclude: true,
            },
            Request::SimTopKOwned {
                node: 0,
                k: 5,
                anchor: Some(vec![0.25, -1.5e-3, 3.5e-8]),
                exclude: false,
            },
            Request::SeqProbe { client: 0x1234_5678 },
            Request::AddEdges {
                edges: vec![(1, 2), (0, 9)],
            },
            Request::AddNode {
                neighbors: vec![0],
                features: vec![1.0, 2.5],
            },
            Request::Reindex {
                order: vec![2, 0, 1],
            },
            Request::Shutdown,
        ];
        for r in reqs {
            let doc = r.to_json();
            let parsed = Json::parse(&doc.dump()).unwrap();
            assert_eq!(Request::from_json(&parsed).unwrap(), r);
        }
    }

    #[test]
    fn every_response_roundtrips_through_json() {
        let snap = Snapshot {
            counters: vec![("serve.requests.embed".into(), 12)],
            gauges: vec![("train.lr".into(), 0.0015)],
            histograms: vec![HistogramSnapshot {
                name: "serve.request.ns".into(),
                count: 12,
                sum: 48_000.0,
                p50: 4096.0,
                p90: 8192.0,
                p99: 8192.0,
            }],
        };
        let resps = vec![
            Response::Pong,
            Response::Stats(ServerStats {
                num_nodes: 20,
                owned_nodes: 18,
                num_edges: 31,
                embed_dim: 8,
                cache_hits: 100,
                cache_misses: 7,
                cache_resident: 20,
                cache_epoch: 2,
                invalidated: 5,
                batches: 9,
                batched_jobs: 40,
                max_batch: 32,
                backend: gcmae_tensor::Backend::Simd,
                shed: 3,
                expired: 1,
                dedup_hits: 2,
                wal_records: 17,
                stale_served: 6,
                slow_closes: 4,
                objective: "sce(\u{03b3}=2)+infonce".into(),
                ann_inserts: 20,
                ann_searches: 11,
                ann_hops: 340,
                ann_resident_bytes: 4096,
                ann_indexed: 20,
                quantized_rows: 20,
                quantized_bytes: 1460,
            }),
            Response::Embeddings {
                dim: 2,
                rows: vec![vec![1.0, -0.5], vec![0.25, 3.5e-8]],
            },
            Response::Scores(vec![0.5, -1.25]),
            Response::Neighbors(vec![(3, 0.75), (9, -0.5)]),
            Response::EdgesAdded { invalidated: 4 },
            Response::NodeAdded { node: 21 },
            Response::Reindexed { nodes: 54 },
            Response::SeqState { last: 17 },
            Response::Metrics(snap),
            Response::ShutdownAck,
            Response::Overloaded { retry_after_ms: 25 },
            Response::Expired,
            Response::Error {
                message: "node 999 out of range".into(),
            },
        ];
        for r in resps {
            let doc = r.to_json();
            let parsed = Json::parse(&doc.dump()).unwrap();
            assert_eq!(
                Response::from_json(&parsed).unwrap(),
                r,
                "kind {}",
                r.kind()
            );
        }
    }

    #[test]
    fn stats_backend_field_defaults_for_legacy_servers() {
        // A stats frame from a pre-backend server has no "backend" key; it
        // must still parse, landing on the Reference default.
        let mut doc = Response::Stats(ServerStats::default()).to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "backend");
        }
        let parsed = Json::parse(&doc.dump()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.backend, gcmae_tensor::Backend::Reference)
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // An unknown backend name degrades the same way instead of erroring.
        let weird = Json::parse(
            "{\"ok\":true,\"kind\":\"stats\",\"num_nodes\":0,\"num_edges\":0,\
             \"embed_dim\":0,\"cache_hits\":0,\"cache_misses\":0,\
             \"cache_resident\":0,\"cache_epoch\":0,\"invalidated\":0,\
             \"batches\":0,\"batched_jobs\":0,\"max_batch\":0,\
             \"backend\":\"quantum\"}",
        )
        .unwrap();
        match Response::from_json(&weird).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.backend, gcmae_tensor::Backend::Reference)
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_objective_field_defaults_for_legacy_servers() {
        // A stats frame from a pre-objective server has no "objective" key;
        // it must still parse, landing on the empty string.
        let mut doc = Response::Stats(ServerStats::default()).to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "objective");
        }
        let parsed = Json::parse(&doc.dump()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Stats(s) => assert_eq!(s.objective, ""),
            other => panic!("expected stats, got {other:?}"),
        }
        // A non-string value degrades the same way instead of erroring.
        let mut doc = Response::Stats(ServerStats::default()).to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "objective" {
                    *v = Json::int(3);
                }
            }
        }
        let parsed = Json::parse(&doc.dump()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Stats(s) => assert_eq!(s.objective, ""),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn stats_ann_fields_default_for_pre_v4_servers() {
        // A stats frame from a pre-v4 server carries none of the ANN or
        // quantized-store keys; each must parse as zero.
        let mut doc = Response::Stats(ServerStats::default()).to_json();
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| {
                !k.starts_with("ann_") && k != "quantized_rows" && k != "quantized_bytes"
            });
        }
        let parsed = Json::parse(&doc.dump()).unwrap();
        match Response::from_json(&parsed).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.ann_inserts, 0);
                assert_eq!(s.ann_searches, 0);
                assert_eq!(s.ann_hops, 0);
                assert_eq!(s.ann_resident_bytes, 0);
                assert_eq!(s.ann_indexed, 0);
                assert_eq!(s.quantized_rows, 0);
                assert_eq!(s.quantized_bytes, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn sim_top_k_owned_wire_defaults_match_the_single_server_op() {
        // A frame without anchor/exclude (the common same-shard case) must
        // parse with exclude defaulting to true.
        let doc = Json::parse("{\"op\":\"sim_top_k_owned\",\"node\":3,\"k\":2}").unwrap();
        assert_eq!(
            Request::from_json(&doc).unwrap(),
            Request::SimTopKOwned {
                node: 3,
                k: 2,
                anchor: None,
                exclude: true,
            }
        );
    }

    #[test]
    fn responses_keep_legacy_wire_fields() {
        // Pre-enum clients dispatch on `ok` and the flat payload names; the
        // `kind` tag must be additive, not a replacement.
        let doc = Response::Embeddings {
            dim: 1,
            rows: vec![vec![2.0]],
        }
        .to_json();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert!(doc.get("embeddings").is_some());
        let doc = Response::Error {
            message: "boom".into(),
        }
        .to_json();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("boom"));
        // An error frame parses even without a kind tag (old servers).
        let legacy = Json::parse("{\"ok\":false,\"error\":\"old\"}").unwrap();
        assert_eq!(
            Response::from_json(&legacy).unwrap(),
            Response::Error {
                message: "old".into()
            }
        );
    }

    #[test]
    fn read_only_classification_matches_mutation_set() {
        assert!(Request::Ping.is_read_only());
        assert!(Request::Metrics.is_read_only());
        assert!(Request::Embed { nodes: vec![] }.is_read_only());
        assert!(Request::TopK { node: 0, k: 1 }.is_read_only());
        assert!(Request::SimTopK { node: 0, k: 1 }.is_read_only());
        assert!(Request::SimTopKOwned {
            node: 0,
            k: 1,
            anchor: None,
            exclude: true
        }
        .is_read_only());
        assert!(Request::SeqProbe { client: 7 }.is_read_only());
        assert!(!Request::AddEdges { edges: vec![] }.is_read_only());
        assert!(!Request::AddNode {
            neighbors: vec![],
            features: vec![]
        }
        .is_read_only());
        assert!(!Request::Shutdown.is_read_only());
    }

    #[test]
    fn request_meta_rides_alongside_any_op_and_defaults_to_empty() {
        let meta = RequestMeta {
            deadline_ms: Some(250),
            client: Some(42),
            seq: Some(7),
            version: Some(PROTOCOL_VERSION),
            halo: Some(true),
        };
        let req = Request::AddEdges {
            edges: vec![(1, 2)],
        };
        let doc = req.to_json_with(&meta);
        let parsed = Json::parse(&doc.dump()).unwrap();
        // The op payload parses exactly as without the header...
        assert_eq!(Request::from_json(&parsed).unwrap(), req);
        // ...and the header fields roundtrip alongside it.
        assert_eq!(RequestMeta::from_json(&parsed), meta);
        // A header-free request yields an empty meta.
        let bare = Json::parse(&req.to_json().dump()).unwrap();
        assert!(RequestMeta::from_json(&bare).is_empty());
        // Zero client/seq are treated as unset, not identities.
        let zeroed = Json::parse("{\"op\":\"ping\",\"client\":0,\"seq\":0}").unwrap();
        assert!(RequestMeta::from_json(&zeroed).is_empty());
    }

    #[test]
    fn version_checks_accept_legacy_and_current_but_reject_the_future() {
        // Legacy v1 frames carry no version field at all.
        let legacy = Json::parse("{\"op\":\"ping\"}").unwrap();
        assert!(RequestMeta::from_json(&legacy).check_version().is_ok());
        // Current frames tag themselves and pass.
        let current = Json::parse(&format!("{{\"op\":\"ping\",\"version\":{PROTOCOL_VERSION}}}"))
            .unwrap();
        assert!(RequestMeta::from_json(&current).check_version().is_ok());
        // A frame from the future fails loudly with the supported ceiling in
        // the message instead of being mis-parsed.
        let future = Json::parse("{\"op\":\"ping\",\"version\":99}").unwrap();
        let err = RequestMeta::from_json(&future).check_version().unwrap_err();
        assert!(err.contains("99") && err.contains(&PROTOCOL_VERSION.to_string()), "{err}");
    }

    #[test]
    fn overload_and_expiry_frames_degrade_to_errors_for_legacy_clients() {
        // New failure kinds keep ok:false + error, so a pre-fault-tolerance
        // parser (which only reads those two fields) still fails the call.
        let doc = Response::Overloaded { retry_after_ms: 10 }.to_json();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert!(doc.get("error").is_some());
        let doc = Response::Expired.to_json();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(false)));
        assert!(doc.get("error").is_some());
        // A failure frame with an unknown kind parses as a generic error.
        let future = Json::parse("{\"ok\":false,\"kind\":\"throttled\",\"error\":\"x\"}").unwrap();
        assert_eq!(
            Response::from_json(&future).unwrap(),
            Response::Error { message: "x".into() }
        );
    }

    #[test]
    fn truncated_mid_frame_surfaces_as_io_error() {
        // A peer that dies after the length prefix (or mid-body) must yield
        // a clean Io error, never a hang, panic, or partial parse.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100_u32.to_le_bytes());
        buf.extend_from_slice(b"0123456789"); // 10 of the promised 100 bytes
        match read_frame(&mut Cursor::new(buf)) {
            Err(ProtocolError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected Io(UnexpectedEof), got {other:?}"),
        }
        // Truncated inside the length prefix itself.
        match read_frame(&mut Cursor::new(vec![0x05, 0x00])) {
            Err(ProtocolError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected Io(UnexpectedEof), got {other:?}"),
        }
    }

    #[test]
    fn random_byte_soup_never_panics_the_frame_reader() {
        // Deterministic pseudo-random garbage: every prefix must come back
        // as Err (too-large, bad utf-8/json, or truncation) — never panic
        // and never a successful parse of a frame nobody wrote.
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u8
        };
        for len in [1_usize, 4, 5, 16, 257, 4096] {
            let soup: Vec<u8> = (0..len).map(|_| next()).collect();
            let mut cur = Cursor::new(soup);
            loop {
                match read_frame(&mut cur) {
                    Err(_) => break,
                    Ok(doc) => {
                        // Astronomically unlikely, but if garbage happens to
                        // frame valid JSON it must still fail typed parsing.
                        assert!(
                            Request::from_json(&doc).is_err(),
                            "garbage parsed as a request: {doc:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(b"xx");
        match read_frame(&mut Cursor::new(buf)) {
            Err(ProtocolError::FrameTooLarge(_)) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for text in [
            "{\"op\":\"nope\"}",
            "{\"nodes\":[1]}",
            "{\"op\":\"embed\"}",
            "{\"op\":\"embed\",\"nodes\":[-1]}",
            "{\"op\":\"embed\",\"nodes\":[1.5]}",
            "{\"op\":\"link_score\",\"pairs\":[[1]]}",
            "{\"op\":\"top_k\",\"node\":0}",
        ] {
            let doc = Json::parse(text).unwrap();
            assert!(Request::from_json(&doc).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn malformed_responses_are_rejected() {
        for text in [
            "{\"kind\":\"pong\"}",                             // missing ok
            "{\"ok\":true}",                                   // missing kind
            "{\"ok\":true,\"kind\":\"nope\"}",                 // unknown kind
            "{\"ok\":true,\"kind\":\"stats\"}",                // missing payload
            "{\"ok\":true,\"kind\":\"embeddings\",\"dim\":1}", // missing rows
        ] {
            let doc = Json::parse(text).unwrap();
            assert!(Response::from_json(&doc).is_err(), "accepted {text}");
        }
    }
}
