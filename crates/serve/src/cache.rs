//! Node-embedding cache with epoch-based invalidation.
//!
//! Rows are stored in a dense `n × d` matrix with a validity bitmap. Every
//! graph mutation bumps the cache *epoch* and clears the affected rows;
//! inserts carry the epoch they were computed under and are dropped if a
//! mutation landed in between. Because the restricted eval forward is
//! bit-identical to the full forward, a cached row equals the row a cold
//! recompute would produce — so cache hits never change query results.

use gcmae_tensor::Matrix;

/// Embedding cache for one resident graph.
#[derive(Debug)]
pub struct EmbeddingCache {
    rows: Matrix,
    valid: Vec<bool>,
    /// Epoch under which each row was last written. Together with `ever`
    /// this lets overload degradation serve a *stale* row (invalidated, but
    /// written within a bounded number of mutation epochs) instead of
    /// queueing an encoder forward.
    written_epoch: Vec<u64>,
    /// True once a row has been written at least once.
    ever: Vec<bool>,
    epoch: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

/// Counters exposed through the `stats` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Row lookups answered from the cache.
    pub hits: u64,
    /// Row lookups that required a recompute.
    pub misses: u64,
    /// Rows cleared by graph mutations (cumulative).
    pub invalidated: u64,
    /// Current epoch (number of mutations observed).
    pub epoch: u64,
    /// Rows currently valid.
    pub resident: usize,
}

impl EmbeddingCache {
    /// Empty cache for `n` nodes and `d`-wide embeddings.
    pub fn new(n: usize, d: usize) -> Self {
        Self {
            rows: Matrix::zeros(n, d),
            valid: vec![false; n],
            written_epoch: vec![0; n],
            ever: vec![false; n],
            epoch: 0,
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        !self.valid.iter().any(|&v| v)
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.rows.cols()
    }

    /// The current epoch; pass it back to [`EmbeddingCache::insert`] so
    /// results computed against a stale graph are dropped.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up a row, counting a hit or miss.
    pub fn get(&mut self, node: usize) -> Option<&[f32]> {
        if self.valid[node] {
            self.hits += 1;
            Some(self.rows.row(node))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up a row without touching the hit/miss counters.
    pub fn peek(&self, node: usize) -> Option<&[f32]> {
        self.valid[node].then(|| self.rows.row(node))
    }

    /// Stores a row if `epoch` is still current; stale inserts are ignored.
    pub fn insert(&mut self, epoch: u64, node: usize, row: &[f32]) {
        if epoch != self.epoch {
            return;
        }
        self.rows.row_mut(node).copy_from_slice(row);
        self.valid[node] = true;
        self.written_epoch[node] = epoch;
        self.ever[node] = true;
    }

    /// Looks up a row tolerating bounded staleness: a valid row always
    /// answers; an invalidated row still answers as long as it was written
    /// within the last `budget` mutation epochs. Returns `(row, stale)`
    /// where `stale` is true when an invalidated copy was served. Does not
    /// touch the hit/miss counters — degraded reads are counted by the
    /// caller under their own telemetry names.
    pub fn peek_stale(&self, node: usize, budget: u64) -> Option<(&[f32], bool)> {
        if self.valid[node] {
            return Some((self.rows.row(node), false));
        }
        if self.ever[node] && self.epoch.saturating_sub(self.written_epoch[node]) <= budget {
            return Some((self.rows.row(node), true));
        }
        None
    }

    /// Clears the listed rows and bumps the epoch. Called with the k-hop
    /// neighborhood of a mutation, where k is the encoder depth.
    pub fn invalidate(&mut self, nodes: &[usize]) {
        for &v in nodes {
            if self.valid[v] {
                self.invalidated += 1;
            }
            self.valid[v] = false;
        }
        self.epoch += 1;
    }

    /// Grows the cache to `n` nodes (new rows start invalid) and bumps the
    /// epoch. Used by `add_node`.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.valid.len(), "cache cannot shrink");
        let d = self.rows.cols();
        let mut data = std::mem::replace(&mut self.rows, Matrix::zeros(0, d)).into_vec();
        data.resize(n * d, 0.0);
        self.rows = Matrix::from_vec(n, d, data);
        self.valid.resize(n, false);
        self.written_epoch.resize(n, 0);
        self.ever.resize(n, false);
        self.epoch += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidated: self.invalidated,
            epoch: self.epoch,
            resident: self.valid.iter().filter(|&&v| v).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_hits() {
        let mut c = EmbeddingCache::new(4, 2);
        assert!(c.get(1).is_none());
        c.insert(c.epoch(), 1, &[1.5, -2.0]);
        assert_eq!(c.get(1), Some(&[1.5, -2.0][..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
    }

    #[test]
    fn invalidate_clears_only_listed_rows_and_bumps_epoch() {
        let mut c = EmbeddingCache::new(4, 1);
        for v in 0..4 {
            c.insert(c.epoch(), v, &[v as f32]);
        }
        c.invalidate(&[1, 3]);
        assert_eq!(c.epoch(), 1);
        assert!(c.peek(0).is_some() && c.peek(2).is_some());
        assert!(c.peek(1).is_none() && c.peek(3).is_none());
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn stale_insert_is_dropped() {
        let mut c = EmbeddingCache::new(2, 1);
        let old = c.epoch();
        c.invalidate(&[0]);
        c.insert(old, 0, &[9.0]);
        assert!(c.peek(0).is_none(), "stale insert must not land");
        c.insert(c.epoch(), 0, &[3.0]);
        assert_eq!(c.peek(0), Some(&[3.0][..]));
    }

    #[test]
    fn peek_stale_honors_the_epoch_budget() {
        let mut c = EmbeddingCache::new(3, 1);
        c.insert(c.epoch(), 0, &[7.0]);
        // valid rows answer regardless of budget, and are not stale
        assert_eq!(c.peek_stale(0, 0), Some((&[7.0][..], false)));
        c.invalidate(&[0]); // epoch 0 -> 1, row 0 now invalid
        assert_eq!(c.peek_stale(0, 0), None, "budget 0 forbids stale reads");
        assert_eq!(
            c.peek_stale(0, 1),
            Some((&[7.0][..], true)),
            "1 epoch old fits a budget of 1"
        );
        c.invalidate(&[1]); // epoch 2: row 0 is now 2 epochs old
        assert_eq!(c.peek_stale(0, 1), None, "aged out of the budget");
        assert_eq!(c.peek_stale(0, 2), Some((&[7.0][..], true)));
        // a never-written row has nothing to serve at any budget
        assert_eq!(c.peek_stale(2, u64::MAX), None);
    }

    #[test]
    fn grow_preserves_existing_rows() {
        let mut c = EmbeddingCache::new(2, 2);
        c.insert(c.epoch(), 0, &[1.0, 2.0]);
        c.grow(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.peek(0), Some(&[1.0, 2.0][..]));
        assert!(c.peek(2).is_none() && c.peek(3).is_none());
    }
}
