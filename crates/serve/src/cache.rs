//! Node-embedding cache with epoch-based invalidation.
//!
//! Rows are stored in a dense `n × d` matrix with a validity bitmap. Every
//! graph mutation bumps the cache *epoch* and clears the affected rows;
//! inserts carry the epoch they were computed under and are dropped if a
//! mutation landed in between. Because the restricted eval forward is
//! bit-identical to the full forward, a cached row equals the row a cold
//! recompute would produce — so cache hits never change query results.

use gcmae_tensor::Matrix;

/// Precision of the quantized sidecar store.
///
/// `I8` is the memory-lean default: one byte per dimension plus an 8-byte
/// per-row affine header (`scale`, `zero_point`), about a 3.6× reduction
/// over f32 at `d = 64`. `F16` halves f32 instead (IEEE 754 binary16,
/// round-to-nearest-even) for workloads where the i8 error budget is too
/// coarse for candidate generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMode {
    /// Asymmetric affine i8: `v ≈ scale * (q - zero_point)` per row.
    I8,
    /// IEEE 754 binary16 (manual bit conversion; no std f16 needed).
    F16,
}

/// f32 → binary16 bits, round-to-nearest-even (overflow saturates to ±inf).
fn f16_from_f32(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // inf / nan
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // normal half
        let half_exp = (unbiased + 15) as u32;
        let mut half = (half_exp << 10) | (mant >> 13);
        // round to nearest even on the 13 dropped bits
        let rem = mant & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    if unbiased < -25 {
        return sign; // underflow to signed zero
    }
    // subnormal half
    let full_mant = mant | 0x0080_0000;
    let shift = (-14 - unbiased) as u32 + 13;
    let mut half = full_mant >> shift;
    let rem = full_mant & ((1u32 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if rem > halfway || (rem == halfway && (half & 1) == 1) {
        half += 1;
    }
    sign | half as u16
}

/// binary16 bits → f32 (exact).
fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp != 0 {
        sign | ((exp + 112) << 23) | (mant << 13)
    } else if mant != 0 {
        // subnormal: normalize. The highest set bit of `mant` (at position
        // 10 - shift) becomes the implicit leading 1, so the value is
        // 2^(shift) below the smallest normal's 2^-14 scale.
        let shift = mant.leading_zeros() - 21;
        let m = (mant << shift) & 0x03ff;
        sign | ((113 - shift) << 23) | (m << 13)
    } else {
        sign
    };
    f32::from_bits(bits)
}

/// Compact per-node embedding store used for ANN candidate generation.
///
/// Rows mirror the exact f32 cache under the same epoch fence: the cache
/// quantizes on `insert` and clears on `invalidate`, so a present quantized
/// row always corresponds to the embedding a cold recompute would produce
/// (up to quantization error). Scores read from this store are *approximate
/// by design* — callers must re-score their candidate set against the exact
/// f32 rows before returning anything to a client.
#[derive(Debug)]
pub struct QuantStore {
    mode: QuantMode,
    dim: usize,
    /// `n * d` i8 codes (I8 mode) — empty in F16 mode.
    codes: Vec<i8>,
    /// Per-row affine parameters (I8 mode).
    scale: Vec<f32>,
    zero: Vec<f32>,
    /// `n * d` binary16 bits (F16 mode) — empty in I8 mode.
    halves: Vec<u16>,
    present: Vec<bool>,
    resident: usize,
}

impl QuantStore {
    /// Empty store for `n` nodes of `d`-wide rows.
    pub fn new(n: usize, d: usize, mode: QuantMode) -> Self {
        let (codes, scale, zero, halves) = match mode {
            QuantMode::I8 => (vec![0i8; n * d], vec![0.0; n], vec![0.0; n], Vec::new()),
            QuantMode::F16 => (Vec::new(), Vec::new(), Vec::new(), vec![0u16; n * d]),
        };
        Self { mode, dim: d, codes, scale, zero, halves, present: vec![false; n], resident: 0 }
    }

    /// Active precision mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Rows currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// True when `node` holds a quantized row.
    pub fn contains(&self, node: usize) -> bool {
        self.present[node]
    }

    /// Quantizes `row` into slot `node`.
    pub fn put(&mut self, node: usize, row: &[f32]) {
        debug_assert_eq!(row.len(), self.dim);
        match self.mode {
            QuantMode::I8 => {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for &v in row {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if !lo.is_finite() || !hi.is_finite() {
                    (lo, hi) = (0.0, 0.0);
                }
                let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
                // zero_point maps lo -> -128 so the full i8 range is used.
                let zp = -128.0 - lo / scale;
                let dst = &mut self.codes[node * self.dim..(node + 1) * self.dim];
                for (c, &v) in dst.iter_mut().zip(row) {
                    *c = (v / scale + zp).round().clamp(-128.0, 127.0) as i8;
                }
                self.scale[node] = scale;
                self.zero[node] = zp;
            }
            QuantMode::F16 => {
                let dst = &mut self.halves[node * self.dim..(node + 1) * self.dim];
                for (h, &v) in dst.iter_mut().zip(row) {
                    *h = f16_from_f32(v);
                }
            }
        }
        if !self.present[node] {
            self.present[node] = true;
            self.resident += 1;
        }
    }

    /// Drops the row for `node` (keeps the slot).
    pub fn clear(&mut self, node: usize) {
        if self.present[node] {
            self.present[node] = false;
            self.resident -= 1;
        }
    }

    /// Approximate `dot(anchor, row[node])` against the quantized row.
    ///
    /// `anchor_sum` must be `anchor.iter().sum()`, hoisted by the caller so
    /// a search over many candidates pays the reduction once.
    pub fn approx_dot(&self, anchor: &[f32], anchor_sum: f32, node: usize) -> f32 {
        debug_assert!(self.present[node], "approx_dot on an absent row");
        match self.mode {
            QuantMode::I8 => {
                let codes = &self.codes[node * self.dim..(node + 1) * self.dim];
                let mut acc = 0.0f32;
                for (&a, &q) in anchor.iter().zip(codes) {
                    acc += a * q as f32;
                }
                self.scale[node] * (acc - self.zero[node] * anchor_sum)
            }
            QuantMode::F16 => {
                let halves = &self.halves[node * self.dim..(node + 1) * self.dim];
                let mut acc = 0.0f32;
                for (&a, &h) in anchor.iter().zip(halves) {
                    acc += a * f16_to_f32(h);
                }
                acc
            }
        }
    }

    /// Dequantizes row `node` into `out` (for tests and diagnostics).
    pub fn dequantize_into(&self, node: usize, out: &mut [f32]) {
        debug_assert!(self.present[node]);
        debug_assert_eq!(out.len(), self.dim, "dequantize into a {}-wide buffer", out.len());
        match self.mode {
            QuantMode::I8 => {
                let codes = &self.codes[node * self.dim..(node + 1) * self.dim];
                let (s, zp) = (self.scale[node], self.zero[node]);
                for (o, &q) in out.iter_mut().zip(codes) {
                    *o = s * (q as f32 - zp);
                }
            }
            QuantMode::F16 => {
                let halves = &self.halves[node * self.dim..(node + 1) * self.dim];
                for (o, &h) in out.iter_mut().zip(halves) {
                    *o = f16_to_f32(h);
                }
            }
        }
    }

    /// Grows the store to `n` nodes.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.present.len(), "quant store cannot shrink");
        match self.mode {
            QuantMode::I8 => {
                self.codes.resize(n * self.dim, 0);
                self.scale.resize(n, 0.0);
                self.zero.resize(n, 0.0);
            }
            QuantMode::F16 => self.halves.resize(n * self.dim, 0),
        }
        self.present.resize(n, false);
    }

    /// Resident bytes of the store (codes + per-row headers), counting only
    /// allocated storage — this is what "bytes per node" compares against
    /// the `4 * d` bytes an f32 row store spends.
    pub fn bytes(&self) -> usize {
        self.codes.len()
            + self.halves.len() * 2
            + self.scale.len() * 4
            + self.zero.len() * 4
            + self.present.len()
    }

    /// Store bytes per node slot (allocation-based, independent of how many
    /// rows are currently resident).
    pub fn bytes_per_node(&self) -> f64 {
        if self.present.is_empty() {
            0.0
        } else {
            self.bytes() as f64 / self.present.len() as f64
        }
    }
}

/// Embedding cache for one resident graph.
#[derive(Debug)]
pub struct EmbeddingCache {
    rows: Matrix,
    valid: Vec<bool>,
    /// Epoch under which each row was last written. Together with `ever`
    /// this lets overload degradation serve a *stale* row (invalidated, but
    /// written within a bounded number of mutation epochs) instead of
    /// queueing an encoder forward.
    written_epoch: Vec<u64>,
    /// True once a row has been written at least once.
    ever: Vec<bool>,
    epoch: u64,
    hits: u64,
    misses: u64,
    invalidated: u64,
    /// Optional compact mirror of the valid rows, maintained under the same
    /// epoch fence (quantized on insert, dropped on invalidate). ANN
    /// candidate generation reads this; exact answers never do.
    quant: Option<QuantStore>,
}

/// Counters exposed through the `stats` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Row lookups answered from the cache.
    pub hits: u64,
    /// Row lookups that required a recompute.
    pub misses: u64,
    /// Rows cleared by graph mutations (cumulative).
    pub invalidated: u64,
    /// Current epoch (number of mutations observed).
    pub epoch: u64,
    /// Rows currently valid.
    pub resident: usize,
    /// Rows resident in the quantized sidecar (0 when quantization is off).
    pub quantized_rows: usize,
    /// Resident bytes of the quantized sidecar store.
    pub quantized_bytes: usize,
}

impl EmbeddingCache {
    /// Empty cache for `n` nodes and `d`-wide embeddings.
    pub fn new(n: usize, d: usize) -> Self {
        Self {
            rows: Matrix::zeros(n, d),
            valid: vec![false; n],
            written_epoch: vec![0; n],
            ever: vec![false; n],
            epoch: 0,
            hits: 0,
            misses: 0,
            invalidated: 0,
            quant: None,
        }
    }

    /// Cache with a quantized sidecar: every accepted insert also lands a
    /// compact row for ANN candidate generation.
    pub fn new_quantized(n: usize, d: usize, mode: QuantMode) -> Self {
        let mut c = Self::new(n, d);
        c.quant = Some(QuantStore::new(n, d, mode));
        c
    }

    /// The quantized sidecar, if enabled.
    pub fn quant(&self) -> Option<&QuantStore> {
        self.quant.as_ref()
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        !self.valid.iter().any(|&v| v)
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.rows.cols()
    }

    /// The current epoch; pass it back to [`EmbeddingCache::insert`] so
    /// results computed against a stale graph are dropped.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up a row, counting a hit or miss.
    pub fn get(&mut self, node: usize) -> Option<&[f32]> {
        if self.valid[node] {
            self.hits += 1;
            Some(self.rows.row(node))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up a row without touching the hit/miss counters.
    pub fn peek(&self, node: usize) -> Option<&[f32]> {
        self.valid[node].then(|| self.rows.row(node))
    }

    /// Stores a row if `epoch` is still current; stale inserts are ignored.
    /// Returns whether the row landed, so index maintenance riding on the
    /// cache (quantized sidecar, ANN) can skip dropped inserts.
    pub fn insert(&mut self, epoch: u64, node: usize, row: &[f32]) -> bool {
        if epoch != self.epoch {
            return false;
        }
        self.rows.row_mut(node).copy_from_slice(row);
        self.valid[node] = true;
        self.written_epoch[node] = epoch;
        self.ever[node] = true;
        if let Some(q) = self.quant.as_mut() {
            q.put(node, row);
        }
        true
    }

    /// Looks up a row tolerating bounded staleness: a valid row always
    /// answers; an invalidated row still answers as long as it was written
    /// within the last `budget` mutation epochs. Returns `(row, stale)`
    /// where `stale` is true when an invalidated copy was served. Does not
    /// touch the hit/miss counters — degraded reads are counted by the
    /// caller under their own telemetry names.
    pub fn peek_stale(&self, node: usize, budget: u64) -> Option<(&[f32], bool)> {
        if self.valid[node] {
            return Some((self.rows.row(node), false));
        }
        if self.ever[node] && self.epoch.saturating_sub(self.written_epoch[node]) <= budget {
            return Some((self.rows.row(node), true));
        }
        None
    }

    /// Clears the listed rows and bumps the epoch. Called with the k-hop
    /// neighborhood of a mutation, where k is the encoder depth.
    pub fn invalidate(&mut self, nodes: &[usize]) {
        for &v in nodes {
            if self.valid[v] {
                self.invalidated += 1;
            }
            self.valid[v] = false;
            if let Some(q) = self.quant.as_mut() {
                q.clear(v);
            }
        }
        self.epoch += 1;
    }

    /// Grows the cache to `n` nodes (new rows start invalid) and bumps the
    /// epoch. Used by `add_node`.
    pub fn grow(&mut self, n: usize) {
        assert!(n >= self.valid.len(), "cache cannot shrink");
        let d = self.rows.cols();
        let mut data = std::mem::replace(&mut self.rows, Matrix::zeros(0, d)).into_vec();
        data.resize(n * d, 0.0);
        self.rows = Matrix::from_vec(n, d, data);
        self.valid.resize(n, false);
        self.written_epoch.resize(n, 0);
        self.ever.resize(n, false);
        if let Some(q) = self.quant.as_mut() {
            q.grow(n);
        }
        self.epoch += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidated: self.invalidated,
            epoch: self.epoch,
            resident: self.valid.iter().filter(|&&v| v).count(),
            quantized_rows: self.quant.as_ref().map_or(0, QuantStore::resident),
            quantized_bytes: self.quant.as_ref().map_or(0, QuantStore::bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_hits() {
        let mut c = EmbeddingCache::new(4, 2);
        assert!(c.get(1).is_none());
        c.insert(c.epoch(), 1, &[1.5, -2.0]);
        assert_eq!(c.get(1), Some(&[1.5, -2.0][..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 1, 1));
    }

    #[test]
    fn invalidate_clears_only_listed_rows_and_bumps_epoch() {
        let mut c = EmbeddingCache::new(4, 1);
        for v in 0..4 {
            c.insert(c.epoch(), v, &[v as f32]);
        }
        c.invalidate(&[1, 3]);
        assert_eq!(c.epoch(), 1);
        assert!(c.peek(0).is_some() && c.peek(2).is_some());
        assert!(c.peek(1).is_none() && c.peek(3).is_none());
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn stale_insert_is_dropped() {
        let mut c = EmbeddingCache::new(2, 1);
        let old = c.epoch();
        c.invalidate(&[0]);
        c.insert(old, 0, &[9.0]);
        assert!(c.peek(0).is_none(), "stale insert must not land");
        c.insert(c.epoch(), 0, &[3.0]);
        assert_eq!(c.peek(0), Some(&[3.0][..]));
    }

    #[test]
    fn peek_stale_honors_the_epoch_budget() {
        let mut c = EmbeddingCache::new(3, 1);
        c.insert(c.epoch(), 0, &[7.0]);
        // valid rows answer regardless of budget, and are not stale
        assert_eq!(c.peek_stale(0, 0), Some((&[7.0][..], false)));
        c.invalidate(&[0]); // epoch 0 -> 1, row 0 now invalid
        assert_eq!(c.peek_stale(0, 0), None, "budget 0 forbids stale reads");
        assert_eq!(
            c.peek_stale(0, 1),
            Some((&[7.0][..], true)),
            "1 epoch old fits a budget of 1"
        );
        c.invalidate(&[1]); // epoch 2: row 0 is now 2 epochs old
        assert_eq!(c.peek_stale(0, 1), None, "aged out of the budget");
        assert_eq!(c.peek_stale(0, 2), Some((&[7.0][..], true)));
        // a never-written row has nothing to serve at any budget
        assert_eq!(c.peek_stale(2, u64::MAX), None);
    }

    #[test]
    fn f16_roundtrips_representable_values_exactly() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 6.103515625e-5] {
            assert_eq!(f16_to_f32(f16_from_f32(v)), v, "binary16-representable {v}");
        }
        assert_eq!(f16_to_f32(f16_from_f32(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f16_from_f32(1e9)), f32::INFINITY, "overflow saturates");
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
        // subnormal half survives the round trip
        let tiny = 5.960464477539063e-8; // 2^-24, smallest positive subnormal
        assert_eq!(f16_to_f32(f16_from_f32(tiny)), tiny);
    }

    #[test]
    fn f16_conversion_error_is_within_half_ulp() {
        let mut x = 0.37f32;
        for _ in 0..200 {
            x = (x * 1.7 + 0.13) % 8.0 - 4.0;
            let back = f16_to_f32(f16_from_f32(x));
            // binary16 has 11 significand bits -> relative error <= 2^-11
            assert!((back - x).abs() <= x.abs() * (1.0 / 2048.0) + 1e-7, "{x} -> {back}");
        }
    }

    #[test]
    fn i8_dequantization_error_is_bounded_by_half_a_step() {
        let d = 32;
        let mut store = QuantStore::new(2, d, QuantMode::I8);
        let row: Vec<f32> = (0..d).map(|i| (i as f32 * 0.73).sin() * 3.0).collect();
        store.put(0, &row);
        let (lo, hi) = row.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
        let step = (hi - lo) / 255.0;
        let mut back = vec![0.0; d];
        store.dequantize_into(0, &mut back);
        for (&v, &b) in row.iter().zip(&back) {
            assert!((v - b).abs() <= step * 0.51 + 1e-6, "{v} vs {b} (step {step})");
        }
    }

    #[test]
    fn approx_dot_tracks_the_exact_dot() {
        let d = 64;
        for mode in [QuantMode::I8, QuantMode::F16] {
            let mut store = QuantStore::new(1, d, mode);
            let a: Vec<f32> = (0..d).map(|i| ((i * 7 + 3) as f32 * 0.31).cos()).collect();
            let b: Vec<f32> = (0..d).map(|i| ((i * 11 + 5) as f32 * 0.17).sin()).collect();
            store.put(0, &b);
            let exact: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let sum_a: f32 = a.iter().sum();
            let approx = store.approx_dot(&a, sum_a, 0);
            // error budget: d * |a|_max * (half an i8 step of b's range)
            assert!((approx - exact).abs() < 0.15, "{mode:?}: {approx} vs {exact}");
        }
    }

    #[test]
    fn quantized_sidecar_follows_the_epoch_fence() {
        let mut c = EmbeddingCache::new_quantized(4, 2, QuantMode::I8);
        assert!(c.insert(c.epoch(), 1, &[1.0, -2.0]));
        assert!(c.quant().expect("sidecar on").contains(1));
        let old = c.epoch();
        c.invalidate(&[1]);
        assert!(!c.quant().expect("sidecar on").contains(1), "invalidate drops the mirror");
        assert!(!c.insert(old, 1, &[9.0, 9.0]), "stale insert is dropped");
        assert!(!c.quant().expect("sidecar on").contains(1));
        assert!(c.insert(c.epoch(), 1, &[3.0, 4.0]));
        let s = c.stats();
        assert_eq!(s.quantized_rows, 1);
        assert!(s.quantized_bytes > 0);
        c.grow(6);
        assert_eq!(c.quant().expect("sidecar on").len(), 6);
    }

    #[test]
    fn i8_store_is_at_least_three_times_smaller_than_f32() {
        let (n, d) = (128, 64);
        let store = QuantStore::new(n, d, QuantMode::I8);
        let f32_bytes_per_node = (d * 4) as f64;
        assert!(
            store.bytes_per_node() <= f32_bytes_per_node / 3.0,
            "{} vs f32 {}",
            store.bytes_per_node(),
            f32_bytes_per_node
        );
    }

    #[test]
    fn grow_preserves_existing_rows() {
        let mut c = EmbeddingCache::new(2, 2);
        c.insert(c.epoch(), 0, &[1.0, 2.0]);
        c.grow(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.peek(0), Some(&[1.0, 2.0][..]));
        assert!(c.peek(2).is_none() && c.peek(3).is_none());
    }
}
