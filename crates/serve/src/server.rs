//! Std-only TCP server speaking the length-prefixed JSON protocol.
//!
//! One non-blocking accept thread hands each connection to its own blocking
//! reader thread; all requests funnel into the shared [`Batcher`], which is
//! where micro-batching happens. Connection threads are detached — they exit
//! when their peer disconnects or when the scheduler stops answering.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gcmae_obs::{Observer, Registry};

use crate::batcher::Batcher;
use crate::engine::Engine;
use crate::protocol::{read_frame, write_frame, Request, Response};

/// Tuning and telemetry knobs for [`Server::start_with`].
pub struct ServerOptions {
    /// Coalescing cap for the scheduler (see [`Batcher::new`]).
    pub max_batch: usize,
    /// Optional event sink receiving one `serve.request` event per answered
    /// request (e.g. a [`gcmae_obs::JsonlObserver`]).
    pub events: Option<Arc<dyn Observer>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_batch: 32,
            events: None,
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`] stops
/// the scheduler but leaves the port open until the process exits.
pub struct Server {
    addr: SocketAddr,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(engine: Engine, addr: &str, max_batch: usize) -> io::Result<Server> {
        Self::start_with(
            engine,
            addr,
            ServerOptions {
                max_batch,
                events: None,
            },
        )
    }

    /// [`Server::start`] with explicit [`ServerOptions`].
    pub fn start_with(engine: Engine, addr: &str, opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let batcher = Arc::new(Batcher::with_events(engine, opts.max_batch, opts.events));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_batcher = Arc::clone(&batcher);
        let accept_stop = Arc::clone(&stop);
        let accept_handle =
            std::thread::spawn(move || accept_loop(listener, accept_batcher, accept_stop));
        Ok(Server {
            addr: local,
            batcher,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The scheduler's telemetry registry (what the `metrics` op snapshots).
    pub fn metrics(&self) -> Arc<Registry> {
        self.batcher.metrics()
    }

    /// The bound address (resolves the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `shutdown`, then tears down and returns
    /// the engine (for parity checks against its final state).
    pub fn run_until_shutdown(mut self) -> Option<Engine> {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown()
    }

    /// Stops accepting, stops the scheduler, and returns the engine.
    pub fn shutdown(mut self) -> Option<Engine> {
        self.teardown()
    }

    fn teardown(&mut self) -> Option<Engine> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.batcher.shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(listener: TcpListener, batcher: Arc<Batcher>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let conn_batcher = Arc::clone(&batcher);
                let conn_stop = Arc::clone(&stop);
                // Detached: exits on peer disconnect or protocol error.
                std::thread::spawn(move || handle_connection(stream, conn_batcher, conn_stop));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if batcher.is_stopping() {
                    stop.store(true, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, batcher: Arc<Batcher>, stop: Arc<AtomicBool>) {
    loop {
        let doc = match read_frame(&mut stream) {
            Ok(doc) => doc,
            Err(_) => return, // disconnect or garbage: drop the connection
        };
        let response = match Request::from_json(&doc) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let response = batcher.submit(request);
                if is_shutdown {
                    stop.store(true, Ordering::Release);
                }
                response
            }
            // Malformed but parseable JSON: answer with an error and keep
            // the connection usable.
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        if write_frame(&mut stream, &response.to_json()).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;

    fn engine(seed: u64) -> (Engine, Matrix) {
        let mut rng = seeded_rng(seed);
        let n = 16;
        let edges: Vec<(usize, usize)> = (1..n)
            .map(|v| (v - 1, v))
            .chain([(0, 8), (3, 12)])
            .collect();
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 4, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Gcn,
            hidden_dim: 6,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 4, &mut rng);
        let reference = model.encode(&graph, &features);
        (Engine::new(model, graph, features).unwrap(), reference)
    }

    #[test]
    fn tcp_roundtrip_embeddings_match_offline_encode() {
        let (eng, reference) = engine(1);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        let rows = client.embed(&[5, 0, 5]).unwrap();
        assert_eq!(rows[0].as_slice(), reference.row(5));
        assert_eq!(rows[1].as_slice(), reference.row(0));
        assert_eq!(rows[2].as_slice(), reference.row(5));
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_bit_identical_answers() {
        let (eng, reference) = engine(2);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for t in 0..8_usize {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let nodes = vec![t, 15 - t];
                (nodes.clone(), c.embed(&nodes).unwrap())
            }));
        }
        for h in handles {
            let (nodes, rows) = h.join().unwrap();
            for (row, &v) in rows.iter().zip(&nodes) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        server.shutdown();
    }

    #[test]
    fn mutations_over_tcp_keep_parity_with_cold_encode() {
        let (eng, _) = engine(3);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.embed(&(0..16).collect::<Vec<_>>()).unwrap(); // warm everything
        assert!(client.add_edges(&[(0, 13)]).unwrap() > 0);
        let new_id = client.add_node(&[2, 13], &[0.5, -0.5, 0.25, 0.0]).unwrap();
        assert_eq!(new_id, 16);
        let rows = client.embed(&(0..17).collect::<Vec<_>>()).unwrap();
        let eng = server.shutdown().unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), cold.row(v), "node {v}");
        }
    }

    #[test]
    fn server_survives_malformed_frames_and_bad_requests() {
        use std::io::Write;
        let (eng, _) = engine(4);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        // raw garbage on one connection: server drops it without dying
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        let garbage = b"\x05\x00\x00\x00nope!";
        raw.write_all(garbage).unwrap();
        drop(raw);
        // a real client still works, and engine errors come back as messages
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        assert!(client.embed(&[999]).is_err());
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn metrics_and_events_flow_over_tcp() {
        use gcmae_obs::JsonlObserver;
        #[derive(Clone)]
        struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (eng, _) = engine(6);
        let buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
        let events: Arc<dyn Observer> = Arc::new(JsonlObserver::new(Box::new(buf.clone())));
        let server = Server::start_with(
            eng,
            "127.0.0.1:0",
            ServerOptions {
                max_batch: 8,
                events: Some(events),
            },
        )
        .unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        client.embed(&[1, 2]).unwrap();
        let snap = client.metrics().unwrap();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("serve.requests.ping"), 1);
        assert_eq!(counter("serve.requests.embed"), 1);
        assert_eq!(
            counter("serve.batches"),
            3,
            "each lone request is its own batch"
        );
        client.shutdown().unwrap();
        server.shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // ping, embed, metrics, shutdown — one JSON line each
        assert_eq!(lines.len(), 4, "events:\n{text}");
        assert!(lines
            .iter()
            .all(|l| l.starts_with("{\"event\":\"serve.request\"")));
        assert!(lines[1].contains("\"op\":\"embed\""));
    }

    #[test]
    fn shutdown_request_ends_run_until_shutdown() {
        let (eng, _) = engine(5);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let client_thread = std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().unwrap();
            c.shutdown().unwrap();
        });
        let engine = server.run_until_shutdown();
        client_thread.join().unwrap();
        assert!(engine.is_some());
    }
}
