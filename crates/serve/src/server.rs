//! Std-only TCP server speaking the length-prefixed JSON protocol.
//!
//! One non-blocking accept thread hands each connection to its own blocking
//! reader thread; all requests funnel into the shared [`Batcher`], which is
//! where micro-batching happens. Connection threads are detached — they exit
//! when their peer disconnects or when the scheduler stops answering.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::batcher::Batcher;
use crate::engine::Engine;
use crate::protocol::{err_response, read_frame, write_frame, Request};

/// A running server. Dropping it without calling [`Server::shutdown`] stops
/// the scheduler but leaves the port open until the process exits.
pub struct Server {
    addr: SocketAddr,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(engine: Engine, addr: &str, max_batch: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let batcher = Arc::new(Batcher::new(engine, max_batch));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_batcher = Arc::clone(&batcher);
        let accept_stop = Arc::clone(&stop);
        let accept_handle =
            std::thread::spawn(move || accept_loop(listener, accept_batcher, accept_stop));
        Ok(Server { addr: local, batcher, stop, accept_handle: Some(accept_handle) })
    }

    /// The bound address (resolves the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `shutdown`, then tears down and returns
    /// the engine (for parity checks against its final state).
    pub fn run_until_shutdown(mut self) -> Option<Engine> {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown()
    }

    /// Stops accepting, stops the scheduler, and returns the engine.
    pub fn shutdown(mut self) -> Option<Engine> {
        self.teardown()
    }

    fn teardown(&mut self) -> Option<Engine> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.batcher.shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(listener: TcpListener, batcher: Arc<Batcher>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let conn_batcher = Arc::clone(&batcher);
                let conn_stop = Arc::clone(&stop);
                // Detached: exits on peer disconnect or protocol error.
                std::thread::spawn(move || handle_connection(stream, conn_batcher, conn_stop));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if batcher.is_stopping() {
                    stop.store(true, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, batcher: Arc<Batcher>, stop: Arc<AtomicBool>) {
    loop {
        let doc = match read_frame(&mut stream) {
            Ok(doc) => doc,
            Err(_) => return, // disconnect or garbage: drop the connection
        };
        let response = match Request::from_json(&doc) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let response = batcher.submit(request);
                if is_shutdown {
                    stop.store(true, Ordering::Release);
                }
                response
            }
            // Malformed but parseable JSON: answer with an error and keep
            // the connection usable.
            Err(e) => err_response(e),
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;

    fn engine(seed: u64) -> (Engine, Matrix) {
        let mut rng = seeded_rng(seed);
        let n = 16;
        let edges: Vec<(usize, usize)> =
            (1..n).map(|v| (v - 1, v)).chain([(0, 8), (3, 12)]).collect();
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 4, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Gcn,
            hidden_dim: 6,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 4, &mut rng);
        let reference = model.encode(&graph, &features);
        (Engine::new(model, graph, features).unwrap(), reference)
    }

    #[test]
    fn tcp_roundtrip_embeddings_match_offline_encode() {
        let (eng, reference) = engine(1);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        let rows = client.embed(&[5, 0, 5]).unwrap();
        assert_eq!(rows[0].as_slice(), reference.row(5));
        assert_eq!(rows[1].as_slice(), reference.row(0));
        assert_eq!(rows[2].as_slice(), reference.row(5));
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_bit_identical_answers() {
        let (eng, reference) = engine(2);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for t in 0..8_usize {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let nodes = vec![t, 15 - t];
                (nodes.clone(), c.embed(&nodes).unwrap())
            }));
        }
        for h in handles {
            let (nodes, rows) = h.join().unwrap();
            for (row, &v) in rows.iter().zip(&nodes) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        server.shutdown();
    }

    #[test]
    fn mutations_over_tcp_keep_parity_with_cold_encode() {
        let (eng, _) = engine(3);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.embed(&(0..16).collect::<Vec<_>>()).unwrap(); // warm everything
        assert!(client.add_edges(&[(0, 13)]).unwrap() > 0);
        let new_id = client.add_node(&[2, 13], &[0.5, -0.5, 0.25, 0.0]).unwrap();
        assert_eq!(new_id, 16);
        let rows = client.embed(&(0..17).collect::<Vec<_>>()).unwrap();
        let eng = server.shutdown().unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), cold.row(v), "node {v}");
        }
    }

    #[test]
    fn server_survives_malformed_frames_and_bad_requests() {
        use std::io::Write;
        let (eng, _) = engine(4);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        // raw garbage on one connection: server drops it without dying
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        let garbage = b"\x05\x00\x00\x00nope!";
        raw.write_all(garbage).unwrap();
        drop(raw);
        // a real client still works, and engine errors come back as messages
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        assert!(client.embed(&[999]).is_err());
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_request_ends_run_until_shutdown() {
        let (eng, _) = engine(5);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let client_thread = std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().unwrap();
            c.shutdown().unwrap();
        });
        let engine = server.run_until_shutdown();
        client_thread.join().unwrap();
        assert!(engine.is_some());
    }
}
