//! Std-only TCP server speaking the length-prefixed JSON protocol.
//!
//! One non-blocking accept thread hands each connection to its own blocking
//! reader thread; all requests funnel into the shared [`Batcher`], which is
//! where micro-batching happens. Connection threads are detached — they exit
//! when their peer disconnects, on a fatal protocol error, or (within one
//! read-timeout tick) when the server shuts down.
//!
//! Slow-client defense: every connection carries read/write timeouts. A
//! read timeout on a frame *boundary* is just an idle client — the handler
//! keeps waiting (checking the stop flag each tick). A read timeout
//! *mid-frame* is a slow or stalled peer holding the handler hostage; the
//! connection gets a typed error and is closed. Malformed frames (oversize
//! prefix, garbage JSON, unknown ops) are answered with a typed protocol
//! error; oversize/garbage closes the connection since the stream can no
//! longer be framed. A panic anywhere in a handler is caught and counted —
//! it can never take down the accept loop or another connection.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gcmae_obs::{Observer, Registry};

use crate::batcher::{Batcher, BatcherOptions};
use crate::engine::Engine;
use crate::protocol::{read_frame, write_frame, ProtocolError, Request, RequestMeta, Response};
use crate::wal::{DedupTable, Wal};

/// Tuning and telemetry knobs for [`Server::start_with`].
pub struct ServerOptions {
    /// Coalescing cap for the scheduler (see [`Batcher::new`]).
    pub max_batch: usize,
    /// Optional event sink receiving one `serve.request` event per answered
    /// request (e.g. a [`gcmae_obs::JsonlObserver`]).
    pub events: Option<Arc<dyn Observer>>,
    /// Per-connection socket read timeout. Governs both the idle-poll tick
    /// (stop-flag checks) and the mid-frame stall cutoff. `None` = block
    /// forever (a slow client then pins its handler thread).
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Admission bound on the scheduler queue; `0` = unbounded.
    pub max_queue: usize,
    /// Staleness budget for degraded reads under overload; `0` = off.
    pub stale_epochs: u64,
    /// Mutation write-ahead log (see [`crate::wal`]).
    pub wal: Option<Wal>,
    /// Mutation dedup state, typically recovered by [`crate::wal::replay`].
    pub dedup: DedupTable,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_batch: 32,
            events: None,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            max_queue: 0,
            stale_epochs: 0,
            wal: None,
            dedup: DedupTable::new(),
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`] stops
/// the scheduler but leaves the port open until the process exits.
pub struct Server {
    addr: SocketAddr,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    pub fn start(engine: Engine, addr: &str, max_batch: usize) -> io::Result<Server> {
        Self::start_with(engine, addr, ServerOptions { max_batch, ..ServerOptions::default() })
    }

    /// [`Server::start`] with explicit [`ServerOptions`].
    pub fn start_with(engine: Engine, addr: &str, opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let timeouts = (opts.read_timeout, opts.write_timeout);
        let batcher = Arc::new(Batcher::with_options(
            engine,
            BatcherOptions {
                max_batch: opts.max_batch,
                events: opts.events,
                max_queue: opts.max_queue,
                stale_epochs: opts.stale_epochs,
                wal: opts.wal,
                dedup: opts.dedup,
            },
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_batcher = Arc::clone(&batcher);
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::spawn(move || {
            accept_loop(listener, accept_batcher, accept_stop, timeouts)
        });
        Ok(Server {
            addr: local,
            batcher,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The scheduler's telemetry registry (what the `metrics` op snapshots).
    pub fn metrics(&self) -> Arc<Registry> {
        self.batcher.metrics()
    }

    /// The bound address (resolves the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `shutdown`, then tears down and returns
    /// the engine (for parity checks against its final state).
    pub fn run_until_shutdown(mut self) -> Option<Engine> {
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(10));
        }
        self.teardown()
    }

    /// Stops accepting, stops the scheduler, and returns the engine.
    pub fn shutdown(mut self) -> Option<Engine> {
        self.teardown()
    }

    fn teardown(&mut self) -> Option<Engine> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.batcher.shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(
    listener: TcpListener,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    timeouts: (Option<Duration>, Option<Duration>),
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(timeouts.0);
                let _ = stream.set_write_timeout(timeouts.1);
                let conn_batcher = Arc::clone(&batcher);
                let conn_stop = Arc::clone(&stop);
                // Detached: exits on peer disconnect, fatal protocol error,
                // or (within a read-timeout tick) server shutdown. A panic
                // in the handler is contained to this one connection.
                std::thread::spawn(move || {
                    let metrics = conn_batcher.metrics();
                    let handler = AssertUnwindSafe(move || {
                        handle_connection(stream, conn_batcher, conn_stop)
                    });
                    if catch_unwind(handler).is_err() {
                        metrics.counter_add("serve.handler_panics", 1);
                    }
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if batcher.is_stopping() {
                    stop.store(true, Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// `Read` wrapper that counts bytes consumed toward the current frame, so a
/// read timeout can be classified: zero bytes in = idle peer (benign),
/// partial frame in = slow/stalled peer (close).
struct FrameReader<'a> {
    stream: &'a TcpStream,
    consumed: usize,
}

impl Read for FrameReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (&mut self.stream).read(buf)?;
        self.consumed += n;
        Ok(n)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream, batcher: Arc<Batcher>, stop: Arc<AtomicBool>) {
    let metrics = batcher.metrics();
    let mut out = &stream;
    loop {
        let mut reader = FrameReader { stream: &stream, consumed: 0 };
        let doc = match read_frame(&mut reader) {
            Ok(doc) => doc,
            Err(ProtocolError::Io(e)) if is_timeout(&e) => {
                if reader.consumed == 0 {
                    // Idle between frames: keep waiting unless shutting down.
                    if stop.load(Ordering::Acquire) || batcher.is_stopping() {
                        return;
                    }
                    continue;
                }
                // Stalled mid-frame: a slow client must not pin this thread.
                metrics.counter_add("serve.slow_closes", 1);
                let goodbye = Response::Error {
                    message: "read timed out mid-frame; closing connection".to_string(),
                };
                let _ = write_frame(&mut out, &goodbye.to_json());
                return;
            }
            Err(ProtocolError::Io(_)) => return, // disconnect
            // A fatal framing error (oversize prefix, junk bytes): the
            // stream can no longer be framed, so answer typed and close —
            // but only this connection, never the process.
            Err(e) => {
                metrics.counter_add("serve.protocol_errors", 1);
                let goodbye = Response::Error {
                    message: format!("protocol error: {e}"),
                };
                let _ = write_frame(&mut out, &goodbye.to_json());
                return;
            }
        };
        let response = match Request::from_json(&doc) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let meta = RequestMeta::from_json(&doc);
                // Version gate: a frame stamped with a protocol newer than
                // this server speaks fails loudly instead of mis-parsing.
                // Legacy frames carry no version and pass untouched.
                if let Err(message) = meta.check_version() {
                    metrics.counter_add("serve.protocol_errors", 1);
                    if write_frame(&mut out, &Response::Error { message }.to_json()).is_err() {
                        return;
                    }
                    continue;
                }
                let response = batcher.submit_with(request, meta);
                if is_shutdown {
                    stop.store(true, Ordering::Release);
                }
                response
            }
            // Malformed but parseable JSON: answer with an error and keep
            // the connection usable.
            Err(e) => {
                metrics.counter_add("serve.protocol_errors", 1);
                Response::Error {
                    message: e.to_string(),
                }
            }
        };
        if let Err(e) = write_frame(&mut out, &response.to_json()) {
            if let ProtocolError::Io(io_err) = &e {
                if is_timeout(io_err) {
                    metrics.counter_add("serve.slow_closes", 1);
                }
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;

    fn engine(seed: u64) -> (Engine, Matrix) {
        let mut rng = seeded_rng(seed);
        let n = 16;
        let edges: Vec<(usize, usize)> = (1..n)
            .map(|v| (v - 1, v))
            .chain([(0, 8), (3, 12)])
            .collect();
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 4, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Gcn,
            hidden_dim: 6,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 4, &mut rng);
        let reference = model.encode(&graph, &features);
        (Engine::new(model, graph, features).unwrap(), reference)
    }

    #[test]
    fn tcp_roundtrip_embeddings_match_offline_encode() {
        let (eng, reference) = engine(1);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        let rows = client.embed(&[5, 0, 5]).unwrap();
        assert_eq!(rows[0].as_slice(), reference.row(5));
        assert_eq!(rows[1].as_slice(), reference.row(0));
        assert_eq!(rows[2].as_slice(), reference.row(5));
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_get_bit_identical_answers() {
        let (eng, reference) = engine(2);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for t in 0..8_usize {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let nodes = vec![t, 15 - t];
                (nodes.clone(), c.embed(&nodes).unwrap())
            }));
        }
        for h in handles {
            let (nodes, rows) = h.join().unwrap();
            for (row, &v) in rows.iter().zip(&nodes) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        server.shutdown();
    }

    #[test]
    fn mutations_over_tcp_keep_parity_with_cold_encode() {
        let (eng, _) = engine(3);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.embed(&(0..16).collect::<Vec<_>>()).unwrap(); // warm everything
        assert!(client.add_edges(&[(0, 13)]).unwrap() > 0);
        let new_id = client.add_node(&[2, 13], &[0.5, -0.5, 0.25, 0.0]).unwrap();
        assert_eq!(new_id, 16);
        let rows = client.embed(&(0..17).collect::<Vec<_>>()).unwrap();
        let eng = server.shutdown().unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        for (v, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), cold.row(v), "node {v}");
        }
    }

    #[test]
    fn server_survives_malformed_frames_and_bad_requests() {
        use std::io::Write;
        let (eng, _) = engine(4);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        // raw garbage on one connection: server drops it without dying
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        let garbage = b"\x05\x00\x00\x00nope!";
        raw.write_all(garbage).unwrap();
        drop(raw);
        // a real client still works, and engine errors come back as messages
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        assert!(client.embed(&[999]).is_err());
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn metrics_and_events_flow_over_tcp() {
        use gcmae_obs::JsonlObserver;
        #[derive(Clone)]
        struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (eng, _) = engine(6);
        let buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
        let events: Arc<dyn Observer> = Arc::new(JsonlObserver::new(Box::new(buf.clone())));
        let server = Server::start_with(
            eng,
            "127.0.0.1:0",
            ServerOptions { max_batch: 8, events: Some(events), ..ServerOptions::default() },
        )
        .unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        client.embed(&[1, 2]).unwrap();
        let snap = client.metrics().unwrap();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("serve.requests.ping"), 1);
        assert_eq!(counter("serve.requests.embed"), 1);
        assert_eq!(
            counter("serve.batches"),
            3,
            "each lone request is its own batch"
        );
        client.shutdown().unwrap();
        server.shutdown();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // ping, embed, metrics, shutdown — one JSON line each
        assert_eq!(lines.len(), 4, "events:\n{text}");
        assert!(lines
            .iter()
            .all(|l| l.starts_with("{\"event\":\"serve.request\"")));
        assert!(lines[1].contains("\"op\":\"embed\""));
    }

    #[test]
    fn slow_client_is_cut_loose_with_a_typed_error() {
        use std::io::Write;
        let (eng, _) = engine(7);
        let server = Server::start_with(
            eng,
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Some(Duration::from_millis(150)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        // A peer that starts a frame and stalls: 3 bytes of a promised 10.
        let mut slow = TcpStream::connect(server.addr()).unwrap();
        slow.write_all(&10_u32.to_le_bytes()).unwrap();
        slow.write_all(b"{\"o").unwrap();
        // The server answers with a typed error, then closes only this
        // connection.
        let doc = read_frame(&mut slow).expect("goodbye frame");
        match Response::from_json(&doc).unwrap() {
            Response::Error { message } => assert!(message.contains("timed out"), "{message}"),
            other => panic!("expected error, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(slow.read_to_end(&mut rest).unwrap(), 0, "connection closed");
        assert_eq!(server.metrics().counter_value("serve.slow_closes"), 1);
        // Other clients are unaffected.
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn idle_connection_survives_read_timeout_ticks() {
        let (eng, _) = engine(8);
        let server = Server::start_with(
            eng,
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Some(Duration::from_millis(100)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        // Sit idle across several timeout ticks — the connection must hold.
        std::thread::sleep(Duration::from_millis(350));
        client.ping().unwrap();
        assert_eq!(server.metrics().counter_value("serve.slow_closes"), 0);
        server.shutdown();
    }

    #[test]
    fn garbage_frame_gets_typed_protocol_error_before_close() {
        use std::io::Write;
        let (eng, _) = engine(9);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"\x05\x00\x00\x00nope!").unwrap();
        let doc = read_frame(&mut raw).expect("typed error frame");
        match Response::from_json(&doc).unwrap() {
            Response::Error { message } => {
                assert!(message.contains("protocol error"), "{message}")
            }
            other => panic!("expected error, got {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "connection closed");
        assert!(server.metrics().counter_value("serve.protocol_errors") >= 1);
        // An oversize length prefix is refused the same way.
        let mut huge = TcpStream::connect(server.addr()).unwrap();
        huge.write_all(&u32::MAX.to_le_bytes()).unwrap();
        huge.write_all(b"xx").unwrap();
        let doc = read_frame(&mut huge).expect("typed error frame");
        assert!(!Response::from_json(&doc).unwrap().is_ok());
        // The server is still fully alive.
        let mut client = Client::connect(&server.addr().to_string()).unwrap();
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_request_ends_run_until_shutdown() {
        let (eng, _) = engine(5);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let client_thread = std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.ping().unwrap();
            c.shutdown().unwrap();
        });
        let engine = server.run_until_shutdown();
        client_thread.join().unwrap();
        assert!(engine.is_some());
    }
}
