//! Blocking TCP client for the serving protocol.

use std::net::TcpStream;

use gcmae_obs::Snapshot;

use crate::protocol::{read_frame, write_frame, ProtocolError, Request, Response, ServerStats};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing problem.
    Protocol(ProtocolError),
    /// The server answered `{"ok":false}` with this message.
    Server(String),
    /// The server answered `ok` but with an unexpected response kind.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::BadResponse(what) => write!(f, "bad response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// One connection to a serving endpoint. Methods are synchronous: each sends
/// a request frame and blocks for the matching response.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7431"`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and returns the parsed response.
    /// [`Response::Error`] is folded into [`ClientError::Server`], so an
    /// `Ok` return is always a success payload.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_json())?;
        let doc = read_frame(&mut self.stream)?;
        match Response::from_json(&doc)? {
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Ok(response),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::BadResponse("expected pong")),
        }
    }

    /// Typed server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::BadResponse("expected stats")),
        }
    }

    /// Live telemetry snapshot: counters, gauges, histograms.
    pub fn metrics(&mut self) -> Result<Snapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            _ => Err(ClientError::BadResponse("expected metrics")),
        }
    }

    /// Embeddings for the listed nodes; row `i` corresponds to `nodes[i]`,
    /// bit-identical to the server model's offline `encode()`.
    pub fn embed(&mut self, nodes: &[usize]) -> Result<Vec<Vec<f32>>, ClientError> {
        match self.call(&Request::Embed {
            nodes: nodes.to_vec(),
        })? {
            Response::Embeddings { rows, .. } => Ok(rows),
            _ => Err(ClientError::BadResponse("expected embeddings")),
        }
    }

    /// Dot-product link scores for the listed pairs.
    pub fn link_scores(&mut self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ClientError> {
        match self.call(&Request::LinkScore {
            pairs: pairs.to_vec(),
        })? {
            Response::Scores(scores) => Ok(scores),
            _ => Err(ClientError::BadResponse("expected scores")),
        }
    }

    /// Highest-scoring graph neighbors of `node`.
    pub fn top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call(&Request::TopK { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Inserts undirected edges; returns how many cached embeddings the
    /// server invalidated.
    pub fn add_edges(&mut self, edges: &[(usize, usize)]) -> Result<usize, ClientError> {
        match self.call(&Request::AddEdges {
            edges: edges.to_vec(),
        })? {
            Response::EdgesAdded { invalidated } => Ok(invalidated),
            _ => Err(ClientError::BadResponse("expected edges_added")),
        }
    }

    /// Appends a node; returns its id.
    pub fn add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
    ) -> Result<usize, ClientError> {
        match self.call(&Request::AddNode {
            neighbors: neighbors.to_vec(),
            features: features.to_vec(),
        })? {
            Response::NodeAdded { node } => Ok(node),
            _ => Err(ClientError::BadResponse("expected node_added")),
        }
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::BadResponse("expected shutdown ack")),
        }
    }
}
