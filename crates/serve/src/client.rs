//! Blocking TCP client for the serving protocol.

use std::net::TcpStream;

use crate::json::{json_to_f32, Json};
use crate::protocol::{read_frame, write_frame, ProtocolError, Request};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing problem.
    Protocol(ProtocolError),
    /// The server answered `{"ok":false}` with this message.
    Server(String),
    /// The server answered `ok` but the payload was missing a field.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::BadResponse(what) => write!(f, "bad response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// One connection to a serving endpoint. Methods are synchronous: each sends
/// a request frame and blocks for the matching response.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7431"`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and returns the `ok` payload.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, &request.to_json())?;
        let response = read_frame(&mut self.stream)?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(ClientError::Server(
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ClientError::BadResponse("missing ok field")),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Server counters as a raw JSON object.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(&Request::Stats)
    }

    /// Embeddings for the listed nodes; row `i` corresponds to `nodes[i]`,
    /// bit-identical to the server model's offline `encode()`.
    pub fn embed(&mut self, nodes: &[usize]) -> Result<Vec<Vec<f32>>, ClientError> {
        let resp = self.call(&Request::Embed { nodes: nodes.to_vec() })?;
        resp.get("embeddings")
            .and_then(Json::as_arr)
            .ok_or(ClientError::BadResponse("missing embeddings"))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or(ClientError::BadResponse("embedding row is not an array"))?
                    .iter()
                    .map(|v| json_to_f32(v).ok_or(ClientError::BadResponse("non-numeric value")))
                    .collect()
            })
            .collect()
    }

    /// Dot-product link scores for the listed pairs.
    pub fn link_scores(&mut self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ClientError> {
        let resp = self.call(&Request::LinkScore { pairs: pairs.to_vec() })?;
        resp.get("scores")
            .and_then(Json::as_arr)
            .ok_or(ClientError::BadResponse("missing scores"))?
            .iter()
            .map(|v| json_to_f32(v).ok_or(ClientError::BadResponse("non-numeric score")))
            .collect()
    }

    /// Highest-scoring graph neighbors of `node`.
    pub fn top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, ClientError> {
        let resp = self.call(&Request::TopK { node, k })?;
        resp.get("neighbors")
            .and_then(Json::as_arr)
            .ok_or(ClientError::BadResponse("missing neighbors"))?
            .iter()
            .map(|item| {
                let pair =
                    item.as_arr().ok_or(ClientError::BadResponse("neighbor is not a pair"))?;
                let id = pair
                    .first()
                    .and_then(Json::as_usize)
                    .ok_or(ClientError::BadResponse("bad neighbor id"))?;
                let score = pair
                    .get(1)
                    .and_then(json_to_f32)
                    .ok_or(ClientError::BadResponse("bad neighbor score"))?;
                Ok((id, score))
            })
            .collect()
    }

    /// Inserts undirected edges; returns how many cached embeddings the
    /// server invalidated.
    pub fn add_edges(&mut self, edges: &[(usize, usize)]) -> Result<usize, ClientError> {
        let resp = self.call(&Request::AddEdges { edges: edges.to_vec() })?;
        resp.get("invalidated")
            .and_then(Json::as_usize)
            .ok_or(ClientError::BadResponse("missing invalidated count"))
    }

    /// Appends a node; returns its id.
    pub fn add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
    ) -> Result<usize, ClientError> {
        let resp = self.call(&Request::AddNode {
            neighbors: neighbors.to_vec(),
            features: features.to_vec(),
        })?;
        resp.get("node").and_then(Json::as_usize).ok_or(ClientError::BadResponse("missing node id"))
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown).map(|_| ())
    }
}
