//! Blocking TCP client for the serving protocol, plus a resilient wrapper
//! ([`ResilientClient`]) that retries idempotent reads with exponential
//! backoff + jitter, reconnects after transport failures, and stamps
//! mutations with `(client, seq)` so server-side dedup makes retried
//! mutations exactly-once.

use std::net::TcpStream;
use std::time::Duration;

use gcmae_obs::Snapshot;

use crate::protocol::{
    read_frame, write_frame, ProtocolError, Request, RequestMeta, Response, ServerStats,
    PROTOCOL_VERSION,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing problem.
    Protocol(ProtocolError),
    /// The server shed the request at admission; retry after backing off.
    Overloaded {
        /// Server-suggested minimum backoff.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the server executed it.
    Expired,
    /// The server answered `{"ok":false}` with this message.
    Server(String),
    /// The server answered `ok` but with an unexpected response kind.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms}ms)")
            }
            ClientError::Expired => write!(f, "request deadline expired"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::BadResponse(what) => write!(f, "bad response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// One connection to a serving endpoint. Methods are synchronous: each sends
/// a request frame and blocks for the matching response.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7431"`).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and returns the parsed response.
    /// [`Response::Error`] is folded into [`ClientError::Server`], so an
    /// `Ok` return is always a success payload.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.call_with(request, &RequestMeta::default())
    }

    /// [`Client::call`] with header fields (deadline, client identity)
    /// attached. Failure frames map to typed errors: sheds to
    /// [`ClientError::Overloaded`], expiries to [`ClientError::Expired`].
    pub fn call_with(
        &mut self,
        request: &Request,
        meta: &RequestMeta,
    ) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_json_with(meta))?;
        let doc = read_frame(&mut self.stream)?;
        match Response::from_json(&doc)? {
            Response::Error { message } => Err(ClientError::Server(message)),
            Response::Overloaded { retry_after_ms } => {
                Err(ClientError::Overloaded { retry_after_ms })
            }
            Response::Expired => Err(ClientError::Expired),
            response => Ok(response),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::BadResponse("expected pong")),
        }
    }

    /// Typed server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::BadResponse("expected stats")),
        }
    }

    /// Live telemetry snapshot: counters, gauges, histograms.
    pub fn metrics(&mut self) -> Result<Snapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            _ => Err(ClientError::BadResponse("expected metrics")),
        }
    }

    /// Embeddings for the listed nodes; row `i` corresponds to `nodes[i]`,
    /// bit-identical to the server model's offline `encode()`.
    pub fn embed(&mut self, nodes: &[usize]) -> Result<Vec<Vec<f32>>, ClientError> {
        match self.call(&Request::Embed {
            nodes: nodes.to_vec(),
        })? {
            Response::Embeddings { rows, .. } => Ok(rows),
            _ => Err(ClientError::BadResponse("expected embeddings")),
        }
    }

    /// Dot-product link scores for the listed pairs.
    pub fn link_scores(&mut self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ClientError> {
        match self.call(&Request::LinkScore {
            pairs: pairs.to_vec(),
        })? {
            Response::Scores(scores) => Ok(scores),
            _ => Err(ClientError::BadResponse("expected scores")),
        }
    }

    /// Highest-scoring graph neighbors of `node`.
    pub fn top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call(&Request::TopK { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Highest-scoring *owned* graph neighbors of `node` (sharded tiers; on
    /// an unsharded server this equals [`Client::top_k`]).
    pub fn top_k_owned(
        &mut self,
        node: usize,
        k: usize,
    ) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call(&Request::TopKOwned { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// The `k` most similar nodes to `node` across the whole graph by
    /// embedding dot product. Candidates come from the server's ANN index;
    /// scores are exact f32 re-scores (protocol v4).
    pub fn sim_top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call(&Request::SimTopK { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Owned-only similarity search (sharded tiers; on an unsharded server
    /// this equals [`Client::sim_top_k`]). Pass `anchor` to search by an
    /// explicit vector when the anchor node is not resident on this server;
    /// `exclude` filters local id `node` from the answer.
    pub fn sim_top_k_owned(
        &mut self,
        node: usize,
        k: usize,
        anchor: Option<&[f32]>,
        exclude: bool,
    ) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call(&Request::SimTopKOwned {
            node,
            k,
            anchor: anchor.map(<[f32]>::to_vec),
            exclude,
        })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Inserts undirected edges; returns how many cached embeddings the
    /// server invalidated.
    pub fn add_edges(&mut self, edges: &[(usize, usize)]) -> Result<usize, ClientError> {
        match self.call(&Request::AddEdges {
            edges: edges.to_vec(),
        })? {
            Response::EdgesAdded { invalidated } => Ok(invalidated),
            _ => Err(ClientError::BadResponse("expected edges_added")),
        }
    }

    /// Appends a node; returns its id.
    pub fn add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
    ) -> Result<usize, ClientError> {
        match self.call(&Request::AddNode {
            neighbors: neighbors.to_vec(),
            features: features.to_vec(),
        })? {
            Response::NodeAdded { node } => Ok(node),
            _ => Err(ClientError::BadResponse("expected node_added")),
        }
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::BadResponse("expected shutdown ack")),
        }
    }
}

/// Retry schedule for [`ResilientClient`]: exponential backoff with full
/// jitter, capped per attempt.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call, the first included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff_ms: u64,
    /// Per-retry backoff cap.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_ms: 5, max_backoff_ms: 200 }
    }
}

/// True for failures worth retrying: transport errors (server may have
/// restarted), sheds, expiries, and server errors explicitly marked
/// transient (injected chaos faults, contained panics, durability hiccups).
/// Semantic rejections — bad node ids, malformed requests — are not retried.
fn is_retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Protocol(_) => true,
        ClientError::Overloaded { .. } => true,
        ClientError::Expired => true,
        ClientError::Server(msg) => {
            msg.contains("transient")
                || msg.contains("fault contained")
                || msg.contains("not durable")
        }
        ClientError::BadResponse(_) => false,
    }
}

/// A self-healing client: reconnects on transport failure, retries
/// idempotent reads under [`RetryPolicy`], honors server backoff hints on
/// overload, and stamps every mutation with `(client, seq)` — retrying a
/// mutation reuses the *same* sequence number, so the server's dedup table
/// turns an ack lost to a disconnect into a replayed answer instead of a
/// double-apply.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    client_id: u64,
    next_seq: u64,
    deadline_ms: Option<u64>,
    conn: Option<Client>,
    rng: u64,
    retries: u64,
    reconnects: u64,
}

impl ResilientClient {
    /// Creates a client for `addr` with a stable nonzero identity (the
    /// dedup key — reuse the same id when reconnecting after a crash).
    pub fn new(addr: &str, client_id: u64) -> Self {
        assert!(client_id != 0, "client id 0 means anonymous");
        Self {
            addr: addr.to_string(),
            policy: RetryPolicy::default(),
            client_id,
            next_seq: 1,
            deadline_ms: None,
            conn: None,
            rng: client_id ^ 0x5851_f42d_4c95_7f2d,
            retries: 0,
            reconnects: 0,
        }
    }

    /// Replaces the retry schedule.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.policy = policy;
        self
    }

    /// Attaches a deadline (ms, measured from server receipt) to every
    /// subsequent request; `None` disables.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// This client's dedup identity.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The sequence number the next mutation will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Resumes the mutation sequence at `next` (floored at 1). Recovery
    /// path: the caller has learned via [`ResilientClient::seq_probe`] how
    /// far the server already advanced this identity's stream and continues
    /// from there instead of colliding with its own history.
    pub(crate) fn resume_seq(&mut self, next: u64) {
        self.next_seq = next.max(1);
    }

    /// Retries performed across all calls so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnects performed across all calls so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn splitmix(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Full-jitter exponential backoff for retry number `retry` (1-based),
    /// floored at any server-provided hint.
    fn backoff(&mut self, retry: u32, error: &ClientError) -> Duration {
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1_u64 << (retry - 1).min(16))
            .min(self.policy.max_backoff_ms);
        let jittered = exp / 2 + self.splitmix() % (exp / 2 + 1);
        let floor = match error {
            ClientError::Overloaded { retry_after_ms } => *retry_after_ms,
            _ => 0,
        };
        Duration::from_millis(jittered.max(floor))
    }

    fn conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(&self.addr)?);
        }
        Ok(self.conn.as_mut().expect("connected above"))
    }

    /// One call under the retry policy with a fixed meta. Transport errors
    /// drop the connection so the next attempt redials.
    fn call_retrying(
        &mut self,
        request: &Request,
        meta: RequestMeta,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0_u32;
        loop {
            attempt += 1;
            let result = match self.conn() {
                Ok(c) => c.call_with(request, &meta),
                Err(e) => Err(e),
            };
            let error = match result {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            if matches!(error, ClientError::Protocol(_)) {
                self.conn = None;
                self.reconnects += 1;
            }
            if attempt >= self.policy.max_attempts || !is_retryable(&error) {
                return Err(error);
            }
            self.retries += 1;
            std::thread::sleep(self.backoff(attempt, &error));
        }
    }

    fn call_read(&mut self, request: &Request) -> Result<Response, ClientError> {
        debug_assert!(request.is_read_only(), "reads only");
        let meta = RequestMeta {
            deadline_ms: self.deadline_ms,
            version: Some(PROTOCOL_VERSION),
            ..RequestMeta::default()
        };
        self.call_retrying(request, meta)
    }

    /// Mutations carry `(client, seq)`; every retry reuses the same `seq`,
    /// and the sequence advances only once the server acknowledges.
    fn call_mutation(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.call_mutation_with_halo(request, false)
    }

    /// [`ResilientClient::call_mutation`] with an explicit ownership bit —
    /// the gateway marks halo-replica `add_node` fan-outs this way.
    pub fn call_mutation_with_halo(
        &mut self,
        request: &Request,
        halo: bool,
    ) -> Result<Response, ClientError> {
        let meta = RequestMeta {
            deadline_ms: self.deadline_ms,
            client: Some(self.client_id),
            seq: Some(self.next_seq),
            version: Some(PROTOCOL_VERSION),
            halo: halo.then_some(true),
        };
        let response = self.call_retrying(request, meta)?;
        self.next_seq += 1;
        Ok(response)
    }

    /// Liveness check, with retries.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call_read(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::BadResponse("expected pong")),
        }
    }

    /// Typed server counters, with retries.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call_read(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::BadResponse("expected stats")),
        }
    }

    /// Embeddings for the listed nodes, with retries.
    pub fn embed(&mut self, nodes: &[usize]) -> Result<Vec<Vec<f32>>, ClientError> {
        match self.call_read(&Request::Embed { nodes: nodes.to_vec() })? {
            Response::Embeddings { rows, .. } => Ok(rows),
            _ => Err(ClientError::BadResponse("expected embeddings")),
        }
    }

    /// Dot-product link scores, with retries.
    pub fn link_scores(&mut self, pairs: &[(usize, usize)]) -> Result<Vec<f32>, ClientError> {
        match self.call_read(&Request::LinkScore { pairs: pairs.to_vec() })? {
            Response::Scores(scores) => Ok(scores),
            _ => Err(ClientError::BadResponse("expected scores")),
        }
    }

    /// Highest-scoring neighbors, with retries.
    pub fn top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call_read(&Request::TopK { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Highest-scoring *owned* neighbors, with retries (sharded tiers).
    pub fn top_k_owned(
        &mut self,
        node: usize,
        k: usize,
    ) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call_read(&Request::TopKOwned { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Global similarity search, with retries (protocol v4).
    pub fn sim_top_k(&mut self, node: usize, k: usize) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call_read(&Request::SimTopK { node, k })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Owned-only similarity search, with retries (sharded tiers). `anchor`
    /// searches by an explicit vector; `exclude` filters local id `node`.
    pub fn sim_top_k_owned(
        &mut self,
        node: usize,
        k: usize,
        anchor: Option<&[f32]>,
        exclude: bool,
    ) -> Result<Vec<(usize, f32)>, ClientError> {
        match self.call_read(&Request::SimTopKOwned {
            node,
            k,
            anchor: anchor.map(<[f32]>::to_vec),
            exclude,
        })? {
            Response::Neighbors(ranked) => Ok(ranked),
            _ => Err(ClientError::BadResponse("expected neighbors")),
        }
    }

    /// Live telemetry snapshot, with retries.
    pub fn metrics(&mut self) -> Result<Snapshot, ClientError> {
        match self.call_read(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            _ => Err(ClientError::BadResponse("expected metrics")),
        }
    }

    /// The last mutation sequence the server acknowledged for *this*
    /// client's identity (0 when it has none on record), with retries.
    pub fn seq_probe(&mut self) -> Result<u64, ClientError> {
        match self.call_read(&Request::SeqProbe { client: self.client_id })? {
            Response::SeqState { last } => Ok(last),
            _ => Err(ClientError::BadResponse("expected seq_state")),
        }
    }

    /// Inserts undirected edges, sequenced + retried exactly-once.
    pub fn add_edges(&mut self, edges: &[(usize, usize)]) -> Result<usize, ClientError> {
        match self.call_mutation(&Request::AddEdges { edges: edges.to_vec() })? {
            Response::EdgesAdded { invalidated } => Ok(invalidated),
            _ => Err(ClientError::BadResponse("expected edges_added")),
        }
    }

    /// Appends a node, sequenced + retried exactly-once; returns its id.
    pub fn add_node(
        &mut self,
        neighbors: &[usize],
        features: &[f32],
    ) -> Result<usize, ClientError> {
        match self.call_mutation(&Request::AddNode {
            neighbors: neighbors.to_vec(),
            features: features.to_vec(),
        })? {
            Response::NodeAdded { node } => Ok(node),
            _ => Err(ClientError::BadResponse("expected node_added")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::server::Server;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig, ServeFaultPlan};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;

    fn engine(seed: u64) -> Engine {
        let mut rng = seeded_rng(seed);
        let n = 16;
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 4, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Gcn,
            hidden_dim: 6,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 4, &mut rng);
        Engine::new(model, graph, features).unwrap()
    }

    #[test]
    fn resilient_reads_retry_through_injected_transient_faults() {
        let mut eng = engine(1);
        eng.set_fault_plan(ServeFaultPlan {
            fail_read_every: Some(2),
            panic_read_at: None,
        });
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let mut rc = ResilientClient::new(&server.addr().to_string(), 11);
        // Every 2nd engine read fails transiently; with retries every call
        // still comes back successful.
        for i in 0..6_usize {
            let rows = rc.embed(&[i % 16]).expect("retries absorb the fault");
            assert_eq!(rows.len(), 1);
        }
        assert!(rc.retries() >= 1, "at least one injected fault was retried");
        // A semantic error is NOT retried and surfaces as-is. (The fault
        // plan ticks before validation, so at most one transient retry may
        // still precede the rejection — but never a full retry budget.)
        let retries_before = rc.retries();
        assert!(matches!(rc.embed(&[10_000]), Err(ClientError::Server(_))));
        assert!(rc.retries() - retries_before <= 1);
        server.shutdown();
    }

    #[test]
    fn mutation_retry_with_same_seq_is_deduplicated_by_the_server() {
        let eng = engine(2);
        let server = Server::start(eng, "127.0.0.1:0", 32).unwrap();
        let addr = server.addr().to_string();
        let mut rc = ResilientClient::new(&addr, 21);
        assert_eq!(rc.next_seq(), 1);
        let invalidated = rc.add_edges(&[(0, 9)]).unwrap();
        assert_eq!(rc.next_seq(), 2);
        // Simulate an ack lost to a disconnect: replay the SAME (client,
        // seq) on a brand-new connection — exactly what a retrying client
        // does after reconnecting. The server answers from its dedup record
        // instead of applying twice.
        let mut replayer = Client::connect(&addr).unwrap();
        let meta = RequestMeta {
            client: Some(rc.client_id()),
            seq: Some(1),
            ..RequestMeta::default()
        };
        match replayer
            .call_with(&Request::AddEdges { edges: vec![(0, 9)] }, &meta)
            .unwrap()
        {
            Response::EdgesAdded { invalidated: again } => assert_eq!(again, invalidated),
            other => panic!("expected edges_added, got {other:?}"),
        }
        let stats = rc.stats().unwrap();
        assert_eq!(stats.dedup_hits, 1);
        // The edge was applied exactly once: 15 path edges + 1 new.
        assert_eq!(stats.num_edges, 16);
        // Failed mutations do not consume a sequence number.
        assert!(rc.add_edges(&[(0, 10_000)]).is_err());
        assert_eq!(rc.next_seq(), 2);
        server.shutdown();
    }

    #[test]
    fn backoff_grows_exponentially_and_honors_server_hints() {
        let mut rc = ResilientClient::new("127.0.0.1:1", 31).with_policy(RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 8,
            max_backoff_ms: 100,
        });
        let plain = ClientError::Expired;
        for retry in 1..=8_u32 {
            let exp = (8_u64 << (retry - 1)).min(100);
            for _ in 0..16 {
                let d = rc.backoff(retry, &plain).as_millis() as u64;
                assert!(d >= exp / 2 && d <= exp, "retry {retry}: {d} vs exp {exp}");
            }
        }
        // An overload hint floors the backoff.
        let hinted = ClientError::Overloaded { retry_after_ms: 500 };
        assert!(rc.backoff(1, &hinted).as_millis() as u64 >= 500);
    }
}
