//! Serving bundles: one binary artifact holding everything the server needs
//! to come up — encoder architecture, graph, node features, and inference
//! (v1) parameters.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u32  magic "GSRB"
//! u32  version (1)
//! u64  header length, then that many bytes of JSON:
//!      {"encoder":..,"heads":..,"hidden_dim":..,"layers":..,"proj_dim":..}
//! u64  num_nodes
//! u64  num_edges, then num_edges × (u32 u, u32 v) undirected pairs
//! u64  feature rows, u64 feature cols, rows·cols × f32
//! u64  params length, then a v1 checkpoint (gcmae-nn serialize format)
//! ```

use gcmae_core::{EncoderChoice, Gcmae, GcmaeConfig};
use gcmae_graph::{Graph, GraphError};
use gcmae_nn::serialize::save_params;
use gcmae_nn::{Bytes, CheckpointError};
use gcmae_tensor::Matrix;

use crate::json::Json;

const MAGIC: u32 = 0x4252_5347; // "GSRB" as little-endian bytes
const VERSION: u32 = 1;

/// Bundle decode failure.
#[derive(Debug)]
pub enum BundleError {
    /// Not a bundle.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Input ended early.
    Truncated,
    /// Header JSON missing or malformed.
    BadHeader(&'static str),
    /// Embedded edge list failed graph validation.
    Graph(GraphError),
    /// Embedded parameters failed checkpoint validation.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not a GSRB bundle"),
            BundleError::BadVersion(v) => write!(f, "unsupported bundle version {v}"),
            BundleError::Truncated => write!(f, "bundle is truncated"),
            BundleError::BadHeader(what) => write!(f, "bad bundle header: {what}"),
            BundleError::Graph(e) => write!(f, "bundle graph rejected: {e}"),
            BundleError::Checkpoint(e) => write!(f, "bundle params rejected: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<GraphError> for BundleError {
    fn from(e: GraphError) -> Self {
        BundleError::Graph(e)
    }
}

impl From<CheckpointError> for BundleError {
    fn from(e: CheckpointError) -> Self {
        BundleError::Checkpoint(e)
    }
}

/// Serializes a model + resident graph + features into a bundle.
pub fn save_bundle(model: &Gcmae, graph: &Graph, features: &Matrix) -> Vec<u8> {
    assert_eq!(features.rows(), graph.num_nodes(), "features must cover the graph");
    assert_eq!(features.cols(), model.in_dim(), "features must match the model input");
    let cfg = model.config();
    let (encoder, heads) = match cfg.encoder {
        EncoderChoice::Gcn => ("gcn", 0),
        EncoderChoice::Sage => ("sage", 0),
        EncoderChoice::Gat { heads } => ("gat", heads),
        EncoderChoice::Gin => ("gin", 0),
    };
    let header = Json::Obj(vec![
        ("encoder".into(), Json::str(encoder)),
        ("heads".into(), Json::int(heads)),
        ("hidden_dim".into(), Json::int(cfg.hidden_dim)),
        ("layers".into(), Json::int(cfg.layers)),
        ("proj_dim".into(), Json::int(cfg.proj_dim)),
    ])
    .dump();

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(header.len() as u64).to_le_bytes());
    out.extend_from_slice(header.as_bytes());

    out.extend_from_slice(&(graph.num_nodes() as u64).to_le_bytes());
    out.extend_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    for (u, v) in graph.undirected_edges() {
        out.extend_from_slice(&(u as u32).to_le_bytes());
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }

    out.extend_from_slice(&(features.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(features.cols() as u64).to_le_bytes());
    for &x in features.as_slice() {
        out.extend_from_slice(&x.to_le_bytes());
    }

    // Inference-only (v1) parameters: no optimizer state in a bundle.
    let params = save_params(&model.store);
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes::Buf::chunk(&params));
    out
}

/// Decodes a bundle back into a model, graph, and features. Every embedded
/// structure goes through its normal validating constructor.
pub fn load_bundle(data: &[u8]) -> Result<(Gcmae, Graph, Matrix), BundleError> {
    let mut cur = Cursor { data, pos: 0 };
    if cur.u32()? != MAGIC {
        return Err(BundleError::BadMagic);
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(BundleError::BadVersion(version));
    }

    let header_len = cur.u64()? as usize;
    let header_bytes = cur.take(header_len)?;
    let header_text =
        std::str::from_utf8(header_bytes).map_err(|_| BundleError::BadHeader("not utf-8"))?;
    let header =
        Json::parse(header_text).map_err(|_| BundleError::BadHeader("not valid JSON"))?;
    let field = |key: &str| {
        header.get(key).and_then(Json::as_usize).ok_or(BundleError::BadHeader("missing field"))
    };
    let heads = field("heads")?;
    let encoder = match header.get("encoder").and_then(Json::as_str) {
        Some("gcn") => EncoderChoice::Gcn,
        Some("sage") => EncoderChoice::Sage,
        Some("gat") => {
            if heads == 0 {
                return Err(BundleError::BadHeader("gat needs heads >= 1"));
            }
            EncoderChoice::Gat { heads }
        }
        Some("gin") => EncoderChoice::Gin,
        _ => return Err(BundleError::BadHeader("unknown encoder")),
    };
    let cfg = GcmaeConfig {
        encoder,
        hidden_dim: field("hidden_dim")?,
        layers: field("layers")?,
        proj_dim: field("proj_dim")?,
        ..GcmaeConfig::default()
    };
    if cfg.hidden_dim == 0 || cfg.layers == 0 || cfg.proj_dim == 0 {
        return Err(BundleError::BadHeader("zero-sized architecture"));
    }

    let num_nodes = cur.u64()? as usize;
    let num_edges = cur.u64()? as usize;
    if num_edges > cur.remaining() / 8 {
        return Err(BundleError::Truncated);
    }
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let u = cur.u32()? as usize;
        let v = cur.u32()? as usize;
        edges.push((u, v));
    }
    let graph = Graph::try_from_edges(num_nodes, &edges)?;

    let rows = cur.u64()? as usize;
    let cols = cur.u64()? as usize;
    if rows != num_nodes {
        return Err(BundleError::BadHeader("feature rows do not match graph"));
    }
    if cols == 0 || rows.saturating_mul(cols) > cur.remaining() / 4 {
        return Err(BundleError::Truncated);
    }
    let mut values = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        values.push(cur.f32()?);
    }
    let features = Matrix::from_vec(rows, cols, values);

    let params_len = cur.u64()? as usize;
    let params_bytes = cur.take(params_len)?;
    let params = Bytes::from(params_bytes.to_vec());
    let model = Gcmae::from_inference(&cfg, cols, &params)?;
    Ok((model, graph, features))
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BundleError> {
        if self.remaining() < n {
            return Err(BundleError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, BundleError> {
        // 4-byte take always fits the array
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, BundleError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, BundleError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_core::model::seeded_rng;

    fn fixture(encoder: EncoderChoice) -> (Gcmae, Graph, Matrix) {
        let mut rng = seeded_rng(9);
        let graph = Graph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 9)]);
        let features = Matrix::uniform(10, 3, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig { encoder, hidden_dim: 8, proj_dim: 4, ..GcmaeConfig::fast() };
        (Gcmae::new(&cfg, 3, &mut rng), graph, features)
    }

    #[test]
    fn bundle_roundtrips_model_graph_and_features_bitwise() {
        for encoder in [EncoderChoice::Gcn, EncoderChoice::Gat { heads: 2 }] {
            let (model, graph, features) = fixture(encoder);
            let blob = save_bundle(&model, &graph, &features);
            let (model2, graph2, features2) = load_bundle(&blob).unwrap();
            assert_eq!(graph2.num_nodes(), graph.num_nodes());
            assert_eq!(graph2.num_edges(), graph.num_edges());
            assert_eq!(features2.as_slice(), features.as_slice());
            let a = model.encode(&graph, &features);
            let b = model2.encode(&graph2, &features2);
            assert_eq!(a.as_slice(), b.as_slice(), "{encoder:?}");
        }
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let (model, graph, features) = fixture(EncoderChoice::Sage);
        let blob = save_bundle(&model, &graph, &features);
        for cut in [0, 3, 7, 12, blob.len() / 2, blob.len() - 1] {
            assert!(load_bundle(&blob[..cut]).is_err(), "accepted cut at {cut}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let (model, graph, features) = fixture(EncoderChoice::Sage);
        let mut blob = save_bundle(&model, &graph, &features);
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(load_bundle(&bad_magic), Err(BundleError::BadMagic)));
        blob[4] = 99;
        assert!(matches!(load_bundle(&blob), Err(BundleError::BadVersion(_))));
    }

    #[test]
    fn corrupt_edge_list_fails_graph_validation() {
        let (model, graph, features) = fixture(EncoderChoice::Sage);
        let blob = save_bundle(&model, &graph, &features);
        // header is 16 bytes + header JSON; edge section starts right after
        let header_len = u64::from_le_bytes(blob[8..16].try_into().unwrap()) as usize;
        let edges_at = 16 + header_len + 16; // skip num_nodes + num_edges
        let mut bad = blob.clone();
        bad[edges_at..edges_at + 4].copy_from_slice(&900_u32.to_le_bytes());
        assert!(matches!(load_bundle(&bad), Err(BundleError::Graph(_))));
    }
}
