//! Mutation write-ahead log: append-only, checksummed, fsynced before the
//! mutation is acknowledged, replayed against the GSRB bundle on restart.
//!
//! The durability contract is *ack implies replay*: the scheduler appends a
//! record (and syncs it to disk) after a mutation is applied in memory but
//! **before** the acknowledgment frame leaves the server, so any mutation a
//! client saw succeed is reconstructed by [`replay`] after a crash. The
//! converse direction is torn-tail tolerance: a crash mid-append leaves a
//! truncated or corrupt final record, which [`Wal::open`] detects by length
//! and CRC and truncates away — the corresponding mutation was never
//! acknowledged, so dropping it is correct.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u32  magic "GWAL"
//! u32  version (1)
//! repeated records:
//!   u32  payload length
//!   u32  CRC-32 (IEEE) of the payload
//!   payload: JSON {"client":c,"seq":s,"op":...}   (a mutation Request
//!            document plus the client identity/sequence header)
//! ```
//!
//! Records carry the client-assigned `(client, seq)` pair so replay also
//! rebuilds the mutation-dedup table: a client that reconnects after a crash
//! and retries its last mutation gets the recorded answer instead of a
//! double-apply.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::engine::Engine;
use crate::json::Json;
use crate::protocol::{Request, RequestMeta, Response};

const MAGIC: u32 = 0x4c41_5747; // "GWAL" as little-endian bytes
const VERSION: u32 = 1;

/// One durable mutation: the request plus the client identity header used
/// for dedup. `client`/`seq` are 0 when the submitting client sent none.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Stable client identity (0 = anonymous).
    pub client: u64,
    /// Client-assigned mutation sequence number (0 = unsequenced).
    pub seq: u64,
    /// The mutation itself (`add_edges` or `add_node`).
    pub request: Request,
    /// True when an `add_node` installed a halo replica rather than an owned
    /// node (sharded tiers only; see [`crate::partition`]). Replay must
    /// preserve the distinction or a restarted shard would start answering
    /// owned-only queries for nodes it merely replicates.
    pub halo: bool,
}

/// WAL open/decode failure.
#[derive(Debug)]
pub enum WalError {
    /// Socket/file error.
    Io(io::Error),
    /// The file exists but is not a WAL.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// A fully-framed record failed to parse as a mutation request. Unlike a
    /// torn tail this indicates corruption *behind* the sync horizon, which
    /// must fail loudly rather than silently drop acknowledged mutations.
    BadRecord(u64),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::BadMagic => write!(f, "not a GWAL mutation log"),
            WalError::BadVersion(v) => write!(f, "unsupported wal version {v}"),
            WalError::BadRecord(i) => write!(f, "wal record {i} is corrupt behind its checksum"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0_u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn encode_payload(rec: &WalRecord) -> String {
    let meta = RequestMeta {
        client: (rec.client != 0).then_some(rec.client),
        seq: (rec.seq != 0).then_some(rec.seq),
        halo: rec.halo.then_some(true),
        ..RequestMeta::default()
    };
    rec.request.to_json_with(&meta).dump()
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let doc = Json::parse(text).ok()?;
    let request = Request::from_json(&doc).ok()?;
    if request.is_read_only() || matches!(request, Request::Shutdown) {
        return None; // only mutations belong in the log
    }
    let meta = RequestMeta::from_json(&doc);
    Some(WalRecord {
        client: meta.client.unwrap_or(0),
        seq: meta.seq.unwrap_or(0),
        request,
        halo: meta.halo.unwrap_or(false),
    })
}

/// An open mutation log positioned for appends.
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
    bytes: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Wal {
    /// Opens (or creates) the log at `path`, validates the header, replays
    /// every intact record, truncates any torn tail left by a crash
    /// mid-append, and returns the log positioned for new appends together
    /// with the recovered records in append order.
    pub fn open(path: impl AsRef<Path>) -> Result<(Wal, Vec<WalRecord>), WalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        if data.is_empty() {
            file.write_all(&MAGIC.to_le_bytes())?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_all()?;
            return Ok((
                Wal {
                    file,
                    path,
                    records: 0,
                    bytes: 8,
                },
                Vec::new(),
            ));
        }
        if data.len() < 8 {
            // Shorter than the header: a torn header from a crash during
            // creation. Nothing was ever acknowledged from this file.
            return Self::recreate(file, path);
        }
        if u32::from_le_bytes([data[0], data[1], data[2], data[3]]) != MAGIC {
            return Err(WalError::BadMagic);
        }
        let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
        if version != VERSION {
            return Err(WalError::BadVersion(version));
        }

        let mut records = Vec::new();
        let mut pos = 8_usize;
        let mut valid_end = 8_usize;
        while pos + 8 <= data.len() {
            let len =
                u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]])
                    as usize;
            let want_crc =
                u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            let body_at = pos + 8;
            if body_at + len > data.len() {
                break; // torn tail: record body never fully landed
            }
            let payload = &data[body_at..body_at + len];
            if crc32(payload) != want_crc {
                break; // torn tail: body landed partially over stale bytes
            }
            match decode_payload(payload) {
                Some(rec) => records.push(rec),
                // Checksum says the bytes are exactly what was written, so a
                // parse failure means the writer logged garbage — corruption
                // behind the sync horizon, not a torn tail.
                None => return Err(WalError::BadRecord(records.len() as u64)),
            }
            pos = body_at + len;
            valid_end = pos;
        }
        if valid_end < data.len() {
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;
        Ok((
            Wal {
                file,
                path,
                records: records.len() as u64,
                bytes: valid_end as u64,
            },
            records,
        ))
    }

    fn recreate(mut file: File, path: PathBuf) -> Result<(Wal, Vec<WalRecord>), WalError> {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&MAGIC.to_le_bytes())?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok((
            Wal {
                file,
                path,
                records: 0,
                bytes: 8,
            },
            Vec::new(),
        ))
    }

    /// Appends one record and syncs it to disk. Returns the record's encoded
    /// size in bytes. The caller must not acknowledge the mutation until
    /// this returns `Ok`.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        let payload = encode_payload(rec);
        let body = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(body).to_le_bytes());
        frame.extend_from_slice(body);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Forces everything written so far to disk (drain/shutdown path; each
    /// append already syncs, so this is a final belt-and-braces barrier).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Records appended or recovered through this handle.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes in the log, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Verdict for an incoming `(client, seq)` mutation header.
#[derive(Clone, Debug, PartialEq)]
pub enum DedupVerdict {
    /// First sighting: apply the mutation, then [`DedupTable::record`] it.
    Fresh,
    /// Exact replay of the client's last acknowledged mutation (a retry
    /// after a lost ack): answer with the recorded response, apply nothing.
    Replay(Response),
    /// `seq` is older than the client's last acknowledged sequence — the
    /// client is confused; reject rather than silently re-apply.
    Stale {
        /// The newest sequence the server has acknowledged for this client.
        last: u64,
    },
}

/// Per-client mutation dedup state: the last acknowledged sequence number
/// and its response. Rebuilt from the WAL on recovery, so a client retrying
/// its in-flight mutation across a server crash still gets exactly-once
/// application.
#[derive(Debug, Default)]
pub struct DedupTable {
    last: HashMap<u64, (u64, Response)>,
}

impl DedupTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a mutation header. `seq == 0` or an unknown client is
    /// always [`DedupVerdict::Fresh`].
    pub fn check(&self, client: u64, seq: u64) -> DedupVerdict {
        if client == 0 || seq == 0 {
            return DedupVerdict::Fresh;
        }
        match self.last.get(&client) {
            Some(&(last, ref resp)) if seq == last => DedupVerdict::Replay(resp.clone()),
            Some(&(last, _)) if seq < last => DedupVerdict::Stale { last },
            _ => DedupVerdict::Fresh,
        }
    }

    /// The last acknowledged sequence for `client` (0 when unknown) — what
    /// the `seq_probe` op answers with.
    pub fn last_seq(&self, client: u64) -> u64 {
        self.last.get(&client).map(|&(seq, _)| seq).unwrap_or(0)
    }

    /// Records the response acknowledged for `(client, seq)`.
    pub fn record(&mut self, client: u64, seq: u64, response: Response) {
        if client != 0 && seq != 0 {
            self.last.insert(client, (seq, response));
        }
    }

    /// Number of clients tracked.
    pub fn len(&self) -> usize {
        self.last.len()
    }

    /// True when no client has been recorded.
    pub fn is_empty(&self) -> bool {
        self.last.is_empty()
    }
}

/// Replays recovered WAL records against `engine` in append order and
/// rebuilds the dedup table. Responses recorded for replayed mutations are
/// synthesized from the replay (the invalidation counts a pre-crash client
/// saw may differ, but success/identity — the fields retries key off —
/// match). A record the engine rejects is a consistency bug between the WAL
/// and the bundle; it is surfaced as an error rather than skipped.
pub fn replay(engine: &mut Engine, records: &[WalRecord]) -> Result<DedupTable, WalError> {
    let mut dedup = DedupTable::new();
    for (i, rec) in records.iter().enumerate() {
        let response = match &rec.request {
            Request::AddEdges { edges } => match engine.add_edges(edges) {
                Ok(stale) => Response::EdgesAdded { invalidated: stale },
                Err(_) => return Err(WalError::BadRecord(i as u64)),
            },
            Request::AddNode { neighbors, features } => {
                match engine.add_node_with(neighbors, features, !rec.halo) {
                    Ok(node) => Response::NodeAdded { node },
                    Err(_) => return Err(WalError::BadRecord(i as u64)),
                }
            }
            Request::Reindex { order } => match engine.reindex(order) {
                Ok(nodes) => Response::Reindexed { nodes },
                Err(_) => return Err(WalError::BadRecord(i as u64)),
            },
            _ => return Err(WalError::BadRecord(i as u64)),
        };
        dedup.record(rec.client, rec.seq, response);
    }
    Ok(dedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: u64, seq: u64, edges: &[(usize, usize)]) -> WalRecord {
        WalRecord {
            client,
            seq,
            request: Request::AddEdges {
                edges: edges.to_vec(),
            },
            halo: false,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gcmae_wal_test_{}_{name}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = tmp("roundtrip");
        let (mut wal, recovered) = Wal::open(&path).expect("create");
        assert!(recovered.is_empty());
        let records = vec![
            rec(7, 1, &[(0, 5)]),
            rec(7, 2, &[(1, 2), (3, 4)]),
            WalRecord {
                client: 9,
                seq: 1,
                request: Request::AddNode {
                    neighbors: vec![0, 2],
                    features: vec![0.25, -1.5],
                },
                halo: true,
            },
        ];
        for r in &records {
            wal.append(r).expect("append");
        }
        assert_eq!(wal.records(), 3);
        drop(wal);
        let (wal, recovered) = Wal::open(&path).expect("reopen");
        assert_eq!(recovered, records);
        assert_eq!(wal.records(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn");
        let (mut wal, _) = Wal::open(&path).expect("create");
        wal.append(&rec(1, 1, &[(0, 1)])).expect("append");
        wal.append(&rec(1, 2, &[(2, 3)])).expect("append");
        drop(wal);
        // Crash mid-append: chop bytes off the last record.
        let full = std::fs::read(&path).expect("read");
        for cut in [1_usize, 5, 9] {
            std::fs::write(&path, &full[..full.len() - cut]).expect("truncate");
            let (mut wal, recovered) = Wal::open(&path).expect("recover");
            assert_eq!(recovered, vec![rec(1, 1, &[(0, 1)])], "cut {cut}");
            // the torn bytes are gone; appending after recovery works
            wal.append(&rec(1, 3, &[(4, 5)])).expect("append after recovery");
            drop(wal);
            let (_, recovered) = Wal::open(&path).expect("reopen");
            assert_eq!(recovered, vec![rec(1, 1, &[(0, 1)]), rec(1, 3, &[(4, 5)])]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bitflip_in_a_record_body_stops_replay_at_the_flip() {
        let path = tmp("bitflip");
        let (mut wal, _) = Wal::open(&path).expect("create");
        wal.append(&rec(1, 1, &[(0, 1)])).expect("append");
        wal.append(&rec(1, 2, &[(2, 3)])).expect("append");
        drop(wal);
        let mut data = std::fs::read(&path).expect("read");
        let last = data.len() - 3;
        data[last] ^= 0x40; // corrupt the final record's body
        std::fs::write(&path, &data).expect("write");
        let (_, recovered) = Wal::open(&path).expect("recover");
        assert_eq!(recovered, vec![rec(1, 1, &[(0, 1)])]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE....").expect("write");
        assert!(matches!(Wal::open(&path), Err(WalError::BadMagic)));
        let mut hdr = MAGIC.to_le_bytes().to_vec();
        hdr.extend_from_slice(&9_u32.to_le_bytes());
        std::fs::write(&path, &hdr).expect("write");
        assert!(matches!(Wal::open(&path), Err(WalError::BadVersion(9))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dedup_table_classifies_fresh_replay_and_stale() {
        let mut t = DedupTable::new();
        assert_eq!(t.check(5, 1), DedupVerdict::Fresh);
        t.record(5, 1, Response::EdgesAdded { invalidated: 3 });
        assert_eq!(
            t.check(5, 1),
            DedupVerdict::Replay(Response::EdgesAdded { invalidated: 3 })
        );
        assert_eq!(t.check(5, 2), DedupVerdict::Fresh);
        t.record(5, 2, Response::NodeAdded { node: 9 });
        assert_eq!(t.check(5, 1), DedupVerdict::Stale { last: 2 });
        // other clients and anonymous submissions are independent
        assert_eq!(t.check(6, 1), DedupVerdict::Fresh);
        assert_eq!(t.check(0, 1), DedupVerdict::Fresh);
        assert_eq!(t.check(5, 0), DedupVerdict::Fresh);
        t.record(0, 7, Response::Pong);
        assert_eq!(t.len(), 1, "anonymous mutations are not tracked");
        assert_eq!(t.last_seq(5), 2);
        assert_eq!(t.last_seq(6), 0, "unknown client probes as 0");
    }

    #[test]
    fn torn_header_is_recreated_empty() {
        let path = tmp("torn_header");
        std::fs::write(&path, &MAGIC.to_le_bytes()[..3]).expect("write");
        let (wal, recovered) = Wal::open(&path).expect("recreate");
        assert!(recovered.is_empty());
        assert_eq!(wal.bytes(), 8);
        let _ = std::fs::remove_file(&path);
    }
}
