//! Deterministic graph partitioner for the sharded serving tier.
//!
//! Nodes are split into `S` disjoint *owned* sets (hash or BFS-grown), and
//! each shard additionally replicates a **halo**: every node within
//! `halo_depth` hops of the shard's owned set. The shard then serves the
//! induced subgraph over its resident (owned ∪ halo) set.
//!
//! ## Why `halo_depth = encoder_layers + 1`
//!
//! An `L`-layer encoder reads, for an owned target, the features of every
//! node within `L` hops — and, through degree-based normalization
//! ([`gcmae_graph::Graph::gcn_norm`], SAGE's mean), the **full adjacency
//! row** (hence the true global degree) of every node within `L` hops.
//! A node's row is complete in the induced subgraph exactly when all its
//! neighbors are resident, so residents must extend one hop past the
//! feature horizon: depth `L + 1`. With that halo, a shard's embedding of
//! any node within distance 1 of its owned set (the owned nodes themselves
//! included) is **bit-identical** to the single-process answer — the
//! restricted forward walks the same rows, degrees, and float order.
//!
//! Halo replicas are marked `owned = false` in the shard's ownership mask,
//! which is what makes fan-out top-k exact: each shard answers only owned
//! candidates, so the gateway's merge sees every true neighbor exactly once
//! (see [`crate::gateway`]).

use std::collections::VecDeque;

use gcmae_core::Gcmae;
use gcmae_graph::Graph;
use gcmae_tensor::Matrix;

use crate::bundle::save_bundle;
use crate::json::Json;

/// How owned sets are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// `owner(v) = splitmix64(v) % S`: stateless, uniform, no locality.
    Hash,
    /// Balanced multi-source BFS growth: contiguous regions with small
    /// boundaries, so halos (and cross-shard fan-outs) stay small.
    Bfs,
}

impl PartitionMode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            PartitionMode::Hash => "hash",
            PartitionMode::Bfs => "bfs",
        }
    }

    /// Parses [`PartitionMode::name`].
    pub fn parse(s: &str) -> Option<PartitionMode> {
        match s {
            "hash" => Some(PartitionMode::Hash),
            "bfs" => Some(PartitionMode::Bfs),
            _ => None,
        }
    }
}

/// Partition failure.
#[derive(Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// Shard count must be ≥ 1 and ≤ the node count.
    BadShardCount {
        /// Requested shard count.
        shards: usize,
        /// Nodes available.
        num_nodes: usize,
    },
    /// A shard ended up owning nothing (hash mode on tiny graphs).
    EmptyShard(usize),
    /// Halo depth 0: the tier's exactness arguments need depth ≥ 1 (the
    /// anchor must be resident on every neighbor's owning shard for fan-out
    /// top-k, and owned embeddings need complete adjacency rows one hop past
    /// the feature horizon), so the degraded layout is rejected rather than
    /// silently returning wrong answers.
    BadHaloDepth,
    /// A manifest failed structural validation.
    BadManifest(&'static str),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::BadShardCount { shards, num_nodes } => {
                write!(f, "cannot split {num_nodes} nodes into {shards} shards")
            }
            PartitionError::EmptyShard(s) => write!(f, "shard {s} owns no nodes"),
            PartitionError::BadHaloDepth => write!(
                f,
                "halo depth must be >= 1 (exact fan-out needs the anchor resident on \
                 every neighbor's owner)"
            ),
            PartitionError::BadManifest(what) => write!(f, "bad tier manifest: {what}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// One shard's node sets.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpec {
    /// Resident global node ids, sorted ascending. The shard's local id for
    /// a resident is its index in this list — the gateway and the partition
    /// agree on this by construction.
    pub residents: Vec<usize>,
    /// Parallel to `residents`: true for owned nodes, false for halo
    /// replicas.
    pub owned: Vec<bool>,
}

impl ShardSpec {
    /// Owned node count.
    pub fn owned_nodes(&self) -> usize {
        self.owned.iter().filter(|&&o| o).count()
    }
}

/// A complete tier layout: owner table plus per-shard resident sets.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// Partitioning mode used (recorded for the manifest).
    pub mode: PartitionMode,
    /// Replication depth around each owned set.
    pub halo_depth: usize,
    /// Total nodes in the global graph at partition time.
    pub num_nodes: usize,
    /// `owner[v]` = shard owning global node `v`.
    pub owner: Vec<u32>,
    /// Per-shard resident sets.
    pub shards: Vec<ShardSpec>,
}

/// The halo depth sufficient for bit-exact owned embeddings under an
/// `encoder_layers`-layer encoder (see module docs for the `+ 1`).
pub fn halo_depth_for(encoder_layers: usize) -> usize {
    encoder_layers + 1
}

/// SplitMix64: the stateless hash behind [`PartitionMode::Hash`]. Shared
/// with the gateway so owner assignment for nodes added after partition
/// time agrees with partition-time assignment by construction.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Partition {
    /// Splits `graph` into `shards` owned sets under `mode` and replicates a
    /// halo of `halo_depth` hops around each.
    pub fn build(
        graph: &Graph,
        shards: usize,
        mode: PartitionMode,
        halo_depth: usize,
    ) -> Result<Partition, PartitionError> {
        let n = graph.num_nodes();
        if shards == 0 || shards > n {
            return Err(PartitionError::BadShardCount { shards, num_nodes: n });
        }
        if halo_depth == 0 {
            return Err(PartitionError::BadHaloDepth);
        }
        let owner = match mode {
            PartitionMode::Hash => (0..n)
                .map(|v| (splitmix64(v as u64) % shards as u64) as u32)
                .collect::<Vec<u32>>(),
            PartitionMode::Bfs => bfs_owners(graph, shards),
        };
        let mut specs = Vec::with_capacity(shards);
        for s in 0..shards {
            let owned_set: Vec<usize> =
                (0..n).filter(|&v| owner[v] == s as u32).collect();
            if owned_set.is_empty() {
                return Err(PartitionError::EmptyShard(s));
            }
            // k_hop_closed returns the closed ball, sorted ascending — the
            // canonical resident (and local-id) order.
            let residents = graph.k_hop_closed(&owned_set, halo_depth);
            let owned = residents
                .iter()
                .map(|&v| owner[v] == s as u32)
                .collect::<Vec<bool>>();
            specs.push(ShardSpec { residents, owned });
        }
        Ok(Partition {
            mode,
            halo_depth,
            num_nodes: n,
            owner,
            shards: specs,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The induced subgraph shard `s` serves: every resident, every edge
    /// between residents, renumbered to local ids in resident order.
    pub fn shard_graph(&self, graph: &Graph, s: usize) -> Graph {
        graph.induced_subgraph(&self.shards[s].residents)
    }

    /// Feature rows for shard `s`'s residents, in local-id order.
    pub fn shard_features(&self, features: &Matrix, s: usize) -> Matrix {
        let spec = &self.shards[s];
        let cols = features.cols();
        let mut data = Vec::with_capacity(spec.residents.len() * cols);
        for &v in &spec.residents {
            data.extend_from_slice(features.row(v));
        }
        Matrix::from_vec(spec.residents.len(), cols, data)
    }

    /// Serializes shard `s` as a standalone GSRB bundle (its induced graph
    /// and gathered features under the shared model).
    pub fn shard_bundle(
        &self,
        model: &Gcmae,
        graph: &Graph,
        features: &Matrix,
        s: usize,
    ) -> Vec<u8> {
        let sg = self.shard_graph(graph, s);
        let sf = self.shard_features(features, s);
        save_bundle(model, &sg, &sf)
    }

    /// The tier manifest: everything the gateway (and each shard sidecar)
    /// needs to agree on the layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("mode".to_string(), Json::str(self.mode.name())),
            ("halo_depth".to_string(), Json::int(self.halo_depth)),
            ("num_nodes".to_string(), Json::int(self.num_nodes)),
            (
                "owner".to_string(),
                Json::Arr(self.owner.iter().map(|&s| Json::int(s as usize)).collect()),
            ),
            (
                "shards".to_string(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|spec| {
                            Json::Obj(vec![
                                (
                                    "residents".to_string(),
                                    Json::Arr(
                                        spec.residents.iter().map(|&v| Json::int(v)).collect(),
                                    ),
                                ),
                                (
                                    "owned".to_string(),
                                    Json::Arr(
                                        spec.owned.iter().map(|&o| Json::Bool(o)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses [`Partition::to_json`], validating structural invariants
    /// (owner table covers every node, residents sorted, masks parallel).
    pub fn from_json(doc: &Json) -> Result<Partition, PartitionError> {
        let bad = PartitionError::BadManifest;
        let mode = doc
            .get("mode")
            .and_then(Json::as_str)
            .and_then(PartitionMode::parse)
            .ok_or(bad("mode"))?;
        let halo_depth = doc
            .get("halo_depth")
            .and_then(Json::as_usize)
            .ok_or(bad("halo_depth"))?;
        if halo_depth == 0 {
            return Err(PartitionError::BadHaloDepth);
        }
        let num_nodes = doc
            .get("num_nodes")
            .and_then(Json::as_usize)
            .ok_or(bad("num_nodes"))?;
        let owner_arr = doc.get("owner").and_then(Json::as_arr).ok_or(bad("owner"))?;
        if owner_arr.len() != num_nodes {
            return Err(bad("owner table length"));
        }
        let owner = owner_arr
            .iter()
            .map(|j| j.as_usize().map(|s| s as u32).ok_or(bad("owner entry")))
            .collect::<Result<Vec<u32>, _>>()?;
        let shard_arr = doc.get("shards").and_then(Json::as_arr).ok_or(bad("shards"))?;
        let mut shards = Vec::with_capacity(shard_arr.len());
        for spec in shard_arr {
            let residents = spec
                .get("residents")
                .and_then(Json::as_arr)
                .ok_or(bad("residents"))?
                .iter()
                .map(|j| j.as_usize().ok_or(bad("resident id")))
                .collect::<Result<Vec<usize>, _>>()?;
            let owned = spec
                .get("owned")
                .and_then(Json::as_arr)
                .ok_or(bad("owned"))?
                .iter()
                .map(|j| j.as_bool().ok_or(bad("owned entry")))
                .collect::<Result<Vec<bool>, _>>()?;
            if owned.len() != residents.len() {
                return Err(bad("owned/residents length mismatch"));
            }
            if residents.windows(2).any(|w| w[0] >= w[1]) {
                return Err(bad("residents not sorted"));
            }
            if residents.iter().any(|&v| v >= num_nodes) {
                return Err(bad("resident out of range"));
            }
            shards.push(ShardSpec { residents, owned });
        }
        if shards.is_empty() {
            return Err(bad("no shards"));
        }
        if owner.iter().any(|&s| s as usize >= shards.len()) {
            return Err(bad("owner out of range"));
        }
        Ok(Partition { mode, halo_depth, num_nodes, owner, shards })
    }
}

/// Balanced multi-source BFS: shards claim contiguous regions in turn, each
/// bounded by `ceil(remaining / shards_left)` so sizes stay within one node
/// of each other even on disconnected graphs (exhausted components fall
/// through to the lowest unassigned seed).
fn bfs_owners(graph: &Graph, shards: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut owner = vec![u32::MAX; n];
    let mut assigned = 0_usize;
    let mut cursor = 0_usize; // lowest possibly-unassigned node id
    for s in 0..shards {
        let quota = (n - assigned).div_ceil(shards - s);
        let mut claimed = 0_usize;
        let mut frontier: VecDeque<usize> = VecDeque::new();
        while claimed < quota {
            let v = match frontier.pop_front() {
                Some(v) => v,
                None => {
                    // Region exhausted (or fresh shard): seed at the lowest
                    // unassigned node.
                    while cursor < n && owner[cursor] != u32::MAX {
                        cursor += 1;
                    }
                    cursor
                }
            };
            if owner[v] != u32::MAX {
                continue;
            }
            owner[v] = s as u32;
            claimed += 1;
            assigned += 1;
            for &w in graph.neighbors(v) {
                if owner[w as usize] == u32::MAX {
                    frontier.push_back(w as usize);
                }
            }
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> =
            (0..n).map(|v| (v, (v + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn owned_sets_partition_the_graph_exactly() {
        let g = ring(24);
        for mode in [PartitionMode::Hash, PartitionMode::Bfs] {
            let p = Partition::build(&g, 4, mode, 2).unwrap();
            let mut counts = vec![0_usize; 24];
            for (s, spec) in p.shards.iter().enumerate() {
                for (i, &v) in spec.residents.iter().enumerate() {
                    if spec.owned[i] {
                        counts[v] += 1;
                        assert_eq!(p.owner[v], s as u32, "{mode:?}");
                    }
                }
            }
            assert!(counts.iter().all(|&c| c == 1), "{mode:?}: {counts:?}");
        }
    }

    #[test]
    fn bfs_regions_are_balanced_and_contiguous_on_a_ring() {
        let g = ring(20);
        let p = Partition::build(&g, 4, PartitionMode::Bfs, 1).unwrap();
        for spec in &p.shards {
            assert_eq!(spec.owned_nodes(), 5);
        }
        // On a ring, a BFS region + depth-1 halo spans exactly quota + 2.
        for spec in &p.shards {
            assert_eq!(spec.residents.len(), 7);
        }
    }

    #[test]
    fn halo_covers_the_closed_k_hop_ball_of_every_owned_node() {
        let g = ring(30);
        let depth = 3;
        let p = Partition::build(&g, 3, PartitionMode::Hash, depth).unwrap();
        for (s, spec) in p.shards.iter().enumerate() {
            for (i, &v) in spec.residents.iter().enumerate() {
                if !spec.owned[i] {
                    continue;
                }
                for u in g.k_hop_closed(&[v], depth) {
                    assert!(
                        spec.residents.binary_search(&u).is_ok(),
                        "shard {s}: node {u} within {depth} hops of owned {v} not resident"
                    );
                }
            }
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let g = ring(16);
        let p = Partition::build(&g, 4, PartitionMode::Bfs, 2).unwrap();
        let doc = Json::parse(&p.to_json().dump()).unwrap();
        assert_eq!(Partition::from_json(&doc).unwrap(), p);
    }

    #[test]
    fn degenerate_shard_counts_are_rejected() {
        let g = ring(6);
        assert_eq!(
            Partition::build(&g, 0, PartitionMode::Hash, 1),
            Err(PartitionError::BadShardCount { shards: 0, num_nodes: 6 })
        );
        assert_eq!(
            Partition::build(&g, 7, PartitionMode::Bfs, 1),
            Err(PartitionError::BadShardCount { shards: 7, num_nodes: 6 })
        );
        // hash on a tiny graph can leave a shard empty — typed, not a panic
        let tiny = ring(3);
        match Partition::build(&tiny, 3, PartitionMode::Hash, 1) {
            Ok(p) => assert_eq!(p.num_shards(), 3),
            Err(PartitionError::EmptyShard(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn zero_halo_depth_is_rejected_at_build_and_parse() {
        let g = ring(8);
        for mode in [PartitionMode::Hash, PartitionMode::Bfs] {
            assert_eq!(
                Partition::build(&g, 2, mode, 0),
                Err(PartitionError::BadHaloDepth),
                "{mode:?}"
            );
        }
        // A hand-edited manifest claiming halo 0 is rejected on parse too,
        // so a gateway can never start on the degraded layout.
        let p = Partition::build(&g, 2, PartitionMode::Bfs, 1).unwrap();
        let mut doc = p.to_json();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "halo_depth" {
                    *v = Json::int(0);
                }
            }
        }
        assert_eq!(Partition::from_json(&doc), Err(PartitionError::BadHaloDepth));
    }
}
