//! Micro-batching scheduler.
//!
//! Connection threads enqueue requests; one scheduler thread owns the
//! [`Engine`] and drains the queue in arrival order. Runs of consecutive
//! read-only requests (up to `max_batch`) are *coalesced*: every node any of
//! them touches is prefetched with a single restricted encoder forward, and
//! the individual answers are then served from cache hits. Mutations
//! (`add_edges`, `add_node`, `shutdown`) are executed alone, in order, so
//! they act as barriers: a query enqueued after a mutation always sees the
//! mutated graph.
//!
//! Coalescing never changes answers: cached rows are bit-identical to cold
//! recomputes (see [`Engine`] docs), so each request's output is independent
//! of which batch it happened to land in.
//!
//! The scheduler also owns the serve-side telemetry: per-op request
//! counters, a request-latency histogram, and a batch-size histogram
//! accumulate in an instance-local [`Registry`] that the `metrics` op
//! snapshots; an optional event [`Observer`] (e.g. a JSON-lines sink)
//! receives one `serve.request` event per answered request.
//!
//! Fault tolerance (all opt-in via [`BatcherOptions`]):
//!
//! - **Load shedding** — with `max_queue > 0`, submissions beyond the bound
//!   are rejected at admission with [`Response::Overloaded`] instead of
//!   growing the queue without limit.
//! - **Deadlines** — a request carrying `deadline_ms` that expires while
//!   queued is answered [`Response::Expired`] and never reaches the engine
//!   (expired mutations are dropped *unapplied* — they are safe to retry).
//! - **Degraded reads** — with `stale_epochs > 0`, a drain that finds the
//!   queue at least half the shed bound serves `embed` from cached rows up
//!   to that many mutation epochs stale instead of running the encoder.
//! - **Mutation WAL + dedup** — accepted mutations are appended to the
//!   [`Wal`] (fsynced) before the ack is sent, and client-sequenced
//!   mutations are deduplicated through a [`DedupTable`] so a retry after a
//!   lost ack is answered from the record instead of re-applied.
//! - **Panic containment** — a panic inside the engine (e.g. an injected
//!   [`gcmae_core::ServeFaultPlan`] fault) is caught, answered as a typed
//!   error to the one affected request, and the scheduler keeps serving.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcmae_obs::{Observer, Registry, Value};

use crate::engine::{Engine, EngineStats};
use crate::protocol::{Request, RequestMeta, Response, ServerStats};
use crate::wal::{DedupTable, DedupVerdict, Wal, WalRecord};

/// Backoff hint attached to [`Response::Overloaded`] sheds.
const SHED_RETRY_AFTER_MS: u64 = 10;

struct Job {
    request: Request,
    meta: RequestMeta,
    deadline: Option<Instant>,
    tx: mpsc::Sender<Response>,
    enqueued: Instant,
}

impl Job {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }
}

struct Queue {
    jobs: VecDeque<Job>,
    stopping: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cv: Condvar,
}

/// Scheduler configuration beyond the engine itself.
pub struct BatcherOptions {
    /// Read-coalescing cap (≥ 1; `1` disables micro-batching).
    pub max_batch: usize,
    /// Optional per-request event sink.
    pub events: Option<Arc<dyn Observer>>,
    /// Admission bound on the queue; `0` = unbounded (no shedding).
    pub max_queue: usize,
    /// Staleness budget (in mutation epochs) for degraded `embed` reads
    /// under overload; `0` disables degradation.
    pub stale_epochs: u64,
    /// Mutation write-ahead log; `None` = mutations are memory-only.
    pub wal: Option<Wal>,
    /// Mutation dedup state, typically recovered by [`crate::wal::replay`].
    pub dedup: DedupTable,
}

impl Default for BatcherOptions {
    fn default() -> Self {
        Self {
            max_batch: 32,
            events: None,
            max_queue: 0,
            stale_epochs: 0,
            wal: None,
            dedup: DedupTable::new(),
        }
    }
}

/// Handle to the scheduler thread. Clone-free: share it via `Arc`.
pub struct Batcher {
    shared: Arc<Shared>,
    metrics: Arc<Registry>,
    max_queue: usize,
    handle: Mutex<Option<JoinHandle<Engine>>>,
}

impl Batcher {
    /// Starts a scheduler around `engine` with no event sink. `max_batch`
    /// caps how many read-only requests one encoder forward may serve; `1`
    /// disables micro-batching (every request runs alone — the bench
    /// baseline).
    pub fn new(engine: Engine, max_batch: usize) -> Self {
        Self::with_options(engine, BatcherOptions { max_batch, ..BatcherOptions::default() })
    }

    /// Starts a scheduler that additionally streams one `serve.request`
    /// event per answered request into `events`.
    pub fn with_events(
        engine: Engine,
        max_batch: usize,
        events: Option<Arc<dyn Observer>>,
    ) -> Self {
        Self::with_options(
            engine,
            BatcherOptions { max_batch, events, ..BatcherOptions::default() },
        )
    }

    /// Starts a fully-configured scheduler.
    pub fn with_options(engine: Engine, opts: BatcherOptions) -> Self {
        assert!(opts.max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
        });
        let metrics = Arc::new(Registry::new());
        let max_queue = opts.max_queue;
        let worker_shared = Arc::clone(&shared);
        let worker_metrics = Arc::clone(&metrics);
        let handle = std::thread::spawn(move || {
            let mut ctx = SchedCtx {
                metrics: worker_metrics,
                events: opts.events,
                batches: 0,
                batched_jobs: 0,
                max_batch: opts.max_batch,
                max_queue: opts.max_queue,
                stale_epochs: opts.stale_epochs,
                wal: opts.wal,
                dedup: opts.dedup,
            };
            scheduler_loop(engine, worker_shared, &mut ctx)
        });
        Self {
            shared,
            metrics,
            max_queue,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// The registry behind the `metrics` op, for in-process inspection.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics)
    }

    /// Submits one request and blocks until its response is ready.
    pub fn submit(&self, request: Request) -> Response {
        self.submit_with(request, RequestMeta::default())
    }

    /// Submits one request with header fields (deadline, client identity)
    /// and blocks until its response is ready. May answer
    /// [`Response::Overloaded`] immediately when the queue is at its bound.
    pub fn submit_with(&self, request: Request, meta: RequestMeta) -> Response {
        let (tx, rx) = mpsc::channel();
        let deadline = meta.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            if q.stopping && matches!(request, Request::Shutdown) {
                // Idempotent shutdown: don't enqueue into a draining queue.
                return Response::ShutdownAck;
            }
            // Admission control: shed everything except shutdown once the
            // queue hits its bound. Counting here (under the queue lock)
            // keeps the check and the rejection atomic.
            if self.max_queue > 0
                && q.jobs.len() >= self.max_queue
                && !matches!(request, Request::Shutdown)
            {
                drop(q);
                self.metrics.counter_add("serve.shed", 1);
                return Response::Overloaded { retry_after_ms: SHED_RETRY_AFTER_MS };
            }
            q.jobs.push_back(Job {
                request,
                meta,
                deadline,
                tx,
                enqueued: Instant::now(),
            });
        }
        self.shared.cv.notify_one();
        rx.recv().unwrap_or_else(|_| Response::Error {
            message: "server is shutting down".to_string(),
        })
    }

    /// True once a shutdown request has been observed.
    pub fn is_stopping(&self) -> bool {
        self.shared.queue.lock().expect("queue poisoned").stopping
    }

    /// Stops the scheduler (processing anything already queued) and returns
    /// the engine. Subsequent calls return `None`.
    pub fn shutdown(&self) -> Option<Engine> {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.stopping = true;
        }
        self.shared.cv.notify_all();
        let handle = self.handle.lock().expect("handle poisoned").take()?;
        handle.join().ok()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scheduler-thread state: telemetry sinks plus the coalescing counters
/// surfaced through the `stats` op, and the fault-tolerance machinery the
/// scheduler owns (WAL, dedup table, degradation thresholds).
struct SchedCtx {
    metrics: Arc<Registry>,
    events: Option<Arc<dyn Observer>>,
    batches: u64,
    batched_jobs: u64,
    max_batch: usize,
    max_queue: usize,
    stale_epochs: u64,
    wal: Option<Wal>,
    dedup: DedupTable,
}

/// Renders a caught panic payload for the error response.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Per-op counter names must be `'static` for the registry; the exhaustive
/// match keeps the set in lockstep with the [`Request`] enum.
fn request_counter(request: &Request) -> &'static str {
    match request {
        Request::Ping => "serve.requests.ping",
        Request::Stats => "serve.requests.stats",
        Request::Metrics => "serve.requests.metrics",
        Request::Embed { .. } => "serve.requests.embed",
        Request::LinkScore { .. } => "serve.requests.link_score",
        Request::TopK { .. } => "serve.requests.top_k",
        Request::TopKOwned { .. } => "serve.requests.top_k_owned",
        Request::SimTopK { .. } => "serve.requests.sim_top_k",
        Request::SimTopKOwned { .. } => "serve.requests.sim_top_k_owned",
        Request::SeqProbe { .. } => "serve.requests.seq_probe",
        Request::AddEdges { .. } => "serve.requests.add_edges",
        Request::AddNode { .. } => "serve.requests.add_node",
        Request::Reindex { .. } => "serve.requests.reindex",
        Request::Shutdown => "serve.requests.shutdown",
    }
}

fn scheduler_loop(mut engine: Engine, shared: Arc<Shared>, ctx: &mut SchedCtx) -> Engine {
    loop {
        let drained: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            while q.jobs.is_empty() && !q.stopping {
                q = shared.cv.wait(q).expect("queue poisoned");
            }
            if q.jobs.is_empty() && q.stopping {
                // Graceful exit: everything queued has been answered. Make
                // the WAL durable one final time before handing the engine
                // back.
                if let Some(wal) = &mut ctx.wal {
                    let _ = wal.sync();
                }
                return engine;
            }
            q.jobs.drain(..).collect()
        };
        // Expiry gate: requests whose deadline lapsed while queued never
        // reach the engine. Expired mutations are dropped *unapplied* — the
        // client knows nothing happened and can retry under a fresh budget.
        let live: Vec<Job> = drained
            .into_iter()
            .filter_map(|job| {
                if job.expired() && !matches!(job.request, Request::Shutdown) {
                    ctx.metrics.counter_add("serve.expired", 1);
                    finish(&job, Response::Expired, ctx);
                    None
                } else {
                    Some(job)
                }
            })
            .collect();
        // Degraded mode: when sheds are configured and this drain shows the
        // queue at least half the bound, serve embeds from bounded-stale
        // cache rows instead of queueing encoder forwards.
        let degraded = ctx.stale_epochs > 0
            && ctx.max_queue > 0
            && live.len() >= (ctx.max_queue / 2).max(1);
        let mut i = 0;
        while i < live.len() {
            if live[i].request.is_read_only() {
                let mut j = i + 1;
                while j < live.len() && live[j].request.is_read_only() && j - i < ctx.max_batch
                {
                    j += 1;
                }
                let group = &live[i..j];
                ctx.batches += 1;
                ctx.batched_jobs += group.len() as u64;
                ctx.metrics.counter_add("serve.batches", 1);
                ctx.metrics
                    .counter_add("serve.batched_jobs", group.len() as u64);
                ctx.metrics
                    .histogram_record("serve.batch.jobs", group.len() as f64);
                run_group(&mut engine, group, degraded, ctx);
                i = j;
            } else {
                run_mutation(&mut engine, &live[i], &shared, ctx);
                i += 1;
            }
        }
    }
}

/// One coalesced group: a single prefetch covers every node the group
/// touches, then each request is answered from cache. Under `degraded`,
/// `embed` requests skip the prefetch and are answered from bounded-stale
/// cache rows instead.
fn run_group(engine: &mut Engine, group: &[Job], degraded: bool, ctx: &mut SchedCtx) {
    let n = engine.graph().num_nodes();
    let mut wanted: Vec<usize> = Vec::new();
    for job in group {
        match &job.request {
            Request::Embed { nodes } => {
                if !degraded {
                    wanted.extend(nodes.iter().copied());
                }
            }
            Request::LinkScore { pairs } => {
                wanted.extend(pairs.iter().flat_map(|&(u, v)| [u, v]));
            }
            Request::TopK { node, .. } | Request::TopKOwned { node, .. } => {
                if *node < n {
                    wanted.push(*node);
                    wanted.extend(engine.graph().neighbors(*node).iter().map(|&v| v as usize));
                }
            }
            // Similarity search warms the whole index itself (`ensure_indexed`);
            // only the anchor row is worth coalescing into the group prefetch,
            // and only when the request searches by node rather than by vector.
            Request::SimTopK { node, .. } => {
                if *node < n {
                    wanted.push(*node);
                }
            }
            Request::SimTopKOwned { node, anchor, .. } => {
                if anchor.is_none() && *node < n {
                    wanted.push(*node);
                }
            }
            _ => {}
        }
    }
    // Out-of-range ids are left out of the prefetch; the owning request
    // reports the error itself below.
    wanted.retain(|&v| v < n);
    wanted.sort_unstable();
    wanted.dedup();
    if !wanted.is_empty() {
        // A panic here (engine fault mid-prefetch) is contained: each
        // request then warms its own rows in `respond`, where a repeat
        // panic is caught per-request.
        if let Err(payload) =
            catch_unwind(AssertUnwindSafe(|| engine.prefetch(&wanted)))
        {
            ctx.metrics.counter_add("serve.panics", 1);
            let _ = panic_message(payload);
        }
    }
    for job in group {
        let response = if degraded {
            respond_degraded(engine, job, ctx)
        } else {
            respond_caught(engine, &job.request, false, ctx)
        };
        finish(job, response, ctx);
    }
}

/// Degraded-mode dispatch: `embed` is served from bounded-stale cache rows;
/// every other read falls through to the normal (fresh) path.
fn respond_degraded(engine: &mut Engine, job: &Job, ctx: &mut SchedCtx) -> Response {
    let Request::Embed { nodes } = &job.request else {
        return respond_caught(engine, &job.request, false, ctx);
    };
    let budget = ctx.stale_epochs;
    let result = catch_unwind(AssertUnwindSafe(|| engine.embed_batch_stale(nodes, budget)));
    match result {
        Ok(Ok((m, stale_rows))) => {
            ctx.metrics.counter_add("serve.stale.requests", 1);
            ctx.metrics.counter_add("serve.stale.rows", stale_rows);
            Response::Embeddings {
                dim: m.cols(),
                rows: (0..m.rows()).map(|r| m.row(r).to_vec()).collect(),
            }
        }
        Ok(Err(e)) => Response::Error { message: e.to_string() },
        Err(payload) => {
            ctx.metrics.counter_add("serve.panics", 1);
            Response::Error {
                message: format!("engine fault contained: {}", panic_message(payload)),
            }
        }
    }
}

/// Dispatches one request with panic containment: an engine panic answers
/// only the offending request and leaves the scheduler (and every other
/// queued request) running. `halo` is the request header's ownership bit,
/// meaningful only for `add_node` (reads pass `false`).
fn respond_caught(engine: &mut Engine, request: &Request, halo: bool, ctx: &mut SchedCtx) -> Response {
    match catch_unwind(AssertUnwindSafe(|| respond(engine, request, halo, ctx))) {
        Ok(response) => response,
        Err(payload) => {
            ctx.metrics.counter_add("serve.panics", 1);
            Response::Error {
                message: format!("engine fault contained: {}", panic_message(payload)),
            }
        }
    }
}

fn run_mutation(engine: &mut Engine, job: &Job, shared: &Arc<Shared>, ctx: &mut SchedCtx) {
    if matches!(job.request, Request::Shutdown) {
        shared.queue.lock().expect("queue poisoned").stopping = true;
        finish(job, respond_caught(engine, &job.request, false, ctx), ctx);
        return;
    }
    let client = job.meta.client.unwrap_or(0);
    let seq = job.meta.seq.unwrap_or(0);
    // Sequenced mutations dedup against the client's last acknowledged seq:
    // a retry after a lost ack must not re-apply.
    match ctx.dedup.check(client, seq) {
        DedupVerdict::Replay(recorded) => {
            ctx.metrics.counter_add("serve.dedup_hits", 1);
            finish(job, recorded, ctx);
            return;
        }
        DedupVerdict::Stale { last } => {
            let response = Response::Error {
                message: format!("stale mutation seq {seq} (last acknowledged {last})"),
            };
            finish(job, response, ctx);
            return;
        }
        DedupVerdict::Fresh => {}
    }
    let halo = job.meta.halo.unwrap_or(false);
    let mut response = respond_caught(engine, &job.request, halo, ctx);
    // Durability before acknowledgment: the record must be on disk before
    // the client can observe success. An append failure downgrades the ack
    // to an error — the client retries, and dedup is only recorded for
    // acknowledged mutations, so the retry resolves correctly either way.
    if response.is_ok() {
        if let Some(wal) = &mut ctx.wal {
            let rec = WalRecord { client, seq, request: job.request.clone(), halo };
            match wal.append(&rec) {
                Ok(bytes) => {
                    ctx.metrics.counter_add("serve.wal.records", 1);
                    ctx.metrics.counter_add("serve.wal.bytes", bytes);
                }
                Err(e) => {
                    ctx.metrics.counter_add("serve.wal.errors", 1);
                    response = Response::Error {
                        message: format!("mutation applied but not durable: {e}"),
                    };
                }
            }
        }
    }
    if response.is_ok() {
        ctx.dedup.record(client, seq, response.clone());
    }
    finish(job, response, ctx);
}

/// Records telemetry for one answered request and sends the response.
fn finish(job: &Job, response: Response, ctx: &mut SchedCtx) {
    let ns = job.enqueued.elapsed().as_nanos() as u64;
    ctx.metrics.counter_add(request_counter(&job.request), 1);
    ctx.metrics.histogram_record("serve.request.ns", ns as f64);
    if !response.is_ok() {
        ctx.metrics.counter_add("serve.errors", 1);
    }
    if let Some(events) = &ctx.events {
        events.event(
            "serve.request",
            &[
                ("op", Value::Str(job.request.op_name().to_string())),
                ("ns", Value::U64(ns)),
                ("ok", Value::Bool(response.is_ok())),
            ],
        );
    }
    let _ = job.tx.send(response);
}

/// Mirrors the engine's ANN / quantized-store counters into the telemetry
/// registry as gauges, refreshed on every `stats`/`metrics` op so the
/// snapshot the caller receives is current.
fn publish_ann_gauges(s: &EngineStats, ctx: &SchedCtx) {
    let m = &ctx.metrics;
    m.gauge_set("serve.ann.inserts", s.ann.inserts as f64);
    m.gauge_set("serve.ann.searches", s.ann.searches as f64);
    m.gauge_set("serve.ann.hops", s.ann.hops as f64);
    m.gauge_set("serve.ann.resident_bytes", s.ann.resident_bytes as f64);
    let bytes_per_node = if s.cache.quantized_rows > 0 {
        s.cache.quantized_bytes as f64 / s.cache.quantized_rows as f64
    } else {
        0.0
    };
    m.gauge_set("serve.ann.bytes_per_node", bytes_per_node);
    m.gauge_set("serve.cache.quantized_rows", s.cache.quantized_rows as f64);
}

/// The single request dispatcher: every [`Request`] variant maps to exactly
/// one [`Response`] here, with engine failures folded into
/// [`Response::Error`]. No wildcard arm — a new op fails to compile until
/// it is handled.
fn respond(engine: &mut Engine, request: &Request, halo: bool, ctx: &SchedCtx) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let s = engine.stats();
            publish_ann_gauges(&s, ctx);
            Response::Stats(ServerStats {
                num_nodes: s.num_nodes,
                owned_nodes: s.owned_nodes,
                num_edges: s.num_edges,
                embed_dim: s.embed_dim,
                cache_hits: s.cache.hits,
                cache_misses: s.cache.misses,
                cache_resident: s.cache.resident,
                cache_epoch: s.cache.epoch,
                invalidated: s.cache.invalidated,
                batches: ctx.batches,
                batched_jobs: ctx.batched_jobs,
                max_batch: ctx.max_batch,
                backend: s.backend,
                shed: ctx.metrics.counter_value("serve.shed"),
                expired: ctx.metrics.counter_value("serve.expired"),
                dedup_hits: ctx.metrics.counter_value("serve.dedup_hits"),
                wal_records: ctx.wal.as_ref().map(Wal::records).unwrap_or(0),
                stale_served: ctx.metrics.counter_value("serve.stale.rows"),
                slow_closes: ctx.metrics.counter_value("serve.slow_closes"),
                objective: engine.model().config().objective().describe(),
                ann_inserts: s.ann.inserts,
                ann_searches: s.ann.searches,
                ann_hops: s.ann.hops,
                ann_resident_bytes: s.ann.resident_bytes as u64,
                ann_indexed: s.ann.indexed,
                quantized_rows: s.cache.quantized_rows,
                quantized_bytes: s.cache.quantized_bytes as u64,
            })
        }
        Request::Metrics => {
            publish_ann_gauges(&engine.stats(), ctx);
            Response::Metrics(ctx.metrics.snapshot())
        }
        Request::Embed { nodes } => match engine.embed_batch(nodes) {
            Ok(m) => Response::Embeddings {
                dim: m.cols(),
                rows: (0..m.rows()).map(|r| m.row(r).to_vec()).collect(),
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::LinkScore { pairs } => match engine.link_scores(pairs) {
            Ok(scores) => Response::Scores(scores),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::TopK { node, k } => match engine.top_k(*node, *k) {
            Ok(ranked) => Response::Neighbors(ranked),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::TopKOwned { node, k } => match engine.top_k_owned(*node, *k) {
            Ok(ranked) => Response::Neighbors(ranked),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::SimTopK { node, k } => match engine.sim_top_k(*node, *k) {
            Ok(ranked) => Response::Neighbors(ranked),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::SimTopKOwned {
            node,
            k,
            anchor,
            exclude,
        } => {
            let result = match anchor {
                Some(row) => engine.sim_top_k_anchor(row, exclude.then_some(*node), *k),
                None => engine.sim_top_k_owned(*node, *k),
            };
            match result {
                Ok(ranked) => Response::Neighbors(ranked),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        Request::SeqProbe { client } => Response::SeqState {
            last: ctx.dedup.last_seq(*client),
        },
        Request::AddEdges { edges } => match engine.add_edges(edges) {
            Ok(stale) => Response::EdgesAdded { invalidated: stale },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::AddNode {
            neighbors,
            features,
        } => match engine.add_node_with(neighbors, features, !halo) {
            Ok(id) => Response::NodeAdded { node: id },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Reindex { order } => match engine.reindex(order) {
            Ok(nodes) => Response::Reindexed { nodes },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Shutdown => Response::ShutdownAck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;
    use rand::Rng;

    fn engine(seed: u64) -> (Engine, Matrix) {
        let mut rng = seeded_rng(seed);
        let n = 20;
        let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 5, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Sage,
            hidden_dim: 8,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 5, &mut rng);
        let reference = model.encode(&graph, &features);
        (Engine::new(model, graph, features).unwrap(), reference)
    }

    fn embedding_rows(resp: &Response) -> &[Vec<f32>] {
        match resp {
            Response::Embeddings { rows, .. } => rows,
            other => panic!("expected embeddings, got {other:?}"),
        }
    }

    fn stats(resp: &Response) -> &ServerStats {
        match resp {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_submits_match_direct_encode_bitwise() {
        let (eng, reference) = engine(1);
        let batcher = Arc::new(Batcher::new(eng, 32));
        let mut handles = Vec::new();
        for t in 0..8_usize {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                let nodes = vec![t, (t + 7) % 20, t % 3];
                let resp = b.submit(Request::Embed {
                    nodes: nodes.clone(),
                });
                (nodes, resp)
            }));
        }
        for h in handles {
            let (nodes, resp) = h.join().unwrap();
            assert!(resp.is_ok());
            for (row, &v) in embedding_rows(&resp).iter().zip(&nodes) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        batcher.shutdown();
    }

    #[test]
    fn mutation_acts_as_barrier_for_later_queries() {
        let (eng, _) = engine(2);
        let batcher = Batcher::new(eng, 32);
        let before = batcher.submit(Request::Stats);
        let edges_before = stats(&before).num_edges;
        let resp = batcher.submit(Request::AddEdges {
            edges: vec![(0, 15)],
        });
        match resp {
            Response::EdgesAdded { invalidated } => assert!(invalidated > 0),
            other => panic!("expected edges_added, got {other:?}"),
        }
        let after = batcher.submit(Request::Stats);
        assert_eq!(stats(&after).num_edges, edges_before + 1);
        // the post-mutation embedding matches a cold recompute
        let emb = batcher.submit(Request::Embed { nodes: vec![0, 15] });
        let rows = embedding_rows(&emb).to_vec();
        let eng = batcher.shutdown().unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        assert_eq!(rows[0].as_slice(), cold.row(0));
        assert_eq!(rows[1].as_slice(), cold.row(15));
    }

    #[test]
    fn stats_counts_every_read_job_exactly_once() {
        let (eng, _) = engine(3);
        let batcher = Arc::new(Batcher::new(eng, 32));
        let mut handles = Vec::new();
        for t in 0..6_usize {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                b.submit(Request::Embed { nodes: vec![t] });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let resp = batcher.submit(Request::Stats);
        // 6 embeds + this stats call, each in exactly one batch
        assert_eq!(stats(&resp).batched_jobs, 7);
        let batches = stats(&resp).batches;
        assert!((1..=7).contains(&batches), "batches {batches}");
        batcher.shutdown();
    }

    #[test]
    fn metrics_op_reports_request_counters_and_latency() {
        let (eng, _) = engine(7);
        let batcher = Batcher::new(eng, 32);
        for t in 0..5_usize {
            assert!(batcher.submit(Request::Embed { nodes: vec![t] }).is_ok());
        }
        batcher.submit(Request::Ping);
        let bad = batcher.submit(Request::Embed {
            nodes: vec![10_000],
        });
        assert!(!bad.is_ok());
        let snap = match batcher.submit(Request::Metrics) {
            Response::Metrics(s) => s,
            other => panic!("expected metrics, got {other:?}"),
        };
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("serve.requests.embed"), 6);
        assert_eq!(counter("serve.requests.ping"), 1);
        assert_eq!(counter("serve.errors"), 1);
        // metrics itself is counted only on the NEXT snapshot; latency covers
        // the 7 requests answered before this one.
        let lat = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.request.ns")
            .expect("latency histogram");
        assert_eq!(lat.count, 7);
        assert!(lat.sum > 0.0);
        // in-process registry handle sees the same counters
        assert_eq!(batcher.metrics().counter_value("serve.requests.embed"), 6);
        batcher.shutdown();
    }

    #[test]
    fn event_sink_sees_one_event_per_request() {
        struct CountEvents(std::sync::atomic::AtomicU64);
        impl Observer for CountEvents {
            fn event(&self, name: &'static str, _fields: &[(&'static str, Value)]) {
                assert_eq!(name, "serve.request");
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let (eng, _) = engine(8);
        let sink = Arc::new(CountEvents(std::sync::atomic::AtomicU64::new(0)));
        let batcher = Batcher::with_events(eng, 32, Some(sink.clone() as Arc<dyn Observer>));
        batcher.submit(Request::Ping);
        batcher.submit(Request::Embed { nodes: vec![1, 2] });
        batcher.submit(Request::Stats);
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 3);
        batcher.shutdown();
    }

    #[test]
    fn sim_top_k_answers_and_surfaces_ann_stats() {
        let (eng, reference) = engine(9);
        let batcher = Batcher::new(eng, 32);
        let resp = batcher.submit(Request::SimTopK { node: 3, k: 4 });
        let ranked = match resp {
            Response::Neighbors(ranked) => ranked,
            other => panic!("expected neighbors, got {other:?}"),
        };
        assert_eq!(ranked.len(), 4);
        // Scores are exact f32 dot products against the anchor row.
        let anchor = reference.row(3);
        for &(v, score) in &ranked {
            assert_ne!(v, 3, "anchor excluded");
            let exact: f32 = anchor.iter().zip(reference.row(v)).map(|(a, b)| a * b).sum();
            assert_eq!(score, exact, "node {v}");
        }
        // The owned variant equals the plain one on an unsharded engine, and
        // an anchor-bearing request by the same row returns the same set
        // when the anchor id is excluded.
        let owned = batcher.submit(Request::SimTopKOwned {
            node: 3,
            k: 4,
            anchor: None,
            exclude: true,
        });
        assert_eq!(owned, Response::Neighbors(ranked.clone()));
        let by_vector = batcher.submit(Request::SimTopKOwned {
            node: 3,
            k: 4,
            anchor: Some(anchor.to_vec()),
            exclude: true,
        });
        assert_eq!(by_vector, Response::Neighbors(ranked));
        let resp = batcher.submit(Request::Stats);
        let s = stats(&resp);
        assert!(s.ann_searches >= 3, "searches {}", s.ann_searches);
        assert_eq!(s.ann_indexed, 20);
        assert_eq!(s.quantized_rows, 20);
        assert!(s.quantized_bytes > 0);
        assert!(s.ann_resident_bytes > 0);
        // The stats op also refreshes the telemetry gauges.
        let snap = batcher.metrics().snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(-1.0)
        };
        assert!(gauge("serve.ann.searches") >= 3.0);
        assert!(gauge("serve.ann.bytes_per_node") > 0.0);
        assert_eq!(gauge("serve.cache.quantized_rows"), 20.0);
        batcher.shutdown();
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let (eng, reference) = engine(4);
        let batcher = Batcher::new(eng, 1);
        let resp = batcher.submit(Request::Embed { nodes: vec![2, 9] });
        let rows = embedding_rows(&resp);
        assert_eq!(rows[0].as_slice(), reference.row(2));
        assert_eq!(rows[1].as_slice(), reference.row(9));
        let resp = batcher.submit(Request::Stats);
        assert_eq!(stats(&resp).max_batch, 1);
        batcher.shutdown();
    }

    #[test]
    fn bad_request_gets_error_response_without_killing_scheduler() {
        let (eng, _) = engine(5);
        let batcher = Batcher::new(eng, 32);
        let bad = batcher.submit(Request::Embed {
            nodes: vec![10_000],
        });
        match bad {
            Response::Error { message } => assert!(message.contains("out of range")),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(batcher.submit(Request::Ping), Response::Pong);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_scheduler() {
        let (eng, _) = engine(6);
        let batcher = Batcher::new(eng, 32);
        assert_eq!(batcher.submit(Request::Shutdown), Response::ShutdownAck);
        assert!(batcher.is_stopping());
        assert!(batcher.shutdown().is_some());
        assert!(batcher.shutdown().is_none(), "second shutdown returns None");
    }

    /// Event-sink hook that, when armed, blocks the scheduler thread inside
    /// `finish` — letting tests pile up a queue deterministically.
    struct Gate {
        armed: std::sync::atomic::AtomicBool,
        entered: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                armed: std::sync::atomic::AtomicBool::new(false),
                entered: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn arm(&self) {
            self.armed.store(true, std::sync::atomic::Ordering::SeqCst);
        }

        /// Blocks until the scheduler thread is parked inside the gate.
        fn wait_entered(&self) {
            let mut e = self.entered.lock().unwrap();
            while !*e {
                e = self.cv.wait(e).unwrap();
            }
            *e = false;
        }

        fn release(&self) {
            self.armed.store(false, std::sync::atomic::Ordering::SeqCst);
            let _guard = self.entered.lock().unwrap();
            self.cv.notify_all();
        }
    }

    impl Observer for Gate {
        fn event(&self, _name: &'static str, _fields: &[(&'static str, Value)]) {
            if self.armed.load(std::sync::atomic::Ordering::SeqCst) {
                let mut entered = self.entered.lock().unwrap();
                *entered = true;
                self.cv.notify_all();
                while self.armed.load(std::sync::atomic::Ordering::SeqCst) {
                    entered = self.cv.wait(entered).unwrap();
                }
            }
        }
    }

    /// Gives a just-spawned submitter thread time to actually enqueue.
    fn let_enqueue() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    #[test]
    fn full_queue_sheds_with_a_typed_overload_response() {
        let (eng, _) = engine(10);
        let gate = Gate::new();
        let batcher = Arc::new(Batcher::with_options(
            eng,
            BatcherOptions {
                max_queue: 1,
                events: Some(gate.clone() as Arc<dyn Observer>),
                ..BatcherOptions::default()
            },
        ));
        gate.arm();
        let b = Arc::clone(&batcher);
        let blocked = std::thread::spawn(move || b.submit(Request::Ping));
        gate.wait_entered(); // scheduler is parked mid-finish
        let b = Arc::clone(&batcher);
        let queued = std::thread::spawn(move || b.submit(Request::Embed { nodes: vec![0] }));
        let_enqueue(); // queue now holds exactly max_queue jobs
        match batcher.submit(Request::Ping) {
            Response::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected overloaded, got {other:?}"),
        }
        // Shutdown is never shed, even at the bound.
        gate.release();
        assert!(blocked.join().unwrap().is_ok());
        assert!(queued.join().unwrap().is_ok());
        let resp = batcher.submit(Request::Stats);
        assert_eq!(stats(&resp).shed, 1);
        assert_eq!(batcher.metrics().counter_value("serve.shed"), 1);
        batcher.shutdown();
    }

    #[test]
    fn expired_requests_never_reach_the_engine() {
        let (eng, _) = engine(11);
        let gate = Gate::new();
        let batcher = Arc::new(Batcher::with_options(
            eng,
            BatcherOptions {
                events: Some(gate.clone() as Arc<dyn Observer>),
                ..BatcherOptions::default()
            },
        ));
        let edges_before = {
            let resp = batcher.submit(Request::Stats);
            stats(&resp).num_edges
        };
        gate.arm();
        let b = Arc::clone(&batcher);
        let blocked = std::thread::spawn(move || b.submit(Request::Ping));
        gate.wait_entered();
        // Both a read and a mutation go stale while the scheduler is parked.
        let meta = RequestMeta { deadline_ms: Some(1), ..RequestMeta::default() };
        let b = Arc::clone(&batcher);
        let read = std::thread::spawn(move || {
            b.submit_with(Request::Embed { nodes: vec![0] }, meta)
        });
        let b = Arc::clone(&batcher);
        let mutation = std::thread::spawn(move || {
            b.submit_with(Request::AddEdges { edges: vec![(0, 15)] }, meta)
        });
        let_enqueue(); // both queued; their 1ms budgets lapse
        gate.release();
        assert_eq!(read.join().unwrap(), Response::Expired);
        assert_eq!(mutation.join().unwrap(), Response::Expired);
        assert!(blocked.join().unwrap().is_ok());
        let resp = batcher.submit(Request::Stats);
        assert_eq!(stats(&resp).expired, 2);
        assert_eq!(
            stats(&resp).num_edges,
            edges_before,
            "expired mutation must not be applied"
        );
        batcher.shutdown();
    }

    #[test]
    fn replayed_mutations_are_deduplicated_not_reapplied() {
        let (eng, _) = engine(12);
        let batcher = Batcher::new(eng, 32);
        let meta = |seq| RequestMeta { client: Some(7), seq: Some(seq), ..RequestMeta::default() };
        let first =
            batcher.submit_with(Request::AddEdges { edges: vec![(0, 15)] }, meta(1));
        assert!(first.is_ok());
        let edges_after = {
            let resp = batcher.submit(Request::Stats);
            stats(&resp).num_edges
        };
        // Same (client, seq) again — e.g. a retry after a lost ack: the
        // recorded response comes back and the graph does not change.
        let replay =
            batcher.submit_with(Request::AddEdges { edges: vec![(0, 15)] }, meta(1));
        assert_eq!(replay, first);
        let resp = batcher.submit(Request::Stats);
        assert_eq!(stats(&resp).num_edges, edges_after);
        assert_eq!(stats(&resp).dedup_hits, 1);
        // Advancing the sequence applies normally...
        assert!(batcher
            .submit_with(Request::AddEdges { edges: vec![(1, 16)] }, meta(2))
            .is_ok());
        // ...and a sequence older than the last ack is rejected.
        match batcher.submit_with(Request::AddEdges { edges: vec![(2, 17)] }, meta(1)) {
            Response::Error { message } => assert!(message.contains("stale mutation seq")),
            other => panic!("expected stale-seq error, got {other:?}"),
        }
        // Unsequenced mutations never dedup.
        let a = batcher.submit(Request::AddEdges { edges: vec![(3, 18)] });
        let b = batcher.submit(Request::AddEdges { edges: vec![(3, 18)] });
        assert!(a.is_ok() && b.is_ok());
        batcher.shutdown();
    }

    #[test]
    fn engine_panic_is_contained_to_the_offending_request() {
        let (mut eng, _) = engine(13);
        eng.set_fault_plan(gcmae_core::ServeFaultPlan {
            fail_read_every: None,
            panic_read_at: Some(1),
        });
        let batcher = Batcher::new(eng, 32);
        match batcher.submit(Request::Embed { nodes: vec![0] }) {
            Response::Error { message } => {
                assert!(message.contains("engine fault contained"), "{message}")
            }
            other => panic!("expected contained fault, got {other:?}"),
        }
        // The scheduler survived and keeps answering correctly.
        assert!(batcher.submit(Request::Embed { nodes: vec![0] }).is_ok());
        assert_eq!(batcher.submit(Request::Ping), Response::Pong);
        assert!(batcher.metrics().counter_value("serve.panics") >= 1);
        batcher.shutdown();
    }

    #[test]
    fn overload_degrades_embeds_to_bounded_stale_cache_rows() {
        let (eng, reference) = engine(14);
        let gate = Gate::new();
        let batcher = Arc::new(Batcher::with_options(
            eng,
            BatcherOptions {
                max_queue: 16,
                stale_epochs: 5,
                events: Some(gate.clone() as Arc<dyn Observer>),
                ..BatcherOptions::default()
            },
        ));
        let all: Vec<usize> = (0..20).collect();
        // Warm every row, then invalidate a neighborhood.
        assert!(batcher.submit(Request::Embed { nodes: all.clone() }).is_ok());
        let invalidated = match batcher.submit(Request::AddEdges { edges: vec![(0, 15)] }) {
            Response::EdgesAdded { invalidated } => invalidated,
            other => panic!("expected edges_added, got {other:?}"),
        };
        assert!(invalidated > 0);
        // Pile up a drain of 8 embeds (>= max_queue/2) while parked — enough
        // to trip degradation, few enough that none is shed.
        gate.arm();
        let b = Arc::clone(&batcher);
        let blocked = std::thread::spawn(move || b.submit(Request::Ping));
        gate.wait_entered();
        let mut readers = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&batcher);
            let nodes = all.clone();
            readers.push(std::thread::spawn(move || {
                b.submit(Request::Embed { nodes })
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        gate.release();
        assert!(blocked.join().unwrap().is_ok());
        for r in readers {
            let resp = r.join().unwrap();
            // Degraded answers are the pre-mutation rows (within budget),
            // not recomputes — bit-identical to the original reference.
            for (row, &v) in embedding_rows(&resp).iter().zip(&all) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        let resp = batcher.submit(Request::Stats);
        assert_eq!(
            stats(&resp).stale_served,
            8 * invalidated as u64,
            "each degraded request served the invalidated rows stale"
        );
        assert!(batcher.metrics().counter_value("serve.stale.requests") >= 1);
        batcher.shutdown();
    }

    #[test]
    fn wal_makes_acknowledged_mutations_recoverable() {
        let mut path = std::env::temp_dir();
        path.push(format!("gcmae_batcher_wal_{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (eng, _) = engine(15);
        let (wal, recovered) = crate::wal::Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        let batcher = Batcher::with_options(
            eng,
            BatcherOptions { wal: Some(wal), ..BatcherOptions::default() },
        );
        let meta = |c, s| RequestMeta { client: Some(c), seq: Some(s), ..RequestMeta::default() };
        assert!(batcher
            .submit_with(Request::AddEdges { edges: vec![(0, 15)] }, meta(1, 1))
            .is_ok());
        assert!(batcher
            .submit_with(
                Request::AddNode { neighbors: vec![0, 3], features: vec![0.5; 5] },
                meta(1, 2),
            )
            .is_ok());
        // A rejected mutation must NOT hit the log.
        assert!(!batcher
            .submit_with(Request::AddEdges { edges: vec![(0, 10_000)] }, meta(1, 3))
            .is_ok());
        let resp = batcher.submit(Request::Stats);
        assert_eq!(stats(&resp).wal_records, 2);
        let survivor = batcher.shutdown().unwrap();
        // Recovery path: fresh engine from the same seed + WAL replay.
        let (mut recovered_engine, _) = engine(15);
        let (_, records) = crate::wal::Wal::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        let dedup = crate::wal::replay(&mut recovered_engine, &records).unwrap();
        assert_eq!(dedup.len(), 1);
        assert_eq!(
            recovered_engine.graph().num_edges(),
            survivor.graph().num_edges()
        );
        assert_eq!(
            recovered_engine.graph().num_nodes(),
            survivor.graph().num_nodes()
        );
        let a = survivor.model().encode(survivor.graph(), survivor.features());
        let b = recovered_engine
            .model()
            .encode(recovered_engine.graph(), recovered_engine.features());
        assert_eq!(a.as_slice(), b.as_slice(), "bit-parity after replay");
        let _ = std::fs::remove_file(&path);
    }
}
