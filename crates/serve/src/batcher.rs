//! Micro-batching scheduler.
//!
//! Connection threads enqueue requests; one scheduler thread owns the
//! [`Engine`] and drains the queue in arrival order. Runs of consecutive
//! read-only requests (up to `max_batch`) are *coalesced*: every node any of
//! them touches is prefetched with a single restricted encoder forward, and
//! the individual answers are then served from cache hits. Mutations
//! (`add_edges`, `add_node`, `shutdown`) are executed alone, in order, so
//! they act as barriers: a query enqueued after a mutation always sees the
//! mutated graph.
//!
//! Coalescing never changes answers: cached rows are bit-identical to cold
//! recomputes (see [`Engine`] docs), so each request's output is independent
//! of which batch it happened to land in.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::engine::{Engine, EngineError};
use crate::json::{f32_to_json, Json};
use crate::protocol::{err_response, ok_response, Request};

struct Job {
    request: Request,
    tx: mpsc::Sender<Json>,
}

struct Queue {
    jobs: VecDeque<Job>,
    stopping: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cv: Condvar,
}

/// Handle to the scheduler thread. Clone-free: share it via `Arc`.
pub struct Batcher {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<Engine>>>,
}

impl Batcher {
    /// Starts a scheduler around `engine`. `max_batch` caps how many
    /// read-only requests one encoder forward may serve; `1` disables
    /// micro-batching (every request runs alone — the bench baseline).
    pub fn new(engine: Engine, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), stopping: false }),
            cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let handle =
            std::thread::spawn(move || scheduler_loop(engine, worker_shared, max_batch));
        Self { shared, handle: Mutex::new(Some(handle)) }
    }

    /// Submits one request and blocks until its response is ready.
    pub fn submit(&self, request: Request) -> Json {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            if q.stopping && matches!(request, Request::Shutdown) {
                // Idempotent shutdown: don't enqueue into a draining queue.
                return ok_response(vec![]);
            }
            q.jobs.push_back(Job { request, tx });
        }
        self.shared.cv.notify_one();
        rx.recv().unwrap_or_else(|_| err_response("server is shutting down"))
    }

    /// True once a shutdown request has been observed.
    pub fn is_stopping(&self) -> bool {
        self.shared.queue.lock().expect("queue poisoned").stopping
    }

    /// Stops the scheduler (processing anything already queued) and returns
    /// the engine. Subsequent calls return `None`.
    pub fn shutdown(&self) -> Option<Engine> {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.stopping = true;
        }
        self.shared.cv.notify_all();
        let handle = self.handle.lock().expect("handle poisoned").take()?;
        handle.join().ok()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn scheduler_loop(mut engine: Engine, shared: Arc<Shared>, max_batch: usize) -> Engine {
    // Scheduler counters, reported through the `stats` request.
    let mut batches: u64 = 0;
    let mut batched_jobs: u64 = 0;
    loop {
        let drained: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            while q.jobs.is_empty() && !q.stopping {
                q = shared.cv.wait(q).expect("queue poisoned");
            }
            if q.jobs.is_empty() && q.stopping {
                return engine;
            }
            q.jobs.drain(..).collect()
        };
        let mut i = 0;
        while i < drained.len() {
            if drained[i].request.is_read_only() {
                let mut j = i + 1;
                while j < drained.len()
                    && drained[j].request.is_read_only()
                    && j - i < max_batch
                {
                    j += 1;
                }
                let group = &drained[i..j];
                batches += 1;
                batched_jobs += group.len() as u64;
                run_group(&mut engine, group, batches, batched_jobs, max_batch);
                i = j;
            } else {
                run_mutation(&mut engine, &drained[i], &shared);
                i += 1;
            }
        }
    }
}

/// One coalesced group: a single prefetch covers every node the group
/// touches, then each request is answered from cache.
fn run_group(
    engine: &mut Engine,
    group: &[Job],
    batches: u64,
    batched_jobs: u64,
    max_batch: usize,
) {
    let n = engine.graph().num_nodes();
    let mut wanted: Vec<usize> = Vec::new();
    for job in group {
        match &job.request {
            Request::Embed { nodes } => wanted.extend(nodes.iter().copied()),
            Request::LinkScore { pairs } => {
                wanted.extend(pairs.iter().flat_map(|&(u, v)| [u, v]));
            }
            Request::TopK { node, .. } => {
                if *node < n {
                    wanted.push(*node);
                    wanted.extend(engine.graph().neighbors(*node).iter().map(|&v| v as usize));
                }
            }
            _ => {}
        }
    }
    // Out-of-range ids are left out of the prefetch; the owning request
    // reports the error itself below.
    wanted.retain(|&v| v < n);
    wanted.sort_unstable();
    wanted.dedup();
    if !wanted.is_empty() {
        engine.prefetch(&wanted).expect("ids validated above");
    }
    for job in group {
        let response = answer(engine, &job.request, batches, batched_jobs, max_batch);
        let _ = job.tx.send(response);
    }
}

fn run_mutation(engine: &mut Engine, job: &Job, shared: &Arc<Shared>) {
    let response = match &job.request {
        Request::AddEdges { edges } => result_json(
            engine.add_edges(edges).map(|stale| vec![("invalidated".to_string(), Json::int(stale))]),
        ),
        Request::AddNode { neighbors, features } => result_json(
            engine
                .add_node(neighbors, features)
                .map(|id| vec![("node".to_string(), Json::int(id))]),
        ),
        Request::Shutdown => {
            shared.queue.lock().expect("queue poisoned").stopping = true;
            ok_response(vec![])
        }
        _ => err_response("not a mutation"),
    };
    let _ = job.tx.send(response);
}

fn answer(
    engine: &mut Engine,
    request: &Request,
    batches: u64,
    batched_jobs: u64,
    max_batch: usize,
) -> Json {
    match request {
        Request::Ping => ok_response(vec![("pong".to_string(), Json::Bool(true))]),
        Request::Stats => {
            let s = engine.stats();
            ok_response(vec![
                ("num_nodes".to_string(), Json::int(s.num_nodes)),
                ("num_edges".to_string(), Json::int(s.num_edges)),
                ("embed_dim".to_string(), Json::int(s.embed_dim)),
                ("cache_hits".to_string(), Json::num(s.cache.hits as f64)),
                ("cache_misses".to_string(), Json::num(s.cache.misses as f64)),
                ("cache_resident".to_string(), Json::int(s.cache.resident)),
                ("cache_epoch".to_string(), Json::num(s.cache.epoch as f64)),
                ("invalidated".to_string(), Json::num(s.cache.invalidated as f64)),
                ("batches".to_string(), Json::num(batches as f64)),
                ("batched_jobs".to_string(), Json::num(batched_jobs as f64)),
                ("max_batch".to_string(), Json::int(max_batch)),
            ])
        }
        Request::Embed { nodes } => result_json(engine.embed_batch(nodes).map(|m| {
            let rows: Vec<Json> = (0..m.rows())
                .map(|r| Json::Arr(m.row(r).iter().map(|&v| f32_to_json(v)).collect()))
                .collect();
            vec![
                ("dim".to_string(), Json::int(m.cols())),
                ("embeddings".to_string(), Json::Arr(rows)),
            ]
        })),
        Request::LinkScore { pairs } => result_json(engine.link_scores(pairs).map(|scores| {
            vec![(
                "scores".to_string(),
                Json::Arr(scores.iter().map(|&s| f32_to_json(s)).collect()),
            )]
        })),
        Request::TopK { node, k } => result_json(engine.top_k(*node, *k).map(|ranked| {
            let items = ranked
                .into_iter()
                .map(|(v, s)| Json::Arr(vec![Json::int(v), f32_to_json(s)]))
                .collect();
            vec![("neighbors".to_string(), Json::Arr(items))]
        })),
        _ => err_response("not a read-only request"),
    }
}

fn result_json(r: Result<Vec<(String, Json)>, EngineError>) -> Json {
    match r {
        Ok(fields) => ok_response(fields),
        Err(e) => err_response(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;
    use rand::Rng;

    fn engine(seed: u64) -> (Engine, Matrix) {
        let mut rng = seeded_rng(seed);
        let n = 20;
        let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 5, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Sage,
            hidden_dim: 8,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 5, &mut rng);
        let reference = model.encode(&graph, &features);
        (Engine::new(model, graph, features).unwrap(), reference)
    }

    fn embedding_rows(resp: &Json) -> Vec<Vec<f32>> {
        resp.get("embeddings")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|row| {
                row.as_arr().unwrap().iter().map(|v| v.as_f64().unwrap() as f32).collect()
            })
            .collect()
    }

    #[test]
    fn concurrent_submits_match_direct_encode_bitwise() {
        let (eng, reference) = engine(1);
        let batcher = Arc::new(Batcher::new(eng, 32));
        let mut handles = Vec::new();
        for t in 0..8_usize {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                let nodes = vec![t, (t + 7) % 20, t % 3];
                let resp = b.submit(Request::Embed { nodes: nodes.clone() });
                (nodes, resp)
            }));
        }
        for h in handles {
            let (nodes, resp) = h.join().unwrap();
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
            let rows = embedding_rows(&resp);
            for (row, &v) in rows.iter().zip(&nodes) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        batcher.shutdown();
    }

    #[test]
    fn mutation_acts_as_barrier_for_later_queries() {
        let (eng, _) = engine(2);
        let batcher = Batcher::new(eng, 32);
        let before = batcher.submit(Request::Stats);
        let edges_before = before.get("num_edges").unwrap().as_usize().unwrap();
        let resp = batcher.submit(Request::AddEdges { edges: vec![(0, 15)] });
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert!(resp.get("invalidated").unwrap().as_usize().unwrap() > 0);
        let after = batcher.submit(Request::Stats);
        assert_eq!(after.get("num_edges").unwrap().as_usize().unwrap(), edges_before + 1);
        // the post-mutation embedding matches a cold recompute
        let emb = batcher.submit(Request::Embed { nodes: vec![0, 15] });
        let rows = embedding_rows(&emb);
        let eng = batcher.shutdown().unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        assert_eq!(rows[0].as_slice(), cold.row(0));
        assert_eq!(rows[1].as_slice(), cold.row(15));
    }

    #[test]
    fn stats_counts_every_read_job_exactly_once() {
        let (eng, _) = engine(3);
        let batcher = Arc::new(Batcher::new(eng, 32));
        let mut handles = Vec::new();
        for t in 0..6_usize {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                b.submit(Request::Embed { nodes: vec![t] });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = batcher.submit(Request::Stats);
        // 6 embeds + this stats call, each in exactly one batch
        assert_eq!(stats.get("batched_jobs").unwrap().as_f64().unwrap(), 7.0);
        let batches = stats.get("batches").unwrap().as_f64().unwrap();
        assert!((1.0..=7.0).contains(&batches), "batches {batches}");
        batcher.shutdown();
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let (eng, reference) = engine(4);
        let batcher = Batcher::new(eng, 1);
        let resp = batcher.submit(Request::Embed { nodes: vec![2, 9] });
        let rows = embedding_rows(&resp);
        assert_eq!(rows[0].as_slice(), reference.row(2));
        assert_eq!(rows[1].as_slice(), reference.row(9));
        let stats = batcher.submit(Request::Stats);
        assert_eq!(stats.get("max_batch").unwrap().as_usize(), Some(1));
        batcher.shutdown();
    }

    #[test]
    fn bad_request_gets_error_response_without_killing_scheduler() {
        let (eng, _) = engine(5);
        let batcher = Batcher::new(eng, 32);
        let bad = batcher.submit(Request::Embed { nodes: vec![10_000] });
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(bad.get("error").unwrap().as_str().unwrap().contains("out of range"));
        let good = batcher.submit(Request::Ping);
        assert_eq!(good.get("ok"), Some(&Json::Bool(true)));
        batcher.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_scheduler() {
        let (eng, _) = engine(6);
        let batcher = Batcher::new(eng, 32);
        let resp = batcher.submit(Request::Shutdown);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert!(batcher.is_stopping());
        assert!(batcher.shutdown().is_some());
        assert!(batcher.shutdown().is_none(), "second shutdown returns None");
    }
}
