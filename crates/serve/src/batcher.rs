//! Micro-batching scheduler.
//!
//! Connection threads enqueue requests; one scheduler thread owns the
//! [`Engine`] and drains the queue in arrival order. Runs of consecutive
//! read-only requests (up to `max_batch`) are *coalesced*: every node any of
//! them touches is prefetched with a single restricted encoder forward, and
//! the individual answers are then served from cache hits. Mutations
//! (`add_edges`, `add_node`, `shutdown`) are executed alone, in order, so
//! they act as barriers: a query enqueued after a mutation always sees the
//! mutated graph.
//!
//! Coalescing never changes answers: cached rows are bit-identical to cold
//! recomputes (see [`Engine`] docs), so each request's output is independent
//! of which batch it happened to land in.
//!
//! The scheduler also owns the serve-side telemetry: per-op request
//! counters, a request-latency histogram, and a batch-size histogram
//! accumulate in an instance-local [`Registry`] that the `metrics` op
//! snapshots; an optional event [`Observer`] (e.g. a JSON-lines sink)
//! receives one `serve.request` event per answered request.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use gcmae_obs::{Observer, Registry, Value};

use crate::engine::Engine;
use crate::protocol::{Request, Response, ServerStats};

struct Job {
    request: Request,
    tx: mpsc::Sender<Response>,
    enqueued: Instant,
}

struct Queue {
    jobs: VecDeque<Job>,
    stopping: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    cv: Condvar,
}

/// Handle to the scheduler thread. Clone-free: share it via `Arc`.
pub struct Batcher {
    shared: Arc<Shared>,
    metrics: Arc<Registry>,
    handle: Mutex<Option<JoinHandle<Engine>>>,
}

impl Batcher {
    /// Starts a scheduler around `engine` with no event sink. `max_batch`
    /// caps how many read-only requests one encoder forward may serve; `1`
    /// disables micro-batching (every request runs alone — the bench
    /// baseline).
    pub fn new(engine: Engine, max_batch: usize) -> Self {
        Self::with_events(engine, max_batch, None)
    }

    /// Starts a scheduler that additionally streams one `serve.request`
    /// event per answered request into `events`.
    pub fn with_events(
        engine: Engine,
        max_batch: usize,
        events: Option<Arc<dyn Observer>>,
    ) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                stopping: false,
            }),
            cv: Condvar::new(),
        });
        let metrics = Arc::new(Registry::new());
        let worker_shared = Arc::clone(&shared);
        let worker_metrics = Arc::clone(&metrics);
        let handle = std::thread::spawn(move || {
            let mut ctx = SchedCtx {
                metrics: worker_metrics,
                events,
                batches: 0,
                batched_jobs: 0,
                max_batch,
            };
            scheduler_loop(engine, worker_shared, &mut ctx)
        });
        Self {
            shared,
            metrics,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// The registry behind the `metrics` op, for in-process inspection.
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.metrics)
    }

    /// Submits one request and blocks until its response is ready.
    pub fn submit(&self, request: Request) -> Response {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            if q.stopping && matches!(request, Request::Shutdown) {
                // Idempotent shutdown: don't enqueue into a draining queue.
                return Response::ShutdownAck;
            }
            q.jobs.push_back(Job {
                request,
                tx,
                enqueued: Instant::now(),
            });
        }
        self.shared.cv.notify_one();
        rx.recv().unwrap_or_else(|_| Response::Error {
            message: "server is shutting down".to_string(),
        })
    }

    /// True once a shutdown request has been observed.
    pub fn is_stopping(&self) -> bool {
        self.shared.queue.lock().expect("queue poisoned").stopping
    }

    /// Stops the scheduler (processing anything already queued) and returns
    /// the engine. Subsequent calls return `None`.
    pub fn shutdown(&self) -> Option<Engine> {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.stopping = true;
        }
        self.shared.cv.notify_all();
        let handle = self.handle.lock().expect("handle poisoned").take()?;
        handle.join().ok()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scheduler-thread state: telemetry sinks plus the coalescing counters
/// surfaced through the `stats` op.
struct SchedCtx {
    metrics: Arc<Registry>,
    events: Option<Arc<dyn Observer>>,
    batches: u64,
    batched_jobs: u64,
    max_batch: usize,
}

/// Per-op counter names must be `'static` for the registry; the exhaustive
/// match keeps the set in lockstep with the [`Request`] enum.
fn request_counter(request: &Request) -> &'static str {
    match request {
        Request::Ping => "serve.requests.ping",
        Request::Stats => "serve.requests.stats",
        Request::Metrics => "serve.requests.metrics",
        Request::Embed { .. } => "serve.requests.embed",
        Request::LinkScore { .. } => "serve.requests.link_score",
        Request::TopK { .. } => "serve.requests.top_k",
        Request::AddEdges { .. } => "serve.requests.add_edges",
        Request::AddNode { .. } => "serve.requests.add_node",
        Request::Shutdown => "serve.requests.shutdown",
    }
}

fn scheduler_loop(mut engine: Engine, shared: Arc<Shared>, ctx: &mut SchedCtx) -> Engine {
    loop {
        let drained: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            while q.jobs.is_empty() && !q.stopping {
                q = shared.cv.wait(q).expect("queue poisoned");
            }
            if q.jobs.is_empty() && q.stopping {
                return engine;
            }
            q.jobs.drain(..).collect()
        };
        let mut i = 0;
        while i < drained.len() {
            if drained[i].request.is_read_only() {
                let mut j = i + 1;
                while j < drained.len()
                    && drained[j].request.is_read_only()
                    && j - i < ctx.max_batch
                {
                    j += 1;
                }
                let group = &drained[i..j];
                ctx.batches += 1;
                ctx.batched_jobs += group.len() as u64;
                ctx.metrics.counter_add("serve.batches", 1);
                ctx.metrics
                    .counter_add("serve.batched_jobs", group.len() as u64);
                ctx.metrics
                    .histogram_record("serve.batch.jobs", group.len() as f64);
                run_group(&mut engine, group, ctx);
                i = j;
            } else {
                run_mutation(&mut engine, &drained[i], &shared, ctx);
                i += 1;
            }
        }
    }
}

/// One coalesced group: a single prefetch covers every node the group
/// touches, then each request is answered from cache.
fn run_group(engine: &mut Engine, group: &[Job], ctx: &mut SchedCtx) {
    let n = engine.graph().num_nodes();
    let mut wanted: Vec<usize> = Vec::new();
    for job in group {
        match &job.request {
            Request::Embed { nodes } => wanted.extend(nodes.iter().copied()),
            Request::LinkScore { pairs } => {
                wanted.extend(pairs.iter().flat_map(|&(u, v)| [u, v]));
            }
            Request::TopK { node, .. } => {
                if *node < n {
                    wanted.push(*node);
                    wanted.extend(engine.graph().neighbors(*node).iter().map(|&v| v as usize));
                }
            }
            _ => {}
        }
    }
    // Out-of-range ids are left out of the prefetch; the owning request
    // reports the error itself below.
    wanted.retain(|&v| v < n);
    wanted.sort_unstable();
    wanted.dedup();
    if !wanted.is_empty() {
        engine.prefetch(&wanted).expect("ids validated above");
    }
    for job in group {
        let response = respond(engine, &job.request, ctx);
        finish(job, response, ctx);
    }
}

fn run_mutation(engine: &mut Engine, job: &Job, shared: &Arc<Shared>, ctx: &mut SchedCtx) {
    if matches!(job.request, Request::Shutdown) {
        shared.queue.lock().expect("queue poisoned").stopping = true;
    }
    let response = respond(engine, &job.request, ctx);
    finish(job, response, ctx);
}

/// Records telemetry for one answered request and sends the response.
fn finish(job: &Job, response: Response, ctx: &mut SchedCtx) {
    let ns = job.enqueued.elapsed().as_nanos() as u64;
    ctx.metrics.counter_add(request_counter(&job.request), 1);
    ctx.metrics.histogram_record("serve.request.ns", ns as f64);
    if !response.is_ok() {
        ctx.metrics.counter_add("serve.errors", 1);
    }
    if let Some(events) = &ctx.events {
        events.event(
            "serve.request",
            &[
                ("op", Value::Str(job.request.op_name().to_string())),
                ("ns", Value::U64(ns)),
                ("ok", Value::Bool(response.is_ok())),
            ],
        );
    }
    let _ = job.tx.send(response);
}

/// The single request dispatcher: every [`Request`] variant maps to exactly
/// one [`Response`] here, with engine failures folded into
/// [`Response::Error`]. No wildcard arm — a new op fails to compile until
/// it is handled.
fn respond(engine: &mut Engine, request: &Request, ctx: &SchedCtx) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let s = engine.stats();
            Response::Stats(ServerStats {
                num_nodes: s.num_nodes,
                num_edges: s.num_edges,
                embed_dim: s.embed_dim,
                cache_hits: s.cache.hits,
                cache_misses: s.cache.misses,
                cache_resident: s.cache.resident,
                cache_epoch: s.cache.epoch,
                invalidated: s.cache.invalidated,
                batches: ctx.batches,
                batched_jobs: ctx.batched_jobs,
                max_batch: ctx.max_batch,
                backend: s.backend,
            })
        }
        Request::Metrics => Response::Metrics(ctx.metrics.snapshot()),
        Request::Embed { nodes } => match engine.embed_batch(nodes) {
            Ok(m) => Response::Embeddings {
                dim: m.cols(),
                rows: (0..m.rows()).map(|r| m.row(r).to_vec()).collect(),
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::LinkScore { pairs } => match engine.link_scores(pairs) {
            Ok(scores) => Response::Scores(scores),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::TopK { node, k } => match engine.top_k(*node, *k) {
            Ok(ranked) => Response::Neighbors(ranked),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::AddEdges { edges } => match engine.add_edges(edges) {
            Ok(stale) => Response::EdgesAdded { invalidated: stale },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::AddNode {
            neighbors,
            features,
        } => match engine.add_node(neighbors, features) {
            Ok(id) => Response::NodeAdded { node: id },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        Request::Shutdown => Response::ShutdownAck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcmae_core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
    use gcmae_graph::Graph;
    use gcmae_tensor::Matrix;
    use rand::Rng;

    fn engine(seed: u64) -> (Engine, Matrix) {
        let mut rng = seeded_rng(seed);
        let n = 20;
        let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u, v));
            }
        }
        let graph = Graph::from_edges(n, &edges);
        let features = Matrix::uniform(n, 5, -1.0, 1.0, &mut rng);
        let cfg = GcmaeConfig {
            encoder: EncoderChoice::Sage,
            hidden_dim: 8,
            proj_dim: 4,
            ..GcmaeConfig::fast()
        };
        let model = Gcmae::new(&cfg, 5, &mut rng);
        let reference = model.encode(&graph, &features);
        (Engine::new(model, graph, features).unwrap(), reference)
    }

    fn embedding_rows(resp: &Response) -> &[Vec<f32>] {
        match resp {
            Response::Embeddings { rows, .. } => rows,
            other => panic!("expected embeddings, got {other:?}"),
        }
    }

    fn stats(resp: &Response) -> &ServerStats {
        match resp {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_submits_match_direct_encode_bitwise() {
        let (eng, reference) = engine(1);
        let batcher = Arc::new(Batcher::new(eng, 32));
        let mut handles = Vec::new();
        for t in 0..8_usize {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                let nodes = vec![t, (t + 7) % 20, t % 3];
                let resp = b.submit(Request::Embed {
                    nodes: nodes.clone(),
                });
                (nodes, resp)
            }));
        }
        for h in handles {
            let (nodes, resp) = h.join().unwrap();
            assert!(resp.is_ok());
            for (row, &v) in embedding_rows(&resp).iter().zip(&nodes) {
                assert_eq!(row.as_slice(), reference.row(v), "node {v}");
            }
        }
        batcher.shutdown();
    }

    #[test]
    fn mutation_acts_as_barrier_for_later_queries() {
        let (eng, _) = engine(2);
        let batcher = Batcher::new(eng, 32);
        let before = batcher.submit(Request::Stats);
        let edges_before = stats(&before).num_edges;
        let resp = batcher.submit(Request::AddEdges {
            edges: vec![(0, 15)],
        });
        match resp {
            Response::EdgesAdded { invalidated } => assert!(invalidated > 0),
            other => panic!("expected edges_added, got {other:?}"),
        }
        let after = batcher.submit(Request::Stats);
        assert_eq!(stats(&after).num_edges, edges_before + 1);
        // the post-mutation embedding matches a cold recompute
        let emb = batcher.submit(Request::Embed { nodes: vec![0, 15] });
        let rows = embedding_rows(&emb).to_vec();
        let eng = batcher.shutdown().unwrap();
        let cold = eng.model().encode(eng.graph(), eng.features());
        assert_eq!(rows[0].as_slice(), cold.row(0));
        assert_eq!(rows[1].as_slice(), cold.row(15));
    }

    #[test]
    fn stats_counts_every_read_job_exactly_once() {
        let (eng, _) = engine(3);
        let batcher = Arc::new(Batcher::new(eng, 32));
        let mut handles = Vec::new();
        for t in 0..6_usize {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || {
                b.submit(Request::Embed { nodes: vec![t] });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let resp = batcher.submit(Request::Stats);
        // 6 embeds + this stats call, each in exactly one batch
        assert_eq!(stats(&resp).batched_jobs, 7);
        let batches = stats(&resp).batches;
        assert!((1..=7).contains(&batches), "batches {batches}");
        batcher.shutdown();
    }

    #[test]
    fn metrics_op_reports_request_counters_and_latency() {
        let (eng, _) = engine(7);
        let batcher = Batcher::new(eng, 32);
        for t in 0..5_usize {
            assert!(batcher.submit(Request::Embed { nodes: vec![t] }).is_ok());
        }
        batcher.submit(Request::Ping);
        let bad = batcher.submit(Request::Embed {
            nodes: vec![10_000],
        });
        assert!(!bad.is_ok());
        let snap = match batcher.submit(Request::Metrics) {
            Response::Metrics(s) => s,
            other => panic!("expected metrics, got {other:?}"),
        };
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("serve.requests.embed"), 6);
        assert_eq!(counter("serve.requests.ping"), 1);
        assert_eq!(counter("serve.errors"), 1);
        // metrics itself is counted only on the NEXT snapshot; latency covers
        // the 7 requests answered before this one.
        let lat = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.request.ns")
            .expect("latency histogram");
        assert_eq!(lat.count, 7);
        assert!(lat.sum > 0.0);
        // in-process registry handle sees the same counters
        assert_eq!(batcher.metrics().counter_value("serve.requests.embed"), 6);
        batcher.shutdown();
    }

    #[test]
    fn event_sink_sees_one_event_per_request() {
        struct CountEvents(std::sync::atomic::AtomicU64);
        impl Observer for CountEvents {
            fn event(&self, name: &'static str, _fields: &[(&'static str, Value)]) {
                assert_eq!(name, "serve.request");
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let (eng, _) = engine(8);
        let sink = Arc::new(CountEvents(std::sync::atomic::AtomicU64::new(0)));
        let batcher = Batcher::with_events(eng, 32, Some(sink.clone() as Arc<dyn Observer>));
        batcher.submit(Request::Ping);
        batcher.submit(Request::Embed { nodes: vec![1, 2] });
        batcher.submit(Request::Stats);
        assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 3);
        batcher.shutdown();
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let (eng, reference) = engine(4);
        let batcher = Batcher::new(eng, 1);
        let resp = batcher.submit(Request::Embed { nodes: vec![2, 9] });
        let rows = embedding_rows(&resp);
        assert_eq!(rows[0].as_slice(), reference.row(2));
        assert_eq!(rows[1].as_slice(), reference.row(9));
        let resp = batcher.submit(Request::Stats);
        assert_eq!(stats(&resp).max_batch, 1);
        batcher.shutdown();
    }

    #[test]
    fn bad_request_gets_error_response_without_killing_scheduler() {
        let (eng, _) = engine(5);
        let batcher = Batcher::new(eng, 32);
        let bad = batcher.submit(Request::Embed {
            nodes: vec![10_000],
        });
        match bad {
            Response::Error { message } => assert!(message.contains("out of range")),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(batcher.submit(Request::Ping), Response::Pong);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_request_stops_the_scheduler() {
        let (eng, _) = engine(6);
        let batcher = Batcher::new(eng, 32);
        assert_eq!(batcher.submit(Request::Shutdown), Response::ShutdownAck);
        assert!(batcher.is_stopping());
        assert!(batcher.shutdown().is_some());
        assert!(batcher.shutdown().is_none(), "second shutdown returns None");
    }
}
