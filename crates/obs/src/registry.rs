//! Aggregating observer: atomic counters/gauges, log₂-bucket histograms,
//! and point-in-time snapshots rendered as Prometheus-style text or JSON.
//!
//! Emission cost: one `RwLock` read + one atomic RMW for a metric that
//! already exists; the write lock is taken only the first time a name is
//! seen. Maps are keyed by `&'static str` and iterated in `BTreeMap` order,
//! so snapshots are deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::{escape_json, format_f64, Observer, Value};

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Number of log₂ buckets. Bucket `b` (for `b > 0`) covers values in
/// `[2^(b-1), 2^b)`; bucket 0 covers `[0, 1)`. 64 buckets span any `u64`
/// magnitude, which covers nanosecond timings and flop counts alike.
const BUCKETS: usize = 64;

/// A lock-free log₂-bucket histogram. Quantile estimates are upper bucket
/// bounds, so they are accurate to within a factor of 2 — enough to tell a
/// 2 µs kernel from a 2 ms one, which is what this layer is for.
pub struct Histogram {
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation. Negative and non-finite values are clamped
    /// into bucket 0 and excluded from the sum.
    pub fn record(&self, value: f64) {
        let b = bucket_index(value);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() && value > 0.0 {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded (finite, positive) observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

/// Bucket index for a value: 0 for anything below 1 (or non-finite),
/// otherwise `floor(log2(v)) + 1`, clamped to the last bucket.
fn bucket_index(value: f64) -> usize {
    if !value.is_finite() || value < 1.0 {
        return 0;
    }
    let u = value as u64;
    if u == 0 {
        return 0;
    }
    (((63 - u.leading_zeros()) as usize) + 1).min(BUCKETS - 1)
}

/// Upper bound of bucket `b` (`1.0` for bucket 0, else `2^b`).
fn bucket_upper_bound(b: usize) -> f64 {
    if b == 0 {
        1.0
    } else {
        (2.0f64).powi(b as i32)
    }
}

/// Aggregating observer; see the module docs for cost characteristics.
///
/// Maps are keyed by owned strings so names composed at runtime (per-shard
/// gauges like `gateway.shard.3.up`) aggregate alongside the `&'static str`
/// names emitted through the [`Observer`] trait; lookups still borrow, so
/// the steady-state emit path allocates nothing.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = read(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(write(&self.counters).entry(name.to_string()).or_default())
    }

    fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(g) = read(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            write(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits()))),
        )
    }

    fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(write(&self.histograms).entry(name.to_string()).or_default())
    }

    /// Increments a counter whose name is composed at runtime (e.g.
    /// `gateway.shard.2.requests`). First sight of a name allocates; every
    /// later emit is a borrowed lookup plus one atomic RMW.
    pub fn counter_add_dyn(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets a gauge whose name is composed at runtime.
    pub fn gauge_set_dyn(&self, name: &str, value: f64) {
        self.gauge(name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records into a histogram whose name is composed at runtime.
    pub fn histogram_record_dyn(&self, name: &str, value: f64) {
        self.histogram(name).record(value);
    }

    /// Current value of a counter (0 if never written).
    pub fn counter_value(&self, name: &str) -> u64 {
        read(&self.counters)
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge (`None` if never written).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        read(&self.gauges)
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Point-in-time copy of every metric, in sorted name order.
    pub fn snapshot(&self) -> Snapshot {
        let counters = read(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = read(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = read(&self.histograms)
            .iter()
            .map(|(k, h)| HistogramSnapshot {
                name: k.clone(),
                count: h.count(),
                sum: h.sum(),
                p50: h.quantile(0.50),
                p90: h.quantile(0.90),
                p99: h.quantile(0.99),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Observer for Registry {
    fn counter_add(&self, name: &'static str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        self.gauge(name).store(value.to_bits(), Ordering::Relaxed);
    }

    fn histogram_record(&self, name: &'static str, value: f64) {
        self.histogram(name).record(value);
    }

    /// Events aggregate as occurrence counters under the event name; field
    /// payloads are for streaming sinks, not for aggregation.
    fn event(&self, name: &'static str, _fields: &[(&'static str, Value)]) {
        self.counter_add(name, 1);
    }
}

/// One histogram's aggregate view inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: f64,
    /// Median upper-bound estimate.
    pub p50: f64,
    /// 90th-percentile upper-bound estimate.
    pub p90: f64,
    /// 99th-percentile upper-bound estimate.
    pub p99: f64,
}

/// Point-in-time copy of a [`Registry`], rendering to Prometheus-style text
/// ([`Snapshot::to_prometheus`]) or JSON ([`Snapshot::to_json`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` counters in sorted name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges in sorted name order.
    pub gauges: Vec<(String, f64)>,
    /// Histogram aggregates in sorted name order.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; dotted paths map dots to
/// underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (counters and gauges as plain samples, histograms as summaries with
    /// quantile labels).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", format_f64(*v)));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!(
                "# TYPE {n} summary\n\
                 {n}{{quantile=\"0.5\"}} {}\n\
                 {n}{{quantile=\"0.9\"}} {}\n\
                 {n}{{quantile=\"0.99\"}} {}\n\
                 {n}_sum {}\n\
                 {n}_count {}\n",
                format_f64(h.p50),
                format_f64(h.p90),
                format_f64(h.p99),
                format_f64(h.sum),
                h.count
            ));
        }
        out
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,p50,p90,p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", escape_json(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let val = if v.is_finite() {
                format_f64(*v)
            } else {
                "null".to_string()
            };
            out.push_str(&format!("{}:{val}", escape_json(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape_json(&h.name),
                h.count,
                format_f64(h.sum),
                format_f64(h.p50),
                format_f64(h.p90),
                format_f64(h.p99)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = Registry::new();
        r.counter_add("a.calls", 1);
        r.counter_add("a.calls", 41);
        r.counter_add("b.calls", 5);
        assert_eq!(r.counter_value("a.calls"), 42);
        assert_eq!(r.counter_value("b.calls"), 5);
        assert_eq!(r.counter_value("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        assert_eq!(r.gauge_value("lr"), None);
        r.gauge_set("lr", 0.001);
        r.gauge_set("lr", 0.0005);
        assert_eq!(r.gauge_value("lr"), Some(0.0005));
    }

    #[test]
    fn histogram_counts_sums_and_brackets_quantiles() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1015.0);
        // p50 is the 3rd of 5 observations (4.0); the log-bucket upper bound
        // for [4, 8) is 8.
        assert_eq!(h.quantile(0.5), 8.0);
        // p99 lands in 1000's bucket [512, 1024) -> bound 1024.
        assert_eq!(h.quantile(0.99), 1024.0);
        // Quantile estimates never undershoot the true value by more than 2x.
        assert!(h.quantile(1.0) >= 1000.0);
    }

    #[test]
    fn histogram_handles_degenerate_inputs() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(0.25);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 0.25);
        assert_eq!(h.quantile(0.5), 1.0, "sub-1 values live in bucket 0");
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.99), 0.0);
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 + 1.0);
                    }
                })
            })
            .collect();
        for th in handles {
            th.join().expect("recorder thread");
        }
        assert_eq!(h.count(), 4000);
        let expect: f64 = (1..=4000).map(|v| v as f64).sum();
        assert_eq!(h.sum(), expect, "CAS sum must not lose updates");
    }

    #[test]
    fn snapshot_is_sorted_and_renders_both_formats() {
        let r = Registry::new();
        r.counter_add("z.count", 2);
        r.counter_add("a.count", 1);
        r.gauge_set("train.lr", 0.001);
        r.histogram_record("req.ns", 100.0);
        r.histogram_record("req.ns", 200.0);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.count");
        assert_eq!(s.counters[1].0, "z.count");

        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE a_count counter"));
        assert!(prom.contains("a_count 1"));
        assert!(prom.contains("# TYPE train_lr gauge"));
        assert!(prom.contains("req_ns_count 2"));
        assert!(prom.contains("req_ns{quantile=\"0.5\"}"));

        let json = s.to_json();
        assert!(json.contains("\"a.count\":1"));
        assert!(json.contains("\"train.lr\":0.001"));
        assert!(json.contains("\"req.ns\":{\"count\":2"));
        // must parse as a single JSON object: balanced braces, no trailing comma
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",}"));
    }

    #[test]
    fn dynamic_names_aggregate_alongside_static_ones() {
        let r = Registry::new();
        for shard in 0..3 {
            r.counter_add_dyn(&format!("gw.shard.{shard}.requests"), shard + 1);
            r.gauge_set_dyn(&format!("gw.shard.{shard}.up"), 1.0);
        }
        r.counter_add("gw.requests", 6);
        r.histogram_record_dyn("gw.shard.0.ns", 42.0);
        assert_eq!(r.counter_value("gw.shard.2.requests"), 3);
        assert_eq!(r.gauge_value("gw.shard.1.up"), Some(1.0));
        let s = r.snapshot();
        assert!(s.counters.iter().any(|(k, v)| k == "gw.requests" && *v == 6));
        assert!(s.counters.iter().any(|(k, _)| k == "gw.shard.0.requests"));
        assert!(s.histograms.iter().any(|h| h.name == "gw.shard.0.ns" && h.count == 1));
    }

    #[test]
    fn registry_counts_events_by_name() {
        let r = Registry::new();
        r.event("train.rollback", &[("epoch", Value::U64(3))]);
        r.event("train.rollback", &[("epoch", Value::U64(5))]);
        assert_eq!(r.counter_value("train.rollback"), 2);
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0;
        for v in [0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 1e3, 1e6, 1e9, 1e12, 1e18] {
            let b = bucket_index(v);
            assert!(b >= last, "bucket_index({v}) = {b} < {last}");
            last = b;
        }
        assert_eq!(bucket_index(f64::INFINITY), 0);
    }
}
