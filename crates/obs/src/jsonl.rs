//! Streaming event sink: one JSON object per line.
//!
//! Each [`Observer::event`] becomes a line like
//! `{"event":"train.step","epoch":3,"total":1.25,...}` followed by a flush,
//! so `tail -f` on the sink file shows training progress live. Counters,
//! gauges, and histograms are ignored — aggregation is the [`Registry`]'s
//! job; this sink is the raw event stream.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::{escape_json, Observer, Value};

#[cfg(doc)]
use crate::Registry;

/// Writes each event as one JSON line to an owned writer.
pub struct JsonlObserver {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlObserver {
    /// Wraps any writer (a file, a `Vec<u8>` in tests, a socket).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Creates (truncating) `path` and streams events to it, buffered.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Formats one event line (without the trailing newline).
    pub fn format_line(name: &str, fields: &[(&'static str, Value)]) -> String {
        let mut line = format!("{{\"event\":{}", escape_json(name));
        for (key, value) in fields {
            line.push_str(&format!(
                ",{}:{}",
                escape_json(key),
                value.to_json_fragment()
            ));
        }
        line.push('}');
        line
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush()
    }
}

impl Observer for JsonlObserver {
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let line = Self::format_line(name, fields);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Telemetry must never take the run down with it: a full disk or a
        // closed pipe drops the line, not the training job.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A shared in-memory sink for asserting on written bytes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("buf").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_become_one_json_line_each() {
        let buf = SharedBuf::default();
        let obs = JsonlObserver::new(Box::new(buf.clone()));
        obs.event(
            "train.step",
            &[
                ("epoch", Value::U64(3)),
                ("total", Value::F64(1.25)),
                ("note", Value::Str("ok".into())),
            ],
        );
        obs.event("train.rollback", &[("at_epoch", Value::U64(5))]);
        let text = String::from_utf8(buf.0.lock().expect("buf").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"event\":\"train.step\",\"epoch\":3,\"total\":1.25,\"note\":\"ok\"}"
        );
        assert_eq!(lines[1], "{\"event\":\"train.rollback\",\"at_epoch\":5}");
    }

    #[test]
    fn non_event_signals_are_ignored() {
        let buf = SharedBuf::default();
        let obs = JsonlObserver::new(Box::new(buf.clone()));
        obs.counter_add("c", 1);
        obs.gauge_set("g", 1.0);
        obs.histogram_record("h", 1.0);
        assert!(buf.0.lock().expect("buf").is_empty());
    }

    #[test]
    fn format_line_escapes_field_values() {
        let line = JsonlObserver::format_line(
            "fault",
            &[("message", Value::Str("row 3 \"exploded\"\n".into()))],
        );
        assert_eq!(
            line,
            "{\"event\":\"fault\",\"message\":\"row 3 \\\"exploded\\\"\\n\"}"
        );
    }
}
