//! # gcmae-obs
//!
//! Structured telemetry for every layer of the GCMAE reproduction: kernel
//! timing/flop counters in `gcmae-tensor`, per-step training telemetry in
//! `gcmae-core`, and request/cache/batching metrics in `gcmae-serve`.
//!
//! The crate is std-only and built around one contract: **telemetry must be
//! free when nobody is listening and must never change a numeric result when
//! somebody is.** Observers only read values that training already computes —
//! they never touch an RNG, reorder a reduction, or mutate model state — so a
//! run with any observer attached is bit-identical to a run with none.
//!
//! Three pieces:
//!
//! * [`Observer`] — the sink trait (counters, gauges, histograms, structured
//!   events). All methods default to no-ops, so a sink implements only what
//!   it cares about.
//! * [`Registry`] — a lock-cheap aggregating observer: atomic counters and
//!   gauges, log₂-bucket histograms, and point-in-time [`Snapshot`]s
//!   rendered as Prometheus-style text or JSON.
//! * [`JsonlObserver`] — a streaming sink that writes each event as one JSON
//!   line (the `--metrics-jsonl` format of `gcmae-serve` and the per-step
//!   training log of `TrainSession`).
//!
//! ## Global hook for kernels
//!
//! Library layers that cannot thread an observer handle through their call
//! graph (the tensor kernels) report through a process-global observer,
//! gated by a single relaxed atomic load when disabled:
//!
//! ```
//! use std::sync::Arc;
//! use gcmae_obs::{install, uninstall, Registry};
//!
//! let reg = Arc::new(Registry::new());
//! install(reg.clone());
//! gcmae_obs::counter_add("demo.widgets", 3);
//! assert_eq!(reg.counter_value("demo.widgets"), 3);
//! uninstall();
//! ```

pub mod jsonl;
pub mod registry;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

pub use jsonl::JsonlObserver;
pub use registry::{Histogram, HistogramSnapshot, Registry, Snapshot};

/// A value attached to a structured [`Observer::event`] field.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, epochs, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (losses, norms, seconds).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text (fault messages, op names).
    Str(String),
}

impl Value {
    /// Renders the value as a JSON fragment (non-finite floats become
    /// `null`, which keeps every emitted line parseable).
    pub fn to_json_fragment(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format_f64(*v),
            Value::F64(_) => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => escape_json(s),
        }
    }
}

/// Formats a finite `f64` so it round-trips through any JSON parser.
pub(crate) fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    // `{}` prints integral floats without a dot; keep them valid JSON
    // numbers either way (they are), but mark them as floats for readers
    // that distinguish, matching what serde_json would emit.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Quotes and escapes a string as a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A telemetry sink. Every method has a no-op default, so implementations
/// opt into exactly the signals they consume. Metric names are `&'static
/// str` dotted paths (`"kernel.matmul.ns"`), which keeps the emit path
/// allocation-free.
///
/// Implementations must be cheap and must not panic: observers run inside
/// training steps and kernel epilogues.
pub trait Observer: Send + Sync {
    /// Adds `delta` to a monotonically increasing counter.
    fn counter_add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Overwrites a point-in-time gauge.
    fn gauge_set(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation into a distribution.
    fn histogram_record(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Emits one structured event (e.g. `train.step` with its loss terms).
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let _ = (name, fields);
    }
}

/// An observer that ignores everything. Attaching it is the canonical
/// bit-parity baseline: outputs must equal a run with telemetry off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Forwards every signal to each inner observer, in order. Used to pair an
/// aggregating [`Registry`] with a streaming [`JsonlObserver`].
pub struct Fanout(pub Vec<Arc<dyn Observer>>);

impl Observer for Fanout {
    fn counter_add(&self, name: &'static str, delta: u64) {
        for o in &self.0 {
            o.counter_add(name, delta);
        }
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        for o in &self.0 {
            o.gauge_set(name, value);
        }
    }

    fn histogram_record(&self, name: &'static str, value: f64) {
        for o in &self.0 {
            o.histogram_record(name, value);
        }
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        for o in &self.0 {
            o.event(name, fields);
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global observer (kernel-layer hook)
// ---------------------------------------------------------------------------

/// Fast gate: kernels pay exactly one relaxed load when telemetry is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed observer. Writes are rare (install/uninstall); reads happen
/// only after the `ENABLED` gate passes, so the lock is off the disabled
/// path entirely.
static OBSERVER: RwLock<Option<Arc<dyn Observer>>> = RwLock::new(None);

/// True when a global observer is installed. `#[inline]` and relaxed so the
/// disabled fast path costs a single atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `obs` as the process-global observer (replacing any previous
/// one) and opens the emit gate.
pub fn install(obs: Arc<dyn Observer>) {
    let mut slot = OBSERVER.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(obs);
    drop(slot);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the global observer and closes the emit gate.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    let mut slot = OBSERVER.write().unwrap_or_else(|e| e.into_inner());
    *slot = None;
}

/// The currently installed global observer, if any.
pub fn installed() -> Option<Arc<dyn Observer>> {
    OBSERVER.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Adds to a counter on the global observer (no-op when disabled).
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if enabled() {
        if let Some(o) = installed() {
            o.counter_add(name, delta);
        }
    }
}

/// Sets a gauge on the global observer (no-op when disabled).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if enabled() {
        if let Some(o) = installed() {
            o.gauge_set(name, value);
        }
    }
}

/// Records a histogram observation on the global observer (no-op when
/// disabled).
#[inline]
pub fn histogram_record(name: &'static str, value: f64) {
    if enabled() {
        if let Some(o) = installed() {
            o.histogram_record(name, value);
        }
    }
}

/// Emits a structured event on the global observer (no-op when disabled).
#[inline]
pub fn event(name: &'static str, fields: &[(&'static str, Value)]) {
    if enabled() {
        if let Some(o) = installed() {
            o.event(name, fields);
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel spans
// ---------------------------------------------------------------------------

/// Static metric names for one instrumented kernel. Spelled out as three
/// literals (instead of derived at runtime) so the emit path never
/// allocates.
pub struct KernelMetrics {
    /// Histogram of per-call wall-clock nanoseconds.
    pub ns: &'static str,
    /// Counter of calls.
    pub calls: &'static str,
    /// Counter of estimated multiply-add units executed.
    pub flops: &'static str,
}

/// RAII timer for one kernel call. Inert (no clock read) when telemetry is
/// disabled at entry; on drop it records duration, call count, and flops on
/// the global observer.
pub struct KernelSpan {
    metrics: &'static KernelMetrics,
    flops: u64,
    start: Option<Instant>,
}

/// Starts a span for `metrics`, attributing `flops` multiply-add units.
#[inline]
pub fn kernel_span(metrics: &'static KernelMetrics, flops: u64) -> KernelSpan {
    let start = if enabled() {
        Some(Instant::now())
    } else {
        None
    };
    KernelSpan {
        metrics,
        flops,
        start,
    }
}

impl Drop for KernelSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            if let Some(o) = installed() {
                let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                o.histogram_record(self.metrics.ns, ns as f64);
                o.counter_add(self.metrics.calls, 1);
                o.counter_add(self.metrics.flops, self.flops);
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global observer.
    pub static GLOBAL_OBSERVER_GUARD: Mutex<()> = Mutex::new(());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock::GLOBAL_OBSERVER_GUARD;

    #[test]
    fn disabled_gate_drops_emissions() {
        let _g = GLOBAL_OBSERVER_GUARD
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!enabled());
        counter_add("gate.off", 7); // must not panic, must not be recorded
        let reg = Arc::new(Registry::new());
        install(reg.clone());
        assert!(enabled());
        counter_add("gate.off", 2);
        uninstall();
        counter_add("gate.off", 100);
        assert_eq!(reg.counter_value("gate.off"), 2);
    }

    #[test]
    fn kernel_span_records_ns_calls_and_flops() {
        let _g = GLOBAL_OBSERVER_GUARD
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        static KM: KernelMetrics = KernelMetrics {
            ns: "test.k.ns",
            calls: "test.k.calls",
            flops: "test.k.flops",
        };
        let reg = Arc::new(Registry::new());
        install(reg.clone());
        {
            let _s = kernel_span(&KM, 123);
        }
        {
            let _s = kernel_span(&KM, 7);
        }
        uninstall();
        assert_eq!(reg.counter_value("test.k.calls"), 2);
        assert_eq!(reg.counter_value("test.k.flops"), 130);
        let snap = reg.snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.k.ns")
            .expect("ns histogram");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn kernel_span_is_inert_when_disabled() {
        let _g = GLOBAL_OBSERVER_GUARD
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        static KM: KernelMetrics = KernelMetrics {
            ns: "inert.ns",
            calls: "inert.calls",
            flops: "inert.flops",
        };
        uninstall();
        let s = kernel_span(&KM, 999);
        assert!(s.start.is_none());
        drop(s);
    }

    #[test]
    fn fanout_forwards_to_every_inner_observer() {
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        let f = Fanout(vec![a.clone(), b.clone()]);
        f.counter_add("fan.count", 4);
        f.gauge_set("fan.gauge", 2.5);
        f.histogram_record("fan.hist", 10.0);
        f.event("fan.event", &[("k", Value::U64(1))]);
        for reg in [&a, &b] {
            assert_eq!(reg.counter_value("fan.count"), 4);
            assert_eq!(reg.gauge_value("fan.gauge"), Some(2.5));
            assert_eq!(reg.counter_value("fan.event"), 1);
        }
    }

    #[test]
    fn value_json_fragments_are_valid() {
        assert_eq!(Value::U64(3).to_json_fragment(), "3");
        assert_eq!(Value::I64(-2).to_json_fragment(), "-2");
        assert_eq!(Value::F64(1.5).to_json_fragment(), "1.5");
        assert_eq!(Value::F64(2.0).to_json_fragment(), "2.0");
        assert_eq!(Value::F64(f64::NAN).to_json_fragment(), "null");
        assert_eq!(Value::Bool(true).to_json_fragment(), "true");
        assert_eq!(
            Value::Str("a\"b\n".into()).to_json_fragment(),
            "\"a\\\"b\\n\""
        );
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let o = NoopObserver;
        o.counter_add("x", 1);
        o.gauge_set("y", 0.0);
        o.histogram_record("z", 1.0);
        o.event("e", &[]);
    }
}
