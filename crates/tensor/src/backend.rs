//! Kernel-backend selection: Reference (bit-exact blocked) vs Simd (AVX2/FMA).
//!
//! The crate ships two implementations of every dense hot path:
//!
//! * **Reference** — the cache-blocked, register-tiled kernels in
//!   [`crate::dense`]. Per-output-element accumulation is sequential in `k`
//!   into one f32 accumulator, so the results are bit-identical to the naive
//!   triple loops at any thread count. This is the default and the
//!   correctness oracle.
//! * **Simd** — an opt-in `std::arch` x86-64 path ([`crate::simd`]): a 6×16
//!   AVX2/FMA microkernel over the same packed `[strip][k][16]` B panels,
//!   plus FMA dot/row-max reductions. FMA contracts each multiply-add into
//!   one rounding, and the 16-wide strips are accumulated in 8-lane partial
//!   sums, so Simd results are *not* bit-identical to Reference — they are
//!   validated by tolerance parity and finite-difference gradcheck instead
//!   (see `crates/tensor/tests/backend_parity.rs`).
//!
//! ## Selection
//!
//! Resolution order for the *requested* backend: a value forced through
//! [`set_backend`] wins (the `TrainSession::backend(...)` builder and the
//! serve `--backend` flag route here), then the `GCMAE_KERNEL_BACKEND`
//! environment variable (`reference`/`simd`, read once and cached), then
//! Reference. The *active* backend additionally requires runtime CPU support
//! (`is_x86_feature_detected!("avx2")` + `fma`): requesting Simd on a host
//! without those features — or on a non-x86-64 target — silently falls back
//! to Reference, so a binary built with the Simd path is safe to run
//! anywhere.
//!
//! Dispatch happens once per kernel *call* (an atomic load plus a cached
//! feature probe), never inside inner loops, and both paths share the same
//! packing, parallel partitioning, and edge handling — a backend changes the
//! microkernel, nothing else.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which dense-kernel implementation services matmul/SYRK/reduction calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Bit-exact blocked kernels (the default and correctness oracle).
    #[default]
    Reference,
    /// AVX2/FMA microkernel path; tolerance-parity with Reference.
    Simd,
}

impl Backend {
    /// Stable lowercase name used by env/flag parsing, obs export, and the
    /// serve stats wire format.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Simd => "simd",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses a backend name (env var, CLI flag). Case-insensitive; recognizes
/// the canonical names plus a few aliases. `None` for anything else.
pub fn parse_backend(s: &str) -> Option<Backend> {
    match s.trim().to_ascii_lowercase().as_str() {
        "reference" | "ref" | "blocked" | "scalar" => Some(Backend::Reference),
        "simd" | "avx2" | "fma" => Some(Backend::Simd),
        _ => None,
    }
}

/// Forced backend: 0 = unset (fall through to env/default), 1 = Reference,
/// 2 = Simd. Mirrors the `FORCED_THREADS` pattern in [`crate::parallel`].
static FORCED_BACKEND: AtomicU8 = AtomicU8::new(0);

/// `GCMAE_KERNEL_BACKEND`, read once and cached. Unparseable values are
/// treated as unset (the default backend must never depend on a typo).
static ENV_BACKEND: OnceLock<Option<Backend>> = OnceLock::new();

fn env_backend() -> Option<Backend> {
    *ENV_BACKEND.get_or_init(|| {
        std::env::var("GCMAE_KERNEL_BACKEND")
            .ok()
            .and_then(|v| parse_backend(&v))
    })
}

/// Forces the kernel backend for this process (wins over the env variable).
pub fn set_backend(b: Backend) {
    let code = match b {
        Backend::Reference => 1,
        Backend::Simd => 2,
    };
    FORCED_BACKEND.store(code, Ordering::Relaxed);
}

/// Clears a forced backend, restoring env-then-default resolution.
pub fn reset_backend() {
    FORCED_BACKEND.store(0, Ordering::Relaxed);
}

/// The backend selection *asked for* (forced > env > Reference), before CPU
/// capability is considered.
pub fn requested_backend() -> Backend {
    match FORCED_BACKEND.load(Ordering::Relaxed) {
        1 => Backend::Reference,
        2 => Backend::Simd,
        _ => env_backend().unwrap_or(Backend::Reference),
    }
}

/// Pure resolution of requested + supported into the backend that actually
/// runs; kept separate from the cached statics so it is unit-testable.
pub fn resolve_backend(requested: Backend, simd_supported: bool) -> Backend {
    match requested {
        Backend::Simd if simd_supported => Backend::Simd,
        _ => Backend::Reference,
    }
}

/// CPU features the Simd backend needs, as probed at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit integer/float vector ops.
    pub avx2: bool,
    /// Fused multiply-add.
    pub fma: bool,
    /// 512-bit vector ops; upgrades the Simd microkernel from ymm strip
    /// tiles to zmm strip pairs (not required for the backend itself).
    pub avx512f: bool,
}

/// Runtime CPU-feature probe (cached). Always `false` off x86-64.
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        static PROBE: OnceLock<CpuFeatures> = OnceLock::new();
        *PROBE.get_or_init(|| CpuFeatures {
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            fma: std::arch::is_x86_feature_detected!("fma"),
            avx512f: std::arch::is_x86_feature_detected!("avx512f"),
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            avx2: false,
            fma: false,
            avx512f: false,
        }
    }
}

/// `true` when this host can run the Simd backend.
pub fn simd_supported() -> bool {
    let f = cpu_features();
    f.avx2 && f.fma
}

/// The backend that will actually service kernel calls right now:
/// [`requested_backend`] demoted to Reference when the CPU lacks AVX2/FMA.
pub fn active_backend() -> Backend {
    resolve_backend(requested_backend(), simd_supported())
}

/// Per-call dispatch gate for the dense kernels.
#[inline]
pub(crate) fn simd_active() -> bool {
    active_backend() == Backend::Simd
}

/// Publishes the backend selection and CPU probe to the process-global
/// `gcmae-obs` observer (no-op when none is installed): gauges
/// (`kernel.backend.simd`, `kernel.cpu.avx2`, `kernel.cpu.fma`) flow into
/// Prometheus/JSON snapshots and the serve `metrics` response, and a
/// `kernel.backend` event records the requested-vs-active resolution in
/// JSONL sinks. Call after observer installation (the session and serve
/// entry points do).
pub fn publish() {
    if gcmae_obs::enabled() {
        if let Some(o) = gcmae_obs::installed() {
            publish_to(&*o);
        }
    }
}

/// [`publish`] against an explicit observer — for session-scoped observers
/// that are not installed globally.
pub fn publish_to(obs: &dyn gcmae_obs::Observer) {
    let requested = requested_backend();
    let active = active_backend();
    let f = cpu_features();
    obs.gauge_set("kernel.backend.simd", (active == Backend::Simd) as u8 as f64);
    obs.gauge_set("kernel.cpu.avx2", f.avx2 as u8 as f64);
    obs.gauge_set("kernel.cpu.fma", f.fma as u8 as f64);
    obs.gauge_set("kernel.cpu.avx512f", f.avx512f as u8 as f64);
    obs.event(
        "kernel.backend",
        &[
            ("active", gcmae_obs::Value::Str(active.name().to_string())),
            (
                "requested",
                gcmae_obs::Value::Str(requested.name().to_string()),
            ),
            ("avx2", gcmae_obs::Value::Bool(f.avx2)),
            ("fma", gcmae_obs::Value::Bool(f.fma)),
            ("avx512f", gcmae_obs::Value::Bool(f.avx512f)),
        ],
    );
}

/// Dot product of two equal-length slices through the active backend.
///
/// Reference keeps the sequential scalar accumulation (bit-identical to
/// [`crate::dense::dot`]); Simd uses 8-lane FMA partial sums.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active()` implies AVX2+FMA were detected at runtime.
        return unsafe { crate::simd::dot(a, b) };
    }
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Row maximum through the active backend; `-inf` for an empty slice.
///
/// Both paths use `f32::max` semantics (NaN inputs are not propagated);
/// callers needing NaN detection must scan separately, as the guard layer
/// already does.
#[inline]
pub fn row_max(xs: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: `simd_active()` implies AVX2+FMA were detected at runtime.
        return unsafe { crate::simd::row_max(xs) };
    }
    xs.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognizes_canonical_names_and_aliases() {
        assert_eq!(parse_backend("reference"), Some(Backend::Reference));
        assert_eq!(parse_backend("REF"), Some(Backend::Reference));
        assert_eq!(parse_backend(" simd "), Some(Backend::Simd));
        assert_eq!(parse_backend("AVX2"), Some(Backend::Simd));
        assert_eq!(parse_backend("fma"), Some(Backend::Simd));
        assert_eq!(parse_backend("gpu"), None);
        assert_eq!(parse_backend(""), None);
    }

    #[test]
    fn resolve_demotes_simd_without_cpu_support() {
        assert_eq!(
            resolve_backend(Backend::Simd, false),
            Backend::Reference,
            "unsupported hosts must fall back"
        );
        assert_eq!(resolve_backend(Backend::Simd, true), Backend::Simd);
        assert_eq!(resolve_backend(Backend::Reference, true), Backend::Reference);
        assert_eq!(resolve_backend(Backend::Reference, false), Backend::Reference);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for b in [Backend::Reference, Backend::Simd] {
            assert_eq!(parse_backend(b.name()), Some(b));
        }
    }

    #[test]
    fn default_backend_is_reference() {
        assert_eq!(Backend::default(), Backend::Reference);
    }
}
