//! Per-step cache of Gram-style similarity products (`A·Bᵀ`) shared by the
//! O(N²) loss kernels.
//!
//! One training step computes several products over the same embedding
//! matrices: InfoNCE needs `Û·V̂ᵀ`, `Û·Ûᵀ`, `V̂·V̂ᵀ` **and** the transpose
//! `V̂·Ûᵀ`, and adjacency reconstruction needs `Z·Zᵀ`. The cache serves each
//! distinct product once per step:
//!
//! * self products (`A·Aᵀ`) run through [`syrk_nt`], which computes only the
//!   lower triangle and mirrors it (half the flops, bit-identical output);
//! * a request whose swapped product is already cached is answered with a
//!   tiled transpose of the cached entry — bit-identical because
//!   `(B·Aᵀ)[i][j] = dot(b_i, a_j) = (A·Bᵀ)[j][i]` exactly (the same f32
//!   multiplications in the same order, just stored transposed);
//! * everything else falls back to the blocked [`matmul_nt`].
//!
//! Entries are raw (unscaled) products so both losses can share them; callers
//! apply their own temperature scaling at read time.
//!
//! ## Key validity
//!
//! Entries are keyed by the operands' buffer addresses (compared as integers,
//! never dereferenced) plus their shapes. A hit is only correct if a keyed
//! buffer cannot be freed and re-issued at the same address within one cache
//! epoch. That holds by construction: the cache lives inside a
//! [`crate::tape::Tape`] (or a single loss forward call) and every keyed
//! matrix is either a tape value or is moved into the loss's `Saved` state on
//! the tape, all of which outlive the tape itself.
//!
//! Counters `gram.hit` / `gram.miss` are exported through `gcmae-obs`.

use std::sync::Arc;

use crate::dense::{matmul_nt, syrk_nt};
use crate::matrix::Matrix;

struct Entry {
    a_key: usize,
    b_key: usize,
    a_shape: (usize, usize),
    b_shape: (usize, usize),
    gram: Arc<Matrix>,
}

/// Cache of `A·Bᵀ` products, keyed by operand identity. One instance lives
/// per [`crate::tape::Tape`] (i.e. per training step).
#[derive(Default)]
pub struct GramCache {
    entries: Vec<Entry>,
}

impl GramCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `a · bᵀ`, serving repeated and transposed requests from the
    /// cache. The result is bit-identical to `matmul_nt(a, b)` in every case.
    pub fn nt(&mut self, a: &Matrix, b: &Matrix) -> Arc<Matrix> {
        let a_key = a.as_slice().as_ptr() as usize;
        let b_key = b.as_slice().as_ptr() as usize;
        if let Some(e) = self.entries.iter().find(|e| {
            e.a_key == a_key && e.b_key == b_key && e.a_shape == a.shape() && e.b_shape == b.shape()
        }) {
            gcmae_obs::counter_add("gram.hit", 1);
            return e.gram.clone();
        }
        let swapped = self.entries.iter().find(|e| {
            e.a_key == b_key && e.b_key == a_key && e.a_shape == b.shape() && e.b_shape == a.shape()
        });
        let gram = match swapped {
            Some(e) => {
                gcmae_obs::counter_add("gram.hit", 1);
                Arc::new(e.gram.transposed())
            }
            None => {
                gcmae_obs::counter_add("gram.miss", 1);
                if a_key == b_key && a.shape() == b.shape() {
                    Arc::new(syrk_nt(a))
                } else {
                    Arc::new(matmul_nt(a, b))
                }
            }
        };
        self.entries.push(Entry {
            a_key,
            b_key,
            a_shape: a.shape(),
            b_shape: b.shape(),
            gram: Arc::clone(&gram),
        });
        gram
    }

    /// Drops all entries, recycling sole-owner buffers into the arena.
    pub fn clear(&mut self) {
        for e in self.entries.drain(..) {
            if let Ok(m) = Arc::try_unwrap(e.gram) {
                crate::arena::recycle_matrix(m);
            }
        }
    }
}

impl Drop for GramCache {
    fn drop(&mut self) {
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::matmul_nt_naive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repeated_and_swapped_requests_hit_and_stay_bit_identical() {
        // Bit-identity with the naive kernel is a Reference-backend contract.
        crate::backend::set_backend(crate::backend::Backend::Reference);
        let mut rng = StdRng::seed_from_u64(41);
        let a = Matrix::uniform(13, 7, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(9, 7, -1.0, 1.0, &mut rng);
        let mut cache = GramCache::new();
        let before = crate::arena::stats();
        let _ = before; // silence unused in non-obs builds

        let ab = cache.nt(&a, &b);
        assert_eq!(ab.as_slice(), matmul_nt_naive(&a, &b).as_slice());
        let ab2 = cache.nt(&a, &b);
        assert!(Arc::ptr_eq(&ab, &ab2), "repeat request must be the same buffer");
        let ba = cache.nt(&b, &a);
        assert_eq!(ba.as_slice(), matmul_nt_naive(&b, &a).as_slice());
        let aa = cache.nt(&a, &a);
        assert_eq!(aa.as_slice(), matmul_nt_naive(&a, &a).as_slice());
        let aa2 = cache.nt(&a, &a);
        assert!(Arc::ptr_eq(&aa, &aa2));
    }

    #[test]
    fn distinct_shapes_at_same_address_do_not_collide() {
        // Same backing buffer viewed with two shapes must produce two entries.
        let data: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let m1 = Matrix::from_vec(3, 4, data.clone());
        let mut cache = GramCache::new();
        let g1 = cache.nt(&m1, &m1);
        assert_eq!(g1.shape(), (3, 3));
        let m2 = Matrix::from_vec(4, 3, m1.as_slice().to_vec());
        let g2 = cache.nt(&m2, &m2);
        assert_eq!(g2.shape(), (4, 4));
    }
}
