//! Eager reverse-mode autograd tape.
//!
//! Values are computed immediately when an op method is called; the op and
//! whatever state its backward pass needs are recorded on the tape. Because
//! ids are handed out in construction order, the tape is already a topological
//! order and [`Tape::backward`] is a single reverse sweep.
//!
//! A tape lives for one training step: bind parameter values as [`Tape::leaf`]
//! nodes, build the loss, call `backward`, read the gradients, drop the tape.
//!
//! The tape owns the step's [`GramCache`]: the O(N²) losses route their
//! similarity products through it so repeated products within one step are
//! computed once. Dropping the tape (or its `Grads`) returns every node
//! value, gradient, and cached Gram matrix to the buffer arena
//! (see [`crate::arena`]), so under an [`crate::arena::ArenaGuard`] the next
//! step's tape reuses this step's buffers instead of reallocating them.

use std::sync::Arc;

use crate::dense;
use crate::gram::GramCache;
use crate::matrix::Matrix;
use crate::node::{Node, Op, TensorId};
use crate::ops::{adj_recon, gat, infonce, sampled, sce, softmax_ce, variance};
use crate::sparse::SharedCsr;

/// The autograd tape. See the module docs.
#[derive(Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    /// Per-step cache of `A·Bᵀ` products shared by the loss kernels.
    gram: GramCache,
}

impl Drop for Tape {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            crate::arena::recycle(node.value.take_data());
        }
        // Saved loss states recycle their own buffers when the ops drop.
        self.gram.clear();
    }
}

/// Gradients produced by [`Tape::backward`].
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// Gradient of the loss with respect to the given tensor, if any was
    /// propagated to it.
    pub fn get(&self, id: TensorId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Mutable gradient access (gradient clipping rescales in place).
    pub fn get_mut(&mut self, id: TensorId) -> Option<&mut Matrix> {
        self.grads.get_mut(id.0).and_then(Option::as_mut)
    }

    /// Removes and returns a gradient (avoids cloning in optimizers).
    pub fn take(&mut self, id: TensorId) -> Option<Matrix> {
        self.grads.get_mut(id.0).and_then(Option::take)
    }
}

impl Drop for Grads {
    fn drop(&mut self) {
        for g in self.grads.iter_mut() {
            if let Some(mut m) = g.take() {
                crate::arena::recycle(m.take_data());
            }
        }
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a trainable leaf (a parameter binding).
    pub fn leaf(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Leaf, true)
    }

    /// Records a constant (inputs, targets): no gradient is propagated to it.
    pub fn constant(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Constant, false)
    }

    /// The forward value of a tensor.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op, requires: bool) -> TensorId {
        debug_assert!(value.all_finite(), "non-finite forward value");
        self.nodes.push(Node { value, op, requires });
        TensorId(self.nodes.len() - 1)
    }

    fn req(&self, id: TensorId) -> bool {
        self.nodes[id.0].requires
    }

    // ---- linear algebra -------------------------------------------------

    /// `A · B`.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = dense::matmul(self.value(a), self.value(b));
        let r = self.req(a) || self.req(b);
        self.push(v, Op::MatMul(a, b), r)
    }

    /// `A · Bᵀ`.
    pub fn matmul_nt(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = dense::matmul_nt(self.value(a), self.value(b));
        let r = self.req(a) || self.req(b);
        self.push(v, Op::MatMulNT(a, b), r)
    }

    /// Sparse × dense. `fwd` multiplies in the forward pass; `bwd` must be its
    /// transpose (pass the same handle for symmetric matrices).
    pub fn spmm(&mut self, fwd: SharedCsr, bwd: SharedCsr, rhs: TensorId) -> TensorId {
        debug_assert_eq!(fwd.rows(), bwd.cols());
        debug_assert_eq!(fwd.cols(), bwd.rows());
        let v = fwd.matmul_dense(self.value(rhs));
        let r = self.req(rhs);
        self.push(v, Op::SpMM { bwd, rhs }, r)
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = crate::arena::copy_of(self.value(a));
        v.add_assign(self.value(b));
        let r = self.req(a) || self.req(b);
        self.push(v, Op::Add(a, b), r)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = crate::arena::copy_of(self.value(a));
        v.axpy(-1.0, self.value(b));
        let r = self.req(a) || self.req(b);
        self.push(v, Op::Sub(a, b), r)
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.shape(), bv.shape(), "hadamard shape mismatch");
        let mut v = crate::arena::copy_of(av);
        for (x, &y) in v.as_mut_slice().iter_mut().zip(bv.as_slice()) {
            *x *= y;
        }
        let r = self.req(a) || self.req(b);
        self.push(v, Op::Hadamard(a, b), r)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: TensorId, c: f32) -> TensorId {
        let mut v = crate::arena::copy_of(self.value(a));
        v.scale_inplace(c);
        let r = self.req(a);
        self.push(v, Op::Scale(a, c), r)
    }

    /// `a + beta · b` (two nodes; convenience for loss weighting).
    pub fn add_scaled(&mut self, a: TensorId, b: TensorId, beta: f32) -> TensorId {
        let sb = self.scale(b, beta);
        self.add(a, sb)
    }

    /// Broadcast-add a `1 × d` bias to every row of an `n × d` input.
    pub fn add_bias(&mut self, input: TensorId, bias: TensorId) -> TensorId {
        let x = self.value(input);
        let b = self.value(bias);
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), x.cols(), "bias width mismatch");
        let mut v = crate::arena::copy_of(x);
        let br = b.row(0).to_vec();
        for rr in 0..v.rows() {
            for (o, &bb) in v.row_mut(rr).iter_mut().zip(&br) {
                *o += bb;
            }
        }
        let r = self.req(input) || self.req(bias);
        self.push(v, Op::AddBias { input, bias }, r)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).transposed();
        let r = self.req(a);
        self.push(v, Op::Transpose(a), r)
    }

    // ---- activations -----------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| x.max(0.0));
        let r = self.req(a);
        self.push(v, Op::Relu(a), r)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: TensorId, slope: f32) -> TensorId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        let r = self.req(a);
        self.push(v, Op::LeakyRelu(a, slope), r)
    }

    /// Exponential linear unit.
    pub fn elu(&mut self, a: TensorId, alpha: f32) -> TensorId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { alpha * (x.exp() - 1.0) });
        let r = self.req(a);
        self.push(v, Op::Elu(a, alpha), r)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let r = self.req(a);
        self.push(v, Op::Sigmoid(a), r)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(f32::tanh);
        let r = self.req(a);
        self.push(v, Op::Tanh(a), r)
    }

    /// Element-wise exponential (clamped at 60 to keep values finite).
    pub fn exp(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(|x| x.min(60.0).exp());
        let r = self.req(a);
        self.push(v, Op::Exp(a), r)
    }

    // ---- normalization & regularization -----------------------------------

    /// L2-normalizes every row.
    pub fn row_normalize(&mut self, a: TensorId) -> TensorId {
        let x = self.value(a);
        let mut v = crate::arena::copy_of(x);
        let mut norms = Vec::with_capacity(x.rows());
        for rr in 0..x.rows() {
            let n = x.row_norm(rr).max(1e-8);
            norms.push(n);
            for o in v.row_mut(rr) {
                *o /= n;
            }
        }
        let r = self.req(a);
        self.push(v, Op::RowNormalize { input: a, norms }, r)
    }

    /// Standardizes each column to zero mean / unit variance.
    pub fn standardize_cols(&mut self, a: TensorId, eps: f32) -> TensorId {
        let x = self.value(a);
        let (n, d) = x.shape();
        assert!(n >= 2, "standardize needs at least two rows");
        let mut means = vec![0.0f32; d];
        for rr in 0..n {
            for (m, &v) in means.iter_mut().zip(x.row(rr)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n as f32;
        }
        let mut vars = vec![0.0f32; d];
        for rr in 0..n {
            for ((s, &v), &m) in vars.iter_mut().zip(x.row(rr)).zip(&means) {
                let c = v - m;
                *s += c * c;
            }
        }
        let stds: Vec<f32> = vars.iter().map(|&s| (s / n as f32 + eps).sqrt()).collect();
        let mut v = crate::arena::copy_of(x);
        for rr in 0..n {
            for ((o, &m), &s) in v.row_mut(rr).iter_mut().zip(&means).zip(&stds) {
                *o = (*o - m) / s;
            }
        }
        let r = self.req(a);
        self.push(v, Op::StandardizeCols { input: a, stds }, r)
    }

    /// Inverted dropout with a caller-supplied mask whose entries are `0` or
    /// `1/(1−p)`.
    pub fn dropout(&mut self, a: TensorId, mask: Arc<Vec<f32>>) -> TensorId {
        let x = self.value(a);
        assert_eq!(mask.len(), x.len(), "dropout mask length mismatch");
        let mut v = crate::arena::copy_of(x);
        for (o, &m) in v.as_mut_slice().iter_mut().zip(mask.iter()) {
            *o *= m;
        }
        let r = self.req(a);
        self.push(v, Op::Dropout { input: a, mask }, r)
    }

    /// Zeroes the listed rows (feature masking).
    pub fn mask_rows(&mut self, a: TensorId, rows: Vec<usize>) -> TensorId {
        let mut v = crate::arena::copy_of(self.value(a));
        for &rr in &rows {
            v.row_mut(rr).fill(0.0);
        }
        let r = self.req(a);
        self.push(v, Op::MaskRows { input: a, rows }, r)
    }

    /// Gathers the listed rows into a new `|rows| × d` matrix.
    pub fn gather_rows(&mut self, a: TensorId, rows: Vec<usize>) -> TensorId {
        let x = self.value(a);
        let in_rows = x.rows();
        let v = x.gather_rows(&rows);
        let r = self.req(a);
        self.push(v, Op::GatherRows { input: a, rows, in_rows }, r)
    }

    /// Horizontal concatenation (multi-head outputs).
    pub fn concat_cols(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "concat of nothing");
        let n = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        // Fully written below (the part widths sum to `total`), so the dirty
        // arena take is safe.
        let mut v = crate::arena::matrix_dirty(n, total);
        let mut off = 0;
        for &p in parts {
            let m = self.value(p);
            assert_eq!(m.rows(), n, "concat row mismatch");
            for rr in 0..n {
                v.row_mut(rr)[off..off + m.cols()].copy_from_slice(m.row(rr));
            }
            off += m.cols();
        }
        let r = parts.iter().any(|&p| self.req(p));
        self.push(v, Op::ConcatCols(parts.to_vec()), r)
    }

    // ---- reductions -------------------------------------------------------

    /// Column means over all rows → `1 × d` (whole-graph read-out).
    pub fn mean_rows(&mut self, a: TensorId) -> TensorId {
        let x = self.value(a);
        let (n, d) = x.shape();
        let mut v = crate::arena::matrix_zeroed(1, d);
        for rr in 0..n {
            for (o, &xv) in v.row_mut(0).iter_mut().zip(x.row(rr)) {
                *o += xv;
            }
        }
        v.scale_inplace(1.0 / n as f32);
        let r = self.req(a);
        self.push(v, Op::MeanRows(a), r)
    }

    /// Per-segment column means → `num_segments × d` (batched graph
    /// read-out; `segments[r]` is the graph id of row `r`).
    pub fn segment_mean(
        &mut self,
        a: TensorId,
        segments: Arc<Vec<u32>>,
        num_segments: usize,
    ) -> TensorId {
        let x = self.value(a);
        assert_eq!(segments.len(), x.rows(), "segment length mismatch");
        let d = x.cols();
        let mut v = crate::arena::matrix_zeroed(num_segments, d);
        let mut counts = vec![0.0f32; num_segments];
        for (rr, &s) in segments.iter().enumerate() {
            let s = s as usize;
            assert!(s < num_segments, "segment id out of range");
            counts[s] += 1.0;
            for (o, &xv) in v.row_mut(s).iter_mut().zip(x.row(rr)) {
                *o += xv;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > 0.0 {
                for o in v.row_mut(s) {
                    *o /= c;
                }
            }
        }
        let r = self.req(a);
        self.push(v, Op::SegmentMean { input: a, segments, counts }, r)
    }

    /// Sum of all entries → `1 × 1`.
    pub fn sum_all(&mut self, a: TensorId) -> TensorId {
        let v = Matrix::scalar(self.value(a).sum());
        let r = self.req(a);
        self.push(v, Op::SumAll(a), r)
    }

    /// Mean of all entries → `1 × 1`.
    pub fn mean_all(&mut self, a: TensorId) -> TensorId {
        let v = Matrix::scalar(self.value(a).mean());
        let r = self.req(a);
        self.push(v, Op::MeanAll(a), r)
    }

    /// Squared Frobenius norm → `1 × 1`.
    pub fn frob_sq(&mut self, a: TensorId) -> TensorId {
        let v = Matrix::scalar(self.value(a).frob_sq());
        let r = self.req(a);
        self.push(v, Op::FrobSq(a), r)
    }

    // ---- losses ------------------------------------------------------------

    /// Mean softmax cross-entropy of `labels` over the selected `rows`.
    pub fn softmax_ce(
        &mut self,
        logits: TensorId,
        rows: Vec<usize>,
        labels: Vec<usize>,
    ) -> TensorId {
        let (loss, saved) = softmax_ce::forward(self.value(logits), rows, labels);
        let r = self.req(logits);
        self.push(Matrix::scalar(loss), Op::SoftmaxCe { logits, saved }, r)
    }

    /// Mean binary cross-entropy with logits against constant targets.
    pub fn bce_with_logits(&mut self, logits: TensorId, targets: Arc<Matrix>) -> TensorId {
        let l = self.value(logits);
        assert_eq!(l.shape(), targets.shape(), "bce target shape mismatch");
        let mut loss = 0.0f64;
        for (&x, &t) in l.as_slice().iter().zip(targets.as_slice()) {
            loss += (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln()) as f64;
        }
        let loss = (loss / l.len() as f64) as f32;
        let r = self.req(logits);
        self.push(Matrix::scalar(loss), Op::BceWithLogits { logits, targets }, r)
    }

    /// Scaled cosine error over masked rows (GraphMAE / GCMAE Eq. 11).
    pub fn sce_loss(
        &mut self,
        pred: TensorId,
        target: Arc<Matrix>,
        rows: Vec<usize>,
        gamma: f32,
    ) -> TensorId {
        let (loss, saved) = sce::forward(self.value(pred), target, rows, gamma);
        let r = self.req(pred);
        self.push(Matrix::scalar(loss), Op::Sce { pred, saved }, r)
    }

    /// Symmetric InfoNCE between two views (GCMAE Eqs. 14–15). Similarity
    /// products go through the tape's step-scoped [`GramCache`].
    pub fn info_nce(&mut self, u: TensorId, v: TensorId, tau: f32) -> TensorId {
        let (loss, saved) = {
            let Tape { ref nodes, ref mut gram } = *self;
            infonce::forward_with(&nodes[u.0].value, &nodes[v.0].value, tau, gram)
        };
        let r = self.req(u) || self.req(v);
        self.push(Matrix::scalar(loss), Op::InfoNce { u, v, saved: Box::new(saved) }, r)
    }

    /// Adjacency-matrix reconstruction loss (GCMAE Eqs. 16–19). Returns the
    /// scalar node and the per-component values for logging.
    pub fn adj_recon(
        &mut self,
        z: TensorId,
        adj: SharedCsr,
        weights: adj_recon::Weights,
    ) -> (TensorId, adj_recon::Components) {
        let (loss, comps, saved) = {
            let Tape { ref nodes, ref mut gram } = *self;
            adj_recon::forward_with(&nodes[z.0].value, adj, weights, gram)
        };
        let r = self.req(z);
        let id = self.push(Matrix::scalar(loss), Op::AdjRecon { z, saved: Box::new(saved) }, r);
        (id, comps)
    }

    /// Symmetric InfoNCE with per-anchor sampled negatives — O(n·k·d)
    /// instead of O(n²·d). `neg` is a row-major `n × k` id table (anchor `i`
    /// owns `neg[i*k..(i+1)*k]`), typically drawn by
    /// `gcmae_graph::sampling::negative_table` from the per-epoch RNG
    /// stream; ids equal to their anchor are skipped and counted.
    pub fn info_nce_sampled(
        &mut self,
        u: TensorId,
        v: TensorId,
        tau: f32,
        k: usize,
        neg: &[u32],
    ) -> TensorId {
        let (loss, saved) =
            sampled::info_nce_forward(&self.nodes[u.0].value, &self.nodes[v.0].value, tau, k, neg);
        let r = self.req(u) || self.req(v);
        self.push(Matrix::scalar(loss), Op::InfoNceSampled { u, v, saved: Box::new(saved) }, r)
    }

    /// Adjacency reconstruction with sampled non-edges — positives are the
    /// true edges (O(nnz·d)), negatives the valid entries of the `n × k` id
    /// table `neg` (anchors and true neighbors are skipped and counted).
    pub fn adj_recon_sampled(
        &mut self,
        z: TensorId,
        adj: SharedCsr,
        weights: adj_recon::Weights,
        k: usize,
        neg: &[u32],
    ) -> (TensorId, adj_recon::Components) {
        let (loss, comps, saved) =
            sampled::adj_recon_forward(&self.nodes[z.0].value, adj, weights, k, neg);
        let r = self.req(z);
        let id =
            self.push(Matrix::scalar(loss), Op::AdjReconSampled { z, saved: Box::new(saved) }, r);
        (id, comps)
    }

    /// Hinge variance discrimination loss (GCMAE Eq. 20).
    pub fn variance_hinge(&mut self, h: TensorId, eps: f32) -> TensorId {
        let (loss, saved) = variance::forward(self.value(h), eps);
        let r = self.req(h);
        self.push(Matrix::scalar(loss), Op::VarianceHinge { input: h, saved }, r)
    }

    /// Fused single-head GAT aggregation.
    pub fn gat(
        &mut self,
        h: TensorId,
        a_src: TensorId,
        a_dst: TensorId,
        graph: SharedCsr,
        neg_slope: f32,
    ) -> TensorId {
        let (v, saved) =
            gat::forward(self.value(h), self.value(a_src), self.value(a_dst), graph, neg_slope);
        let r = self.req(h) || self.req(a_src) || self.req(a_dst);
        self.push(v, Op::Gat { h, a_src, a_dst, saved: Box::new(saved) }, r)
    }

    // ---- backward ----------------------------------------------------------

    /// Runs the reverse sweep from a scalar `loss` node and returns all
    /// accumulated gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not `1 × 1`.
    pub fn backward(&self, loss: TensorId) -> Grads {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward needs a scalar loss");
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::scalar(1.0));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires {
                grads[i] = None;
                continue;
            }
            let Some(g) = grads[i].take() else { continue };
            crate::backward::step(self, i, &g, &mut grads);
            grads[i] = Some(g);
        }
        Grads { grads }
    }
}
