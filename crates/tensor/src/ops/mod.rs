//! Fused operation kernels with analytic backward passes.
//!
//! Each module exposes a `forward` returning `(value, Saved)` and a
//! `backward` consuming the saved state. Keeping these separate from the tape
//! makes every kernel unit-testable in isolation; the end-to-end gradients are
//! additionally verified against central finite differences in
//! `tests/gradcheck.rs`.

pub mod adj_recon;
pub mod finite;
pub mod gat;
pub mod infonce;
pub mod sampled;
pub mod sce;
pub mod softmax_ce;
pub mod variance;
