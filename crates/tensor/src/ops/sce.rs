//! Scaled cosine error (SCE), the feature-reconstruction loss of GraphMAE and
//! GCMAE (paper Eq. 11):
//!
//! `L_SCE = (1/|Ṽ|) Σ_{v_i ∈ Ṽ} (1 − cos(x_i, z_i))^γ`, with `γ > 1`.

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::parallel::{par_rows, RowTable};
use gcmae_obs::{kernel_span, KernelMetrics};

const EPS: f32 = 1e-8;

static SCE_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.sce.ns",
    calls: "kernel.sce.calls",
    flops: "kernel.sce.flops",
};

/// State saved by the forward pass for the backward pass.
pub struct Saved {
    target: Arc<Matrix>,
    rows: Vec<usize>,
    gamma: f32,
    /// Per masked row: (cosine, ‖x‖, ‖z‖).
    cached: Vec<(f32, f32, f32)>,
}

/// Computes the SCE loss of `pred` against `target` over the given rows.
///
/// # Panics
/// Panics if shapes differ or `rows` is empty.
pub fn forward(pred: &Matrix, target: Arc<Matrix>, rows: Vec<usize>, gamma: f32) -> (f32, Saved) {
    assert_eq!(pred.shape(), target.shape(), "SCE shape mismatch");
    assert!(!rows.is_empty(), "SCE needs at least one masked row");
    assert!(gamma >= 1.0, "SCE gamma must be >= 1");
    // Masked rows are independent: each computes its cached (cos, ‖x‖, ‖z‖)
    // triple and loss partial in parallel; partials are reduced sequentially
    // in list order, keeping the loss bit-identical for any thread count.
    let m = rows.len();
    let _span = kernel_span(
        &SCE_METRICS,
        (m as u64).saturating_mul(3 * pred.cols() as u64 + 16),
    );
    let mut cached = vec![(0.0f32, 0.0f32, 0.0f32); m];
    let mut row_loss = vec![0.0f64; m];
    {
        let cached_rows = RowTable::new(&mut cached, 1);
        let loss_rows = RowTable::new(&mut row_loss, 1);
        let d = pred.cols();
        par_rows(m, 3 * d + 16, |i| {
            let r = rows[i];
            let x = target.row(r);
            let z = pred.row(r);
            let xn = norm(x).max(EPS);
            let zn = norm(z).max(EPS);
            let cos = dot(x, z) / (xn * zn);
            // SAFETY: each list position is visited by exactly one
            // participant.
            unsafe {
                cached_rows.row_mut(i)[0] = (cos, xn, zn);
                loss_rows.row_mut(i)[0] = ((1.0 - cos).max(0.0) as f64).powf(gamma as f64);
            }
        });
    }
    let loss = (row_loss.iter().sum::<f64>() / m as f64) as f32;
    (
        loss,
        Saved {
            target,
            rows,
            gamma,
            cached,
        },
    )
}

/// Gradient of the loss with respect to `pred`, scaled by the upstream scalar
/// gradient `gout`. Returns a dense matrix shaped like `pred`.
pub fn backward(saved: &Saved, pred: &Matrix, gout: f32) -> Matrix {
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let scale = gout / saved.rows.len() as f32;
    let d = pred.cols();
    let step = |idx: usize, r: usize, g: &mut [f32]| {
        let (cos, xn, zn) = saved.cached[idx];
        let one_minus = (1.0 - cos).max(0.0);
        // d/dcos of (1-cos)^γ = -γ (1-cos)^(γ-1)
        let dcos_coeff = -saved.gamma * one_minus.powf(saved.gamma - 1.0) * scale;
        let x = saved.target.row(r);
        let z = pred.row(r);
        // dcos/dz = x/(‖x‖‖z‖) − cos·z/‖z‖²
        let inv_xz = 1.0 / (xn * zn);
        let inv_zz = cos / (zn * zn);
        for ((gv, &xv), &zv) in g.iter_mut().zip(x).zip(z) {
            *gv += dcos_coeff * (xv * inv_xz - zv * inv_zz);
        }
    };
    // The per-row steps are parallel only when every masked row is distinct
    // (the usual case — mask indices are drawn without replacement);
    // duplicates keep the serial accumulate.
    if d > 0 && all_distinct(&saved.rows, pred.rows()) {
        let grad_rows = RowTable::new(grad.as_mut_slice(), d);
        par_rows(saved.rows.len(), 4 * d, |idx| {
            let r = saved.rows[idx];
            // SAFETY: `rows` is duplicate-free, so each gradient row is
            // written by exactly one participant.
            step(idx, r, unsafe { grad_rows.row_mut(r) });
        });
    } else {
        for (idx, &r) in saved.rows.iter().enumerate() {
            step(idx, r, grad.row_mut(r));
        }
    }
    grad
}

/// `true` when every index in `rows` (all `< n`) appears at most once.
fn all_distinct(rows: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    rows.iter().all(|&r| !std::mem::replace(&mut seen[r], true))
}

/// Row dot through the active kernel backend (sequential scalar sum under
/// Reference — bit-identical to the pre-backend code — FMA lanes under Simd).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::backend::dot(a, b)
}

#[inline]
fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_reconstruction_is_zero() {
        let x = Arc::new(Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.5, 0.5, 0.5]));
        let (loss, _) = forward(&x, x.clone(), vec![0, 1], 2.0);
        assert!(loss.abs() < 1e-10, "loss = {loss}");
    }

    #[test]
    fn orthogonal_rows_give_one() {
        let target = Arc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let pred = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, _) = forward(&pred, target, vec![0], 2.0);
        assert!((loss - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gamma_sharpens_small_errors() {
        let target = Arc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let pred = Matrix::from_vec(1, 2, vec![1.0, 0.3]);
        let (l1, _) = forward(&pred, target.clone(), vec![0], 1.0);
        let (l3, _) = forward(&pred, target, vec![0], 3.0);
        assert!(
            l3 < l1,
            "higher gamma must shrink sub-1 errors: {l3} !< {l1}"
        );
    }

    #[test]
    fn only_masked_rows_get_gradient() {
        let target = Arc::new(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let pred = Matrix::from_vec(2, 2, vec![0.4, 0.6, 0.7, 0.1]);
        let (_, saved) = forward(&pred, target, vec![1], 2.0);
        let grad = backward(&saved, &pred, 1.0);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
        assert!(grad.row(1).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn grad_matches_finite_difference() {
        let target = Arc::new(Matrix::from_vec(2, 3, vec![1.0, 0.2, 0.0, 0.3, 0.9, 0.5]));
        let pred = Matrix::from_vec(2, 3, vec![0.4, 0.6, -0.2, 0.7, 0.1, 0.3]);
        let (_, saved) = forward(&pred, target.clone(), vec![0, 1], 2.0);
        let grad = backward(&saved, &pred, 1.0);
        let h = 1e-3;
        for i in 0..pred.len() {
            let mut p = pred.clone();
            p.as_mut_slice()[i] += h;
            let (lp, _) = forward(&p, target.clone(), vec![0, 1], 2.0);
            p.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = forward(&p, target.clone(), vec![0, 1], 2.0);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "entry {i}: fd={fd} analytic={}",
                grad.as_slice()[i]
            );
        }
    }
}
