//! Softmax cross-entropy over a subset of rows (the labeled nodes).
//!
//! Used by the supervised GCN/GAT baselines and by the logistic-regression
//! probe that evaluates frozen SSL embeddings.

use crate::matrix::Matrix;
use crate::parallel::{par_rows, RowTable};

/// State saved by the forward pass.
pub struct Saved {
    /// Softmax probabilities for the selected rows (`|rows| × k`).
    probs: Matrix,
    /// Row indices into the logits matrix.
    rows: Vec<usize>,
    /// Class label per selected row.
    labels: Vec<usize>,
}

/// Mean negative log-likelihood of `labels` under row-softmaxed `logits`,
/// restricted to `rows`.
///
/// # Panics
/// Panics if `rows`/`labels` lengths differ, are empty, or any label is out
/// of range.
pub fn forward(logits: &Matrix, rows: Vec<usize>, labels: Vec<usize>) -> (f32, Saved) {
    assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
    assert!(!rows.is_empty(), "cross entropy needs at least one row");
    let k = logits.cols();
    for &y in &labels {
        assert!(y < k, "label {y} out of range for {k} classes");
    }
    // Each selected row owns one probs row and one loss partial; partials are
    // reduced sequentially in selection order, so the loss is bit-identical
    // for any thread count.
    let mut probs = Matrix::zeros(rows.len(), k);
    let mut row_loss = vec![0.0f64; rows.len()];
    if k > 0 {
        let prob_rows = RowTable::new(probs.as_mut_slice(), k);
        let loss_rows = RowTable::new(&mut row_loss, 1);
        par_rows(rows.len(), 4 * k, |i| {
            let (r, y) = (rows[i], labels[i]);
            let row = logits.row(r);
            // Row max through the kernel backend (the Reference path is the
            // exact fold this code used before backends existed).
            let m = crate::backend::row_max(row);
            let mut denom = 0.0f64;
            for &v in row {
                denom += ((v - m) as f64).exp();
            }
            let log_denom = denom.ln() + m as f64;
            // SAFETY: each selection index is visited by exactly one
            // participant.
            unsafe {
                loss_rows.row_mut(i)[0] = log_denom - row[y] as f64;
                let p = prob_rows.row_mut(i);
                for (pv, &v) in p.iter_mut().zip(row) {
                    *pv = (((v - m) as f64).exp() / denom) as f32;
                }
            }
        });
    }
    let loss = (row_loss.iter().sum::<f64>() / rows.len() as f64) as f32;
    (loss, Saved { probs, rows, labels })
}

/// Gradient with respect to the logits (zero outside the selected rows).
pub fn backward(saved: &Saved, logits_shape: (usize, usize), gout: f32) -> Matrix {
    let (n, k) = logits_shape;
    let mut grad = Matrix::zeros(n, k);
    let scale = gout / saved.rows.len() as f32;
    let step = |i: usize, y: usize, g: &mut [f32]| {
        let p = saved.probs.row(i);
        for (c, (gv, &pv)) in g.iter_mut().zip(p).enumerate() {
            *gv += scale * (pv - if c == y { 1.0 } else { 0.0 });
        }
    };
    // Parallel only when the selected rows are distinct (always true for
    // train/validation splits); duplicates keep the serial accumulate.
    if k > 0 && all_distinct(&saved.rows, n) {
        let grad_rows = RowTable::new(grad.as_mut_slice(), k);
        par_rows(saved.rows.len(), 2 * k, |i| {
            // SAFETY: `rows` is duplicate-free, so each gradient row is
            // written by exactly one participant.
            step(i, saved.labels[i], unsafe { grad_rows.row_mut(saved.rows[i]) });
        });
    } else {
        for (i, (&r, &y)) in saved.rows.iter().zip(&saved.labels).enumerate() {
            step(i, y, grad.row_mut(r));
        }
    }
    grad
}

/// `true` when every index in `rows` (all `< n`) appears at most once.
fn all_distinct(rows: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    rows.iter().all(|&r| !std::mem::replace(&mut seen[r], true))
}

/// Predicted class per row of `logits` (argmax).
pub fn predict(logits: &Matrix) -> Vec<usize> {
    (0..logits.rows())
        .map(|r| {
            logits
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_logits_have_low_loss() {
        let logits = Matrix::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]);
        let (loss, _) = forward(&logits, vec![0, 1], vec![0, 1]);
        assert!(loss < 1e-3, "loss = {loss}");
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = forward(&logits, vec![0], vec![2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn unselected_rows_get_no_gradient() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5]);
        let (_, saved) = forward(&logits, vec![1], vec![0]);
        let g = backward(&saved, logits.shape(), 1.0);
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[0.0, 0.0]);
        assert!(g.row(1)[0] < 0.0, "pull true class up");
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Matrix::from_vec(3, 3, vec![0.2, -0.4, 0.1, 1.0, 0.3, -0.2, -0.5, 0.5, 0.0]);
        let rows = vec![0, 2];
        let labels = vec![1, 2];
        let (_, saved) = forward(&logits, rows.clone(), labels.clone());
        let grad = backward(&saved, logits.shape(), 1.0);
        let h = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += h;
            let (a, _) = forward(&lp, rows.clone(), labels.clone());
            lp.as_mut_slice()[i] -= 2.0 * h;
            let (b, _) = forward(&lp, rows.clone(), labels.clone());
            let fd = (a - b) / (2.0 * h);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "entry {i}: fd={fd} analytic={}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn predict_takes_argmax() {
        let logits = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5]);
        assert_eq!(predict(&logits), vec![1, 2]);
    }
}
