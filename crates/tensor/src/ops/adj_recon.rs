//! Adjacency-matrix reconstruction loss (paper Eqs. 16–19):
//! `L_E = ℓ_MSE + ℓ_BCE + ℓ_DIST` over a (sub)graph's node representations.
//!
//! * `ℓ_MSE`  — mean squared error between `σ(z_i·z_j)` and `A_ij`,
//! * `ℓ_BCE`  — binary cross entropy of the same probabilities,
//! * `ℓ_DIST` — relative-distance loss pulling adjacent nodes together
//!   relative to non-adjacent ones.
//!
//! Fidelity notes (see DESIGN.md): the paper applies MSE/BCE directly to
//! `ZZᵀ`; BCE needs probabilities, so we pass the Gram matrix through a
//! sigmoid for both terms, and — because real adjacencies are ~99% zeros —
//! the BCE/MSE are class-balanced (positives and negatives contribute
//! equally), the standard correction without which the objective collapses
//! to "predict no edge". Eq. 18's ratio as printed would push adjacent
//! nodes apart; we use the sign that matches the surrounding text
//! (`ℓ_DIST = log(mean_adj D + ε) − log(mean_nonadj D + ε)`, with per-pair
//! means and an ε floor bounding the gradient). Diagonal pairs are excluded
//! from all three sums.
//!
//! Like `infonce`, the module carries two paths: the production
//! [`forward`] / [`forward_with`] (Gram matrix via the [`GramCache`]'s SYRK
//! self-product, single-branch BCE log, arena-backed coefficient matrix) and
//! the pre-optimization [`forward_reference`] / [`backward_reference`]
//! bit-identity oracle on the naive kernels. The single-branch BCE is exact:
//! with `a ∈ {0, 1}` the reference's `a·ln(pc) + (1−a)·ln(1−pc)` always
//! reduces to one nonzero log plus `±0.0`, which f32 addition absorbs.

use crate::dense::{dot, matmul, matmul_nt_naive, matmul_rowstream};
use crate::gram::GramCache;
use crate::matrix::Matrix;
use crate::parallel::{par_rows, RowTable};
use crate::sparse::SharedCsr;
use gcmae_obs::{kernel_span, KernelMetrics};

/// Flops count the O(n²) pair loop only; the Gram matmul reports under
/// `kernel.matmul` itself.
static ADJ_RECON_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.adj_recon.ns",
    calls: "kernel.adj_recon.calls",
    flops: "kernel.adj_recon.flops",
};

/// Floor inside the relative-distance logs (bounds the gradient).
pub(crate) const DIST_EPS: f32 = 1e-3;
/// Clamp for probabilities inside logs.
pub(crate) const P_CLAMP: f32 = 1e-6;

/// Per-term weights, all `1.0` per Eq. 19; exposed for ablations.
#[derive(Clone, Copy, Debug)]
pub struct Weights {
    /// mse.
    pub mse: f32,
    /// bce.
    pub bce: f32,
    /// dist.
    pub dist: f32,
}

impl Default for Weights {
    fn default() -> Self {
        Self {
            mse: 1.0,
            bce: 1.0,
            dist: 1.0,
        }
    }
}

/// State saved by the forward pass.
pub struct Saved {
    adj: SharedCsr,
    /// Combined `∂(w_mse·ℓ_MSE + w_bce·ℓ_BCE)/∂S_ij` coefficients.
    coeff: Matrix,
    /// Σ of adjacent squared distances (CSR counts each direction once).
    den: f32,
    /// Σ of non-adjacent (i≠j) squared distances.
    num: f32,
    /// Number of adjacent ordered pairs.
    pos_pairs: f32,
    /// Number of non-adjacent ordered pairs.
    neg_pairs: f32,
    w_dist: f32,
}

impl Drop for Saved {
    fn drop(&mut self) {
        crate::arena::recycle(self.coeff.take_data());
    }
}

/// Loss value broken into components (useful for logging and ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct Components {
    /// mse.
    pub mse: f32,
    /// bce.
    pub bce: f32,
    /// dist.
    pub dist: f32,
}

impl Components {
    /// Sum of the three components.
    pub fn total(&self) -> f32 {
        self.mse + self.bce + self.dist
    }
}

/// Computes `L_E` for representations `z` (`n × d`) of a subgraph whose
/// binary adjacency (no self loops, symmetric) is `adj` (`n × n`), using a
/// call-local Gram cache.
pub fn forward(z: &Matrix, adj: SharedCsr, w: Weights) -> (f32, Components, Saved) {
    let mut cache = GramCache::new();
    forward_with(z, adj, w, &mut cache)
}

/// [`forward`] against a caller-owned [`GramCache`], so `Z·Zᵀ` can be shared
/// with other losses in the same step.
pub fn forward_with(
    z: &Matrix,
    adj: SharedCsr,
    w: Weights,
    cache: &mut GramCache,
) -> (f32, Components, Saved) {
    let n = z.rows();
    assert_eq!(adj.rows(), n, "adjacency rows mismatch");
    assert_eq!(adj.cols(), n, "adjacency must be square over the subgraph");
    assert!(n >= 2, "adjacency reconstruction needs >= 2 nodes");
    let _span = kernel_span(&ADJ_RECON_METRICS, 16 * (n as u64).saturating_mul(n as u64));

    // SYRK self-product through the shared cache (half the matmul flops).
    let s = cache.nt(z, z);
    let pairs = (n * (n - 1)) as f32;
    // class-balanced weights: each class contributes half the loss
    let pos_pairs = (adj.nnz() as f32).max(1.0);
    let neg_pairs = (pairs - adj.nnz() as f32).max(1.0);
    let w_pos = 0.5 / pos_pairs;
    let w_neg = 0.5 / neg_pairs;

    // Row-parallel pair loop: row i owns coeff row i plus its own mse/bce
    // partial; partials are reduced sequentially in row order afterwards, so
    // the result is bit-identical for any thread count.
    //
    // `coeff` comes dirty from the arena: the loop writes every off-diagonal
    // entry and the diagonal is zeroed explicitly (the reference relies on
    // `Matrix::zeros`; an explicit `0.0` store is the same bits).
    let mut coeff = crate::arena::matrix_dirty(n, n);
    let mut row_mse = vec![0.0f64; n];
    let mut row_bce = vec![0.0f64; n];
    {
        let coeff_rows = RowTable::new(coeff.as_mut_slice(), n);
        let mse_rows = RowTable::new(&mut row_mse, 1);
        let bce_rows = RowTable::new(&mut row_bce, 1);
        // sigmoid + one log per pair ≈ 16 flops
        par_rows(n, 16 * n, |i| {
            // SAFETY: each row index is visited by exactly one participant.
            let coeff_row = unsafe { coeff_rows.row_mut(i) };
            let (adj_cols, _) = adj.row(i);
            let s_row = s.row(i);
            let mut mse_i = 0.0f64;
            let mut bce_i = 0.0f64;
            let mut next = 0usize;
            coeff_row[i] = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                // advance over the sorted adjacency row to test membership in O(deg)
                while next < adj_cols.len() && (adj_cols[next] as usize) < j {
                    next += 1;
                }
                let a = if next < adj_cols.len() && adj_cols[next] as usize == j {
                    1.0
                } else {
                    0.0
                };
                let wc = if a == 1.0 { w_pos } else { w_neg };
                let p = sigmoid(s_row[j]);
                let pc = p.clamp(P_CLAMP, 1.0 - P_CLAMP);
                mse_i += (wc * (p - a) * (p - a)) as f64;
                // Single-branch BCE: only the log the label selects. The
                // clamp keeps both logs finite and nonzero, so dropping the
                // zero-weighted one is bit-identical to the reference sum.
                let ln_term = if a == 1.0 { pc.ln() } else { (1.0 - pc).ln() };
                bce_i += (-wc * ln_term) as f64;
                // dℓ/dS = [w_mse·2(p−a) + w_bce·(p−a)] · p(1−p) · wc
                // (BCE with logits derivative is exactly p − a.)
                let dmse = w.mse * 2.0 * (p - a) * p * (1.0 - p);
                let dbce = w.bce * (p - a);
                coeff_row[j] = (dmse + dbce) * wc;
            }
            unsafe {
                mse_rows.row_mut(i)[0] = mse_i;
                bce_rows.row_mut(i)[0] = bce_i;
            }
        });
    }
    let mse = row_mse.iter().sum::<f64>() as f32;
    let bce = row_bce.iter().sum::<f64>() as f32;

    let (den, num) = distance_sums(z, &adj);
    let den_mean = den / pos_pairs;
    let num_mean = num / neg_pairs;
    let dist = (den_mean + DIST_EPS).ln() - (num_mean + DIST_EPS).ln();

    let comps = Components {
        mse: w.mse * mse,
        bce: w.bce * bce,
        dist: w.dist * dist,
    };
    (
        comps.total(),
        comps,
        Saved {
            adj,
            coeff,
            den,
            num,
            pos_pairs,
            neg_pairs,
            w_dist: w.dist,
        },
    )
}

/// Adjacent / non-adjacent squared-distance sums.
/// Σ over all pairs of `‖z_i−z_j‖²` is `2n·Σ‖z_i‖² − 2‖Σz‖²`.
fn distance_sums(z: &Matrix, adj: &SharedCsr) -> (f32, f32) {
    let n = z.rows();
    let mut sq_sum = 0.0f32;
    let mut col_sum = vec![0.0f32; z.cols()];
    for r in 0..n {
        let row = z.row(r);
        sq_sum += dot(row, row);
        for (c, &v) in col_sum.iter_mut().zip(row) {
            *c += v;
        }
    }
    let all = 2.0 * n as f32 * sq_sum - 2.0 * dot(&col_sum, &col_sum);
    // Adjacent squared distances, row-parallel with a sequential reduction.
    let mut row_den = vec![0.0f32; n];
    {
        let den_rows = RowTable::new(&mut row_den, 1);
        let avg_deg = (adj.nnz() / n.max(1)).max(1);
        par_rows(n, 3 * avg_deg * z.cols(), |i| {
            let (adj_cols, _) = adj.row(i);
            let zi = z.row(i);
            let mut d_i = 0.0f32;
            for &j in adj_cols {
                let zj = z.row(j as usize);
                let mut d = 0.0f32;
                for (&a, &b) in zi.iter().zip(zj) {
                    d += (a - b) * (a - b);
                }
                d_i += d;
            }
            unsafe { den_rows.row_mut(i)[0] = d_i };
        });
    }
    let den = row_den.iter().sum::<f32>();
    let num = (all - den).max(0.0);
    (den, num)
}

/// Gradient of the total loss with respect to `z`.
pub fn backward(saved: &Saved, z: &Matrix, gout: f32) -> Matrix {
    // MSE + BCE part: dZ = (C + Cᵀ)·Z. The tiled symmetrization avoids
    // materializing Cᵀ (an extra N² buffer plus a strided full-matrix pass).
    let c_sym = saved.coeff.add_transposed();
    let mut grad = matmul(&c_sym, z);
    crate::arena::recycle_matrix(c_sym);
    distance_backward(saved, z, &mut grad);
    grad.scale_inplace(gout);
    grad
}

/// Pre-optimization backward pass on the naive kernels.
pub fn backward_reference(saved: &Saved, z: &Matrix, gout: f32) -> Matrix {
    let c_sym = saved.coeff.add_transposed();
    let mut grad = matmul_rowstream(&c_sym, z);
    distance_backward(saved, z, &mut grad);
    grad.scale_inplace(gout);
    grad
}

/// Adds the distance-term gradient into `grad` (shared by both paths).
fn distance_backward(saved: &Saved, z: &Matrix, grad: &mut Matrix) {
    let n = z.rows();
    let d = z.cols();
    // Distance part: ℓ = log(den/P + ε) − log(num/Q + ε), num = all − den.
    // d/dden = 1/(den + εP) ; d/dnum = −1/(num + εQ).
    // dall/dz_k = 4n·z_k − 4·Σz ;  dden/dz_k = 4(deg_k z_k − Σ_{j∈N(k)} z_j).
    let inv_den = 1.0 / (saved.den + DIST_EPS * saved.pos_pairs);
    let inv_num = 1.0 / (saved.num + DIST_EPS * saved.neg_pairs);
    let g_den = saved.w_dist * (inv_den + inv_num);
    let g_all = saved.w_dist * (-inv_num);
    let mut col_sum = vec![0.0f32; d];
    for r in 0..n {
        for (c, &v) in col_sum.iter_mut().zip(z.row(r)) {
            *c += v;
        }
    }
    let neigh_sum = saved.adj.matmul_dense(z); // row k = Σ_{j∈N(k)} z_j (0/1 weights)
    if d > 0 {
        let grad_rows = RowTable::new(grad.as_mut_slice(), d);
        par_rows(n, 6 * d, |k| {
            let deg = saved.adj.row_nnz(k) as f32;
            let zk = z.row(k);
            let ns = neigh_sum.row(k);
            // SAFETY: each gradient row is written by exactly one participant.
            let gk = unsafe { grad_rows.row_mut(k) };
            for (((g, &zv), &nv), &cs) in gk.iter_mut().zip(zk).zip(ns).zip(&col_sum) {
                let dden = 4.0 * (deg * zv - nv);
                let dall = 4.0 * (n as f32 * zv - cs);
                *g += g_den * dden + g_all * dall;
            }
        });
    }
    crate::arena::recycle_matrix(neigh_sum);
}

/// Pre-optimization forward pass, verbatim on the naive kernels: the
/// bit-identity oracle and uncached-timing baseline for [`forward`].
pub fn forward_reference(z: &Matrix, adj: SharedCsr, w: Weights) -> (f32, Components, Saved) {
    let n = z.rows();
    assert_eq!(adj.rows(), n, "adjacency rows mismatch");
    assert_eq!(adj.cols(), n, "adjacency must be square over the subgraph");
    assert!(n >= 2, "adjacency reconstruction needs >= 2 nodes");
    let _span = kernel_span(&ADJ_RECON_METRICS, 16 * (n as u64).saturating_mul(n as u64));

    let s = matmul_nt_naive(z, z);
    let pairs = (n * (n - 1)) as f32;
    let pos_pairs = (adj.nnz() as f32).max(1.0);
    let neg_pairs = (pairs - adj.nnz() as f32).max(1.0);
    let w_pos = 0.5 / pos_pairs;
    let w_neg = 0.5 / neg_pairs;

    let mut coeff = Matrix::zeros(n, n);
    let mut row_mse = vec![0.0f64; n];
    let mut row_bce = vec![0.0f64; n];
    {
        let coeff_rows = RowTable::new(coeff.as_mut_slice(), n);
        let mse_rows = RowTable::new(&mut row_mse, 1);
        let bce_rows = RowTable::new(&mut row_bce, 1);
        // sigmoid + two logs per pair ≈ 16 flops
        par_rows(n, 16 * n, |i| {
            // SAFETY: each row index is visited by exactly one participant.
            let coeff_row = unsafe { coeff_rows.row_mut(i) };
            let (adj_cols, _) = adj.row(i);
            let s_row = s.row(i);
            let mut mse_i = 0.0f64;
            let mut bce_i = 0.0f64;
            let mut next = 0usize;
            for j in 0..n {
                if j == i {
                    continue;
                }
                while next < adj_cols.len() && (adj_cols[next] as usize) < j {
                    next += 1;
                }
                let a = if next < adj_cols.len() && adj_cols[next] as usize == j {
                    1.0
                } else {
                    0.0
                };
                let wc = if a == 1.0 { w_pos } else { w_neg };
                let p = sigmoid(s_row[j]);
                let pc = p.clamp(P_CLAMP, 1.0 - P_CLAMP);
                mse_i += (wc * (p - a) * (p - a)) as f64;
                bce_i += (-wc * (a * pc.ln() + (1.0 - a) * (1.0 - pc).ln())) as f64;
                let dmse = w.mse * 2.0 * (p - a) * p * (1.0 - p);
                let dbce = w.bce * (p - a);
                coeff_row[j] = (dmse + dbce) * wc;
            }
            unsafe {
                mse_rows.row_mut(i)[0] = mse_i;
                bce_rows.row_mut(i)[0] = bce_i;
            }
        });
    }
    let mse = row_mse.iter().sum::<f64>() as f32;
    let bce = row_bce.iter().sum::<f64>() as f32;

    let (den, num) = distance_sums(z, &adj);
    let den_mean = den / pos_pairs;
    let num_mean = num / neg_pairs;
    let dist = (den_mean + DIST_EPS).ln() - (num_mean + DIST_EPS).ln();

    let comps = Components {
        mse: w.mse * mse,
        bce: w.bce * bce,
        dist: w.dist * dist,
    };
    (
        comps.total(),
        comps,
        Saved {
            adj,
            coeff,
            den,
            num,
            pos_pairs,
            neg_pairs,
            w_dist: w.dist,
        },
    )
}

#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn path_graph(n: usize) -> SharedCsr {
        let mut t = vec![];
        for i in 0..n - 1 {
            t.push((i, i + 1, 1.0));
            t.push((i + 1, i, 1.0));
        }
        Arc::new(CsrMatrix::from_triplets(n, n, &t))
    }

    #[test]
    fn good_embeddings_beat_bad_embeddings() {
        // Embeddings aligned with the path structure vs. anti-aligned.
        let adj = path_graph(4);
        let good = Matrix::from_vec(4, 2, vec![2.0, 0.0, 1.5, 0.5, 0.5, 1.5, 0.0, 2.0]);
        let bad = Matrix::from_vec(4, 2, vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 2.0]);
        let (lg, _, _) = forward(&good, adj.clone(), Weights::default());
        let (lb, _, _) = forward(&bad, adj, Weights::default());
        assert!(lg < lb, "structured {lg} !< anti-structured {lb}");
    }

    #[test]
    fn components_respect_weights() {
        let adj = path_graph(3);
        let mut rng = StdRng::seed_from_u64(3);
        let z = Matrix::uniform(3, 2, -1.0, 1.0, &mut rng);
        let (_, c, _) = forward(
            &z,
            adj.clone(),
            Weights {
                mse: 0.0,
                bce: 1.0,
                dist: 0.0,
            },
        );
        assert_eq!(c.mse, 0.0);
        assert_eq!(c.dist, 0.0);
        assert!(c.bce > 0.0);
        let (total, c2, _) = forward(&z, adj, Weights::default());
        assert!((total - c2.total()).abs() < 1e-6);
    }

    #[test]
    fn cached_path_is_bit_identical_to_reference() {
        let adj = path_graph(23);
        let mut rng = StdRng::seed_from_u64(31);
        let z = Matrix::uniform(23, 6, -0.9, 0.9, &mut rng);
        let (loss, comps, saved) = forward(&z, adj.clone(), Weights::default());
        let (loss_ref, comps_ref, saved_ref) = forward_reference(&z, adj, Weights::default());
        assert_eq!(loss, loss_ref);
        assert_eq!(comps.mse, comps_ref.mse);
        assert_eq!(comps.bce, comps_ref.bce);
        assert_eq!(comps.dist, comps_ref.dist);
        let g = backward(&saved, &z, 0.8);
        let g_ref = backward_reference(&saved_ref, &z, 0.8);
        assert_eq!(g.as_slice(), g_ref.as_slice());
    }

    #[test]
    fn grad_matches_finite_difference() {
        let adj = path_graph(4);
        let mut rng = StdRng::seed_from_u64(5);
        let z = Matrix::uniform(4, 3, -0.8, 0.8, &mut rng);
        let (_, _, saved) = forward(&z, adj.clone(), Weights::default());
        let grad = backward(&saved, &z, 1.0);
        let h = 1e-3;
        for i in 0..z.len() {
            let mut zp = z.clone();
            zp.as_mut_slice()[i] += h;
            let (lp, _, _) = forward(&zp, adj.clone(), Weights::default());
            zp.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _, _) = forward(&zp, adj.clone(), Weights::default());
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 5e-3,
                "entry {i}: fd={fd} analytic={}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn dist_term_pulls_neighbors_together() {
        // Gradient on an adjacent far-apart pair should point them toward
        // each other when only the distance term is active.
        let adj = path_graph(2);
        let z = Matrix::from_vec(2, 1, vec![-1.0, 1.0]);
        let (_, _, saved) = forward(
            &z,
            adj,
            Weights {
                mse: 0.0,
                bce: 0.0,
                dist: 1.0,
            },
        );
        let g = backward(&saved, &z, 1.0);
        // minimizing: z0 should move toward +, z1 toward −
        assert!(g.as_slice()[0] < 0.0 && g.as_slice()[1] > 0.0);
    }
}
