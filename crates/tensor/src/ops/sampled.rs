//! Sampled O(N·k) losses: negative-sampled InfoNCE and sampled adjacency
//! reconstruction.
//!
//! The dense losses in [`super::infonce`] and [`super::adj_recon`] touch
//! every node pair — O(N²) work that caps training far below million-node
//! graphs. These variants replace the full pair sets with **per-anchor
//! negative tables**: anchor `i` owns `k` candidate ids
//! (`neg[i*k .. (i+1)*k]`, drawn by `gcmae_graph::sampling::negative_table`
//! from the per-epoch RNG stream), so forward and backward are O(N·k·d)
//! (plus O(nnz·d) for the reconstruction positives, which are the true
//! edges and never sampled).
//!
//! Invalid candidates — an id equal to its anchor, or (for reconstruction)
//! a true neighbor — are *skipped and counted*, not re-drawn: the samplers
//! stay rejection-free and the collision rate is exported as
//! `loss.sampler.collisions` next to `loss.negatives_drawn`.
//!
//! ## Determinism
//!
//! The same contract as the dense kernels: bit-identical output at any
//! thread count. The forward pass is anchor-parallel (each anchor owns its
//! coefficient slots and an f64 loss partial, reduced sequentially). The
//! backward scatter — a negative's row receives gradient from every anchor
//! that sampled it — runs over a precomputed **inverse table** (a counting
//! sort of the negative ids), so each output row accumulates its
//! contributions in fixed flat-index order regardless of how rows are
//! distributed over the worker pool.
//!
//! Per-pair similarities go through [`crate::backend::dot`], so the Simd
//! backend accelerates these kernels like the dense ones; scratch and saved
//! buffers are arena-backed.

use crate::matrix::Matrix;
use crate::parallel::{par_row_blocks, RowTable};
use crate::sparse::SharedCsr;
use gcmae_obs::{kernel_span, KernelMetrics};

use super::adj_recon::{sigmoid, Components, Weights, DIST_EPS, P_CLAMP};
use super::infonce::{normalize_backward, normalize_rows};

static INFONCE_SAMPLED_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.infonce_sampled.ns",
    calls: "kernel.infonce_sampled.calls",
    flops: "kernel.infonce_sampled.flops",
};

static ADJ_RECON_SAMPLED_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.adj_recon_sampled.ns",
    calls: "kernel.adj_recon_sampled.calls",
    flops: "kernel.adj_recon_sampled.flops",
};

/// Sentinel marking a skipped (collided) negative slot.
const SKIP: u32 = u32::MAX;

/// Inverse of a cleaned negative table: for each *target* row `r`, the flat
/// slot indices `e = anchor*k + slot` whose negative id is `r`, in
/// increasing `e` order (a counting sort guarantees it). The backward
/// scatter walks `entries[indptr[r]..indptr[r+1]]` with row `r` owned by
/// exactly one pool participant, which makes the accumulation order — and
/// therefore every bit of the gradient — independent of the thread count.
struct Inverse {
    indptr: Vec<u32>,
    entries: Vec<u32>,
}

fn build_inverse(n: usize, ids: &[u32]) -> Inverse {
    let mut indptr = vec![0u32; n + 1];
    for &m in ids {
        if m != SKIP {
            indptr[m as usize + 1] += 1;
        }
    }
    for r in 0..n {
        indptr[r + 1] += indptr[r];
    }
    let mut cursor: Vec<u32> = indptr[..n].to_vec();
    let mut entries = vec![0u32; indptr[n] as usize];
    for (e, &m) in ids.iter().enumerate() {
        if m != SKIP {
            entries[cursor[m as usize] as usize] = e as u32;
            cursor[m as usize] += 1;
        }
    }
    Inverse { indptr, entries }
}

/// Copies the table, replacing self-collisions (`id == anchor`) with
/// [`SKIP`]; returns the cleaned ids and the collision count.
fn clean_self(n: usize, k: usize, neg: &[u32]) -> (Vec<u32>, u64) {
    debug_assert_eq!(neg.len(), n * k);
    let mut out = Vec::with_capacity(neg.len());
    let mut collisions = 0u64;
    for (e, &m) in neg.iter().enumerate() {
        let anchor = (e / k) as u32;
        debug_assert!((m as usize) < n, "negative id out of range");
        if m == anchor {
            collisions += 1;
            out.push(SKIP);
        } else {
            out.push(m);
        }
    }
    (out, collisions)
}

/// Like [`clean_self`] but also skips true neighbors of the anchor (a
/// sampled "negative" that is actually an edge), via binary search over the
/// sorted CSR row.
fn clean_for_adjacency(adj: &SharedCsr, k: usize, neg: &[u32]) -> (Vec<u32>, u64) {
    let n = adj.rows();
    debug_assert_eq!(neg.len(), n * k);
    let mut out = Vec::with_capacity(neg.len());
    let mut collisions = 0u64;
    for (e, &m) in neg.iter().enumerate() {
        let anchor = e / k;
        debug_assert!((m as usize) < n, "negative id out of range");
        let (cols, _) = adj.row(anchor);
        if m as usize == anchor || cols.binary_search(&m).is_ok() {
            collisions += 1;
            out.push(SKIP);
        } else {
            out.push(m);
        }
    }
    (out, collisions)
}

// ---------------------------------------------------------------------------
// Negative-sampled InfoNCE
// ---------------------------------------------------------------------------

/// State saved by [`info_nce_forward`].
pub struct InfoNceSaved {
    un: Matrix,
    vn: Matrix,
    u_norms: Vec<f32>,
    v_norms: Vec<f32>,
    /// Cleaned per-anchor negative ids (`SKIP` = collided slot).
    ids: Vec<u32>,
    k: usize,
    inv: Inverse,
    /// Combined positive-pair coefficient `(p_pos − 1)` summed over both
    /// sides; the positive logit is the same dot for both, so its gradient
    /// always applies `c · v̂_i` to `dû_i` and `c · û_i` to `dv̂_i`.
    c_pos: Vec<f32>,
    /// Per-slot softmax coefficients, one array per (side, candidate-view)
    /// combination; zero at skipped slots.
    g_u_inter: Vec<f32>,
    g_u_intra: Vec<f32>,
    g_v_inter: Vec<f32>,
    g_v_intra: Vec<f32>,
    tau: f32,
}

impl Drop for InfoNceSaved {
    fn drop(&mut self) {
        crate::arena::recycle(self.un.take_data());
        crate::arena::recycle(self.vn.take_data());
        for v in [
            &mut self.u_norms,
            &mut self.v_norms,
            &mut self.c_pos,
            &mut self.g_u_inter,
            &mut self.g_u_intra,
            &mut self.g_v_inter,
            &mut self.g_v_intra,
        ] {
            crate::arena::recycle(std::mem::take(v));
        }
    }
}

/// Symmetric InfoNCE over per-anchor sampled negatives.
///
/// Anchor `i`'s denominator holds its positive `s(ûᵢ, v̂ᵢ)` plus, for each
/// valid sampled id `m`: the inter-view similarity `s(ûᵢ, v̂ₘ)` and the
/// intra-view similarity `s(ûᵢ, ûₘ)` (u-side; the v-side mirrors with the
/// same ids). This is the dense GRACE objective with the `j` sums restricted
/// to the sampled candidate set; the loss is averaged over `2n` sides.
pub fn info_nce_forward(
    u: &Matrix,
    v: &Matrix,
    tau: f32,
    k: usize,
    neg: &[u32],
) -> (f32, InfoNceSaved) {
    assert_eq!(u.shape(), v.shape(), "InfoNCE views must have equal shape");
    assert!(tau > 0.0, "temperature must be positive");
    assert!(k >= 1, "sampled InfoNCE needs k >= 1 negatives per anchor");
    let n = u.rows();
    let d = u.cols();
    assert!(n >= 2, "InfoNCE needs at least two anchors");
    assert_eq!(neg.len(), n * k, "negative table must hold n*k ids");
    let _span = kernel_span(
        &INFONCE_SAMPLED_METRICS,
        (4 * k as u64 + 1) * 2 * (d as u64) * (n as u64),
    );
    gcmae_obs::counter_add("loss.negatives_drawn", (n * k) as u64);

    let (ids, collisions) = clean_self(n, k, neg);
    gcmae_obs::counter_add("loss.sampler.collisions", collisions);
    let inv = build_inverse(n, &ids);

    let (un, u_norms) = normalize_rows(u);
    let (vn, v_norms) = normalize_rows(v);
    let inv_tau = 1.0 / tau;

    let mut c_pos = crate::arena::take_zeroed(n);
    let mut g_u_inter = crate::arena::take_zeroed(n * k);
    let mut g_u_intra = crate::arena::take_zeroed(n * k);
    let mut g_v_inter = crate::arena::take_zeroed(n * k);
    let mut g_v_intra = crate::arena::take_zeroed(n * k);
    // Per-anchor loss partials for both sides; reduced sequentially (u side
    // first, then v) so the sum is bit-identical at any thread count.
    let mut row_loss = vec![0.0f64; 2 * n];
    {
        let (u_loss, v_loss) = row_loss.split_at_mut(n);
        let c_pos_rows = RowTable::new(&mut c_pos, 1);
        let gui_rows = RowTable::new(&mut g_u_inter, k);
        let gua_rows = RowTable::new(&mut g_u_intra, k);
        let gvi_rows = RowTable::new(&mut g_v_inter, k);
        let gva_rows = RowTable::new(&mut g_v_intra, k);
        let ul_rows = RowTable::new(u_loss, 1);
        let vl_rows = RowTable::new(v_loss, 1);
        par_row_blocks(n, (8 * k + 2) * d + 40 * k, |range| {
            let mut z_ui = vec![f32::NEG_INFINITY; k];
            let mut z_ua = vec![f32::NEG_INFINITY; k];
            let mut z_vi = vec![f32::NEG_INFINITY; k];
            let mut z_va = vec![f32::NEG_INFINITY; k];
            for i in range {
                let uni = un.row(i);
                let vni = vn.row(i);
                let z_pos = crate::backend::dot(uni, vni) * inv_tau;
                let slots = &ids[i * k..(i + 1) * k];
                for (s, &m) in slots.iter().enumerate() {
                    if m == SKIP {
                        z_ui[s] = f32::NEG_INFINITY;
                        z_ua[s] = f32::NEG_INFINITY;
                        z_vi[s] = f32::NEG_INFINITY;
                        z_va[s] = f32::NEG_INFINITY;
                    } else {
                        let m = m as usize;
                        z_ui[s] = crate::backend::dot(uni, vn.row(m)) * inv_tau;
                        z_ua[s] = crate::backend::dot(uni, un.row(m)) * inv_tau;
                        z_vi[s] = crate::backend::dot(vni, un.row(m)) * inv_tau;
                        z_va[s] = crate::backend::dot(vni, vn.row(m)) * inv_tau;
                    }
                }
                // SAFETY: each anchor row is visited by exactly one
                // participant.
                unsafe {
                    let (lu, cu) =
                        side_sampled(z_pos, &z_ui, &z_ua, gui_rows.row_mut(i), gua_rows.row_mut(i));
                    let (lv, cv) =
                        side_sampled(z_pos, &z_vi, &z_va, gvi_rows.row_mut(i), gva_rows.row_mut(i));
                    ul_rows.row_mut(i)[0] = lu;
                    vl_rows.row_mut(i)[0] = lv;
                    c_pos_rows.row_mut(i)[0] = cu + cv;
                }
            }
        });
    }
    let loss = (row_loss.iter().sum::<f64>() / (2 * n) as f64) as f32;
    (
        loss,
        InfoNceSaved {
            un,
            vn,
            u_norms,
            v_norms,
            ids,
            k,
            inv,
            c_pos,
            g_u_inter,
            g_u_intra,
            g_v_inter,
            g_v_intra,
            tau,
        },
    )
}

/// One side's sampled softmax cross entropy: logits are the positive plus
/// the valid inter/intra candidates (`NEG_INFINITY` marks skipped slots and
/// contributes `exp → 0`). Returns the f64 loss and the positive coefficient
/// `p_pos − 1`; fills the per-slot coefficient rows with `p_slot` (zero at
/// skips).
fn side_sampled(
    z_pos: f32,
    z_inter: &[f32],
    z_intra: &[f32],
    g_inter: &mut [f32],
    g_intra: &mut [f32],
) -> (f64, f32) {
    let mut m = z_pos;
    for &z in z_inter.iter().chain(z_intra) {
        m = m.max(z);
    }
    let e_pos = ((z_pos - m) as f64).exp();
    let mut denom = e_pos;
    for &z in z_inter.iter().chain(z_intra) {
        if z > f32::NEG_INFINITY {
            denom += ((z - m) as f64).exp();
        }
    }
    let loss = denom.ln() + m as f64 - z_pos as f64;
    for (g, &z) in g_inter.iter_mut().zip(z_inter) {
        *g = if z > f32::NEG_INFINITY {
            (((z - m) as f64).exp() / denom) as f32
        } else {
            0.0
        };
    }
    for (g, &z) in g_intra.iter_mut().zip(z_intra) {
        *g = if z > f32::NEG_INFINITY {
            (((z - m) as f64).exp() / denom) as f32
        } else {
            0.0
        };
    }
    (loss, (e_pos / denom - 1.0) as f32)
}

/// Gradients with respect to the raw (un-normalized) views.
///
/// Two deterministic passes: an anchor pass fully writing each row from its
/// own positive and slot coefficients, then a scatter pass adding the
/// contributions each row receives *as a negative*, ordered by the inverse
/// table. Both are row-parallel with one owner per output row.
pub fn info_nce_backward(saved: &InfoNceSaved, gout: f32) -> (Matrix, Matrix) {
    let n = saved.un.rows();
    let d = saved.un.cols();
    let k = saved.k;
    let scale = gout / (2.0 * n as f32 * saved.tau);

    let mut dun = crate::arena::matrix_dirty(n, d);
    let mut dvn = crate::arena::matrix_dirty(n, d);
    {
        let dun_rows = RowTable::new(dun.as_mut_slice(), d);
        let dvn_rows = RowTable::new(dvn.as_mut_slice(), d);
        par_row_blocks(n, (4 * k + 4) * d, |range| {
            for i in range {
                let uni = saved.un.row(i);
                let vni = saved.vn.row(i);
                let cp = saved.c_pos[i];
                // SAFETY: each anchor row is written by exactly one
                // participant.
                let (du_i, dv_i) = unsafe { (dun_rows.row_mut(i), dvn_rows.row_mut(i)) };
                for ((du, dv), (&uv, &vv)) in
                    du_i.iter_mut().zip(dv_i.iter_mut()).zip(uni.iter().zip(vni))
                {
                    *du = cp * vv;
                    *dv = cp * uv;
                }
                for (s, &m) in saved.ids[i * k..(i + 1) * k].iter().enumerate() {
                    if m == SKIP {
                        continue;
                    }
                    let m = m as usize;
                    let e = i * k + s;
                    let (gui, gua, gvi, gva) = (
                        saved.g_u_inter[e],
                        saved.g_u_intra[e],
                        saved.g_v_inter[e],
                        saved.g_v_intra[e],
                    );
                    let (un_m, vn_m) = (saved.un.row(m), saved.vn.row(m));
                    for (t, (du, dv)) in du_i.iter_mut().zip(dv_i.iter_mut()).enumerate() {
                        // u-side: s(ûᵢ,v̂ₘ) and s(ûᵢ,ûₘ); v-side mirrors.
                        *du += gui * vn_m[t] + gua * un_m[t];
                        *dv += gvi * un_m[t] + gva * vn_m[t];
                    }
                }
            }
        });
    }
    {
        // Scatter: row r receives, in fixed flat order, the gradient of
        // every similarity in which it was the sampled candidate.
        let dun_rows = RowTable::new(dun.as_mut_slice(), d);
        let dvn_rows = RowTable::new(dvn.as_mut_slice(), d);
        let avg = (saved.inv.entries.len() / n.max(1)).max(1);
        par_row_blocks(n, 4 * avg * d, |range| {
            for r in range {
                let lo = saved.inv.indptr[r] as usize;
                let hi = saved.inv.indptr[r + 1] as usize;
                if lo == hi {
                    continue;
                }
                // SAFETY: each target row is owned by exactly one
                // participant; anchor rows were finalized in the previous
                // (barrier-separated) pass.
                let (du_r, dv_r) = unsafe { (dun_rows.row_mut(r), dvn_rows.row_mut(r)) };
                for &e in &saved.inv.entries[lo..hi] {
                    let e = e as usize;
                    let i = e / k;
                    let (gui, gua, gvi, gva) = (
                        saved.g_u_inter[e],
                        saved.g_u_intra[e],
                        saved.g_v_inter[e],
                        saved.g_v_intra[e],
                    );
                    let (un_i, vn_i) = (saved.un.row(i), saved.vn.row(i));
                    for (t, (du, dv)) in du_r.iter_mut().zip(dv_r.iter_mut()).enumerate() {
                        // d s(ûᵢ,ûₘ)/dûₘ = ûᵢ, d s(v̂ᵢ,ûₘ)/dûₘ = v̂ᵢ, etc.
                        *du += gua * un_i[t] + gvi * vn_i[t];
                        *dv += gui * un_i[t] + gva * vn_i[t];
                    }
                }
            }
        });
    }
    dun.scale_inplace(scale);
    dvn.scale_inplace(scale);
    let du = normalize_backward(&dun, &saved.un, &saved.u_norms);
    let dv = normalize_backward(&dvn, &saved.vn, &saved.v_norms);
    crate::arena::recycle_matrix(dun);
    crate::arena::recycle_matrix(dvn);
    (du, dv)
}

// ---------------------------------------------------------------------------
// Sampled adjacency reconstruction
// ---------------------------------------------------------------------------

/// State saved by [`adj_recon_forward`].
pub struct AdjReconSaved {
    adj: SharedCsr,
    /// Cleaned negative ids (`SKIP` = anchor or true neighbor).
    ids: Vec<u32>,
    k: usize,
    inv: Inverse,
    /// MSE+BCE coefficient per directed CSR entry.
    pos_coeff: Vec<f32>,
    /// MSE+BCE coefficient per negative slot (zero at skips).
    neg_coeff: Vec<f32>,
    den: f32,
    num: f32,
    pos_pairs: f32,
    neg_pairs: f32,
    w_dist: f32,
}

impl Drop for AdjReconSaved {
    fn drop(&mut self) {
        crate::arena::recycle(std::mem::take(&mut self.pos_coeff));
        crate::arena::recycle(std::mem::take(&mut self.neg_coeff));
    }
}

/// `L_E = ℓ_MSE + ℓ_BCE + ℓ_DIST` with the positive class being every true
/// edge (all directed CSR entries — edges are sparse, so this is O(nnz·d))
/// and the negative class being each anchor's valid sampled ids. The class
/// balance matches the dense loss: positives and negatives each contribute
/// half, now normalized by the *sampled* pair counts, and `ℓ_DIST` compares
/// the mean adjacent squared distance to the mean over sampled non-adjacent
/// pairs.
pub fn adj_recon_forward(
    z: &Matrix,
    adj: SharedCsr,
    w: Weights,
    k: usize,
    neg: &[u32],
) -> (f32, Components, AdjReconSaved) {
    let n = z.rows();
    let d = z.cols();
    assert_eq!(adj.rows(), n, "adjacency rows mismatch");
    assert_eq!(adj.cols(), n, "adjacency must be square over the subgraph");
    assert!(n >= 2, "adjacency reconstruction needs >= 2 nodes");
    assert!(k >= 1, "sampled adjacency reconstruction needs k >= 1");
    assert_eq!(neg.len(), n * k, "negative table must hold n*k ids");
    let nnz = adj.nnz();
    let _span = kernel_span(
        &ADJ_RECON_SAMPLED_METRICS,
        (nnz as u64 + (n * k) as u64) * (2 * d as u64 + 16),
    );
    gcmae_obs::counter_add("loss.negatives_drawn", (n * k) as u64);

    let (ids, collisions) = clean_for_adjacency(&adj, k, neg);
    gcmae_obs::counter_add("loss.sampler.collisions", collisions);
    let inv = build_inverse(n, &ids);
    let accepted = inv.entries.len();

    let pos_pairs = (nnz as f32).max(1.0);
    let neg_pairs = (accepted as f32).max(1.0);
    let w_pos = 0.5 / pos_pairs;
    let w_neg = 0.5 / neg_pairs;

    let mut pos_coeff = crate::arena::take_zeroed(nnz);
    let mut neg_coeff = crate::arena::take_zeroed(n * k);
    let mut row_mse = vec![0.0f64; n];
    let mut row_bce = vec![0.0f64; n];
    // f32 row partials for the distance sums, as in the dense kernel.
    let mut row_den = vec![0.0f32; n];
    let mut row_num = vec![0.0f32; n];
    {
        // The positive coefficients follow the CSR layout (variable row
        // lengths), so they are addressed entry-wise through a unit-row
        // table; each entry still has exactly one writer.
        let pos_rows = RowTable::new(&mut pos_coeff, 1);
        let neg_rows = RowTable::new(&mut neg_coeff, k);
        let mse_rows = RowTable::new(&mut row_mse, 1);
        let bce_rows = RowTable::new(&mut row_bce, 1);
        let den_rows = RowTable::new(&mut row_den, 1);
        let num_rows = RowTable::new(&mut row_num, 1);
        let avg_deg = (nnz / n.max(1)).max(1);
        par_row_blocks(n, (avg_deg + k) * (2 * d + 16), |range| {
            for i in range {
                let zi = z.row(i);
                let (adj_cols, _) = adj.row(i);
                let entry0 = adj.indptr()[i];
                let mut mse_i = 0.0f64;
                let mut bce_i = 0.0f64;
                let mut den_i = 0.0f32;
                let mut num_i = 0.0f32;
                for (o, &j) in adj_cols.iter().enumerate() {
                    let zj = z.row(j as usize);
                    let p = sigmoid(crate::backend::dot(zi, zj));
                    let pc = p.clamp(P_CLAMP, 1.0 - P_CLAMP);
                    mse_i += (w_pos * (p - 1.0) * (p - 1.0)) as f64;
                    bce_i += (-w_pos * pc.ln()) as f64;
                    den_i += sq_dist(zi, zj);
                    // SAFETY: CSR entries partition across anchors; each is
                    // written by exactly one participant.
                    unsafe {
                        pos_rows.row_mut(entry0 + o)[0] =
                            (w.mse * 2.0 * (p - 1.0) * p * (1.0 - p) + w.bce * (p - 1.0)) * w_pos;
                    }
                }
                // SAFETY: each anchor's slot row has exactly one writer.
                let nc = unsafe { neg_rows.row_mut(i) };
                for (s, &m) in ids[i * k..(i + 1) * k].iter().enumerate() {
                    if m == SKIP {
                        nc[s] = 0.0;
                        continue;
                    }
                    let zm = z.row(m as usize);
                    let p = sigmoid(crate::backend::dot(zi, zm));
                    let pc = p.clamp(P_CLAMP, 1.0 - P_CLAMP);
                    mse_i += (w_neg * p * p) as f64;
                    bce_i += (-w_neg * (1.0 - pc).ln()) as f64;
                    num_i += sq_dist(zi, zm);
                    nc[s] = (w.mse * 2.0 * p * p * (1.0 - p) + w.bce * p) * w_neg;
                }
                // SAFETY: one writer per anchor row.
                unsafe {
                    mse_rows.row_mut(i)[0] = mse_i;
                    bce_rows.row_mut(i)[0] = bce_i;
                    den_rows.row_mut(i)[0] = den_i;
                    num_rows.row_mut(i)[0] = num_i;
                }
            }
        });
    }
    let mse = row_mse.iter().sum::<f64>() as f32;
    let bce = row_bce.iter().sum::<f64>() as f32;
    let den = row_den.iter().sum::<f32>();
    let num = row_num.iter().sum::<f32>();

    let dist = (den / pos_pairs + DIST_EPS).ln() - (num / neg_pairs + DIST_EPS).ln();
    let comps = Components {
        mse: w.mse * mse,
        bce: w.bce * bce,
        dist: w.dist * dist,
    };
    (
        comps.total(),
        comps,
        AdjReconSaved {
            adj,
            ids,
            k,
            inv,
            pos_coeff,
            neg_coeff,
            den,
            num,
            pos_pairs,
            neg_pairs,
            w_dist: w.dist,
        },
    )
}

#[inline]
fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += (x - y) * (x - y);
    }
    acc
}

/// Gradient of the sampled reconstruction loss with respect to `z`.
///
/// Positive (edge) pairs need no scatter: the adjacency is symmetric and
/// `c_ij == c_ji` bit-for-bit (the same f32 products in the same order fed
/// through the same scalar pipeline), so row `i` accumulates `2·c_ij·z_j`
/// over its own CSR row. Negative pairs use the anchor pass + inverse-table
/// scatter, like the sampled InfoNCE.
pub fn adj_recon_backward(saved: &AdjReconSaved, z: &Matrix, gout: f32) -> Matrix {
    let n = z.rows();
    let d = z.cols();
    let k = saved.k;
    // dist = w·[ln(den/P + ε) − ln(num/Q + ε)]; den and num are independent
    // sums here (unlike the dense loss, where num = all − den).
    let g_den = saved.w_dist / (saved.den + DIST_EPS * saved.pos_pairs);
    let g_num = -saved.w_dist / (saved.num + DIST_EPS * saved.neg_pairs);

    let neigh_sum = saved.adj.matmul_dense(z);
    let mut dz = crate::arena::matrix_dirty(n, d);
    {
        let dz_rows = RowTable::new(dz.as_mut_slice(), d);
        let avg_deg = (saved.adj.nnz() / n.max(1)).max(1);
        par_row_blocks(n, (avg_deg + k + 2) * 2 * d, |range| {
            for i in range {
                let zi = z.row(i);
                let (adj_cols, _) = saved.adj.row(i);
                let entry0 = saved.adj.indptr()[i];
                let deg = adj_cols.len() as f32;
                let ns = neigh_sum.row(i);
                // SAFETY: each output row is written by exactly one
                // participant.
                let out = unsafe { dz_rows.row_mut(i) };
                // d den/dz_i = 4(deg·z_i − Σ_{j∈N(i)} z_j).
                for ((o, &zv), &nv) in out.iter_mut().zip(zi).zip(ns) {
                    *o = g_den * 4.0 * (deg * zv - nv);
                }
                for (o, &j) in adj_cols.iter().enumerate() {
                    let c2 = 2.0 * saved.pos_coeff[entry0 + o];
                    for (ov, &zv) in out.iter_mut().zip(z.row(j as usize)) {
                        *ov += c2 * zv;
                    }
                }
                for (s, &m) in saved.ids[i * k..(i + 1) * k].iter().enumerate() {
                    if m == SKIP {
                        continue;
                    }
                    let c = saved.neg_coeff[i * k + s];
                    let zm = z.row(m as usize);
                    // pair (i,m): c·z_m from MSE+BCE, 2·g_num·(z_i − z_m)
                    // from the sampled distance term.
                    for ((ov, &ziv), &zmv) in out.iter_mut().zip(zi).zip(zm) {
                        *ov += c * zmv + 2.0 * g_num * (ziv - zmv);
                    }
                }
            }
        });
    }
    {
        let dz_rows = RowTable::new(dz.as_mut_slice(), d);
        let avg = (saved.inv.entries.len() / n.max(1)).max(1);
        par_row_blocks(n, 3 * avg * d, |range| {
            for r in range {
                let lo = saved.inv.indptr[r] as usize;
                let hi = saved.inv.indptr[r + 1] as usize;
                if lo == hi {
                    continue;
                }
                let zr = z.row(r);
                // SAFETY: one owner per target row; the anchor pass is
                // complete (the passes are barrier-separated).
                let out = unsafe { dz_rows.row_mut(r) };
                for &e in &saved.inv.entries[lo..hi] {
                    let e = e as usize;
                    let i = e / k;
                    let c = saved.neg_coeff[e];
                    let zi = z.row(i);
                    for ((ov, &zrv), &ziv) in out.iter_mut().zip(zr).zip(zi) {
                        *ov += c * ziv + 2.0 * g_num * (zrv - ziv);
                    }
                }
            }
        });
    }
    crate::arena::recycle_matrix(neigh_sum);
    dz.scale_inplace(gout);
    dz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn path_graph(n: usize) -> SharedCsr {
        let mut t = vec![];
        for i in 0..n - 1 {
            t.push((i, i + 1, 1.0));
            t.push((i + 1, i, 1.0));
        }
        Arc::new(CsrMatrix::from_triplets(n, n, &t))
    }

    /// Table with ids drawn uniformly; may include collisions on purpose.
    fn random_table(n: usize, k: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * k).map(|_| rng.gen_range(0..n as u32)).collect()
    }

    #[test]
    fn infonce_sampled_identical_views_beat_random() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = Matrix::uniform(12, 5, -1.0, 1.0, &mut rng);
        let w = Matrix::uniform(12, 5, -1.0, 1.0, &mut rng);
        let neg = random_table(12, 4, 3);
        let (aligned, _) = info_nce_forward(&u, &u, 0.5, 4, &neg);
        let (random, _) = info_nce_forward(&u, &w, 0.5, 4, &neg);
        assert!(aligned < random, "aligned {aligned} !< random {random}");
    }

    #[test]
    fn infonce_sampled_grad_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(22);
        let u = Matrix::uniform(6, 3, -1.0, 1.0, &mut rng);
        let v = Matrix::uniform(6, 3, -1.0, 1.0, &mut rng);
        let neg = random_table(6, 3, 7);
        let (_, saved) = info_nce_forward(&u, &v, 0.7, 3, &neg);
        let (du, dv) = info_nce_backward(&saved, 1.0);
        let h = 1e-3;
        for i in 0..u.len() {
            let mut up = u.clone();
            up.as_mut_slice()[i] += h;
            let (lp, _) = info_nce_forward(&up, &v, 0.7, 3, &neg);
            up.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = info_nce_forward(&up, &v, 0.7, 3, &neg);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - du.as_slice()[i]).abs() < 2e-3,
                "du[{i}]: fd={fd} analytic={}",
                du.as_slice()[i]
            );
        }
        for i in 0..v.len() {
            let mut vp = v.clone();
            vp.as_mut_slice()[i] += h;
            let (lp, _) = info_nce_forward(&u, &vp, 0.7, 3, &neg);
            vp.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = info_nce_forward(&u, &vp, 0.7, 3, &neg);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - dv.as_slice()[i]).abs() < 2e-3,
                "dv[{i}]: fd={fd} analytic={}",
                dv.as_slice()[i]
            );
        }
    }

    #[test]
    fn adj_recon_sampled_grad_matches_finite_difference() {
        let adj = path_graph(6);
        let mut rng = StdRng::seed_from_u64(23);
        let z = Matrix::uniform(6, 3, -0.8, 0.8, &mut rng);
        let neg = random_table(6, 3, 9);
        let (_, _, saved) = adj_recon_forward(&z, adj.clone(), Weights::default(), 3, &neg);
        let grad = adj_recon_backward(&saved, &z, 1.0);
        let h = 1e-3;
        for i in 0..z.len() {
            let mut zp = z.clone();
            zp.as_mut_slice()[i] += h;
            let (lp, _, _) = adj_recon_forward(&zp, adj.clone(), Weights::default(), 3, &neg);
            zp.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _, _) = adj_recon_forward(&zp, adj.clone(), Weights::default(), 3, &neg);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 5e-3,
                "entry {i}: fd={fd} analytic={}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn adj_recon_sampled_good_embeddings_beat_bad() {
        let adj = path_graph(4);
        let good = Matrix::from_vec(4, 2, vec![2.0, 0.0, 1.5, 0.5, 0.5, 1.5, 0.0, 2.0]);
        let bad = Matrix::from_vec(4, 2, vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 2.0]);
        let neg = random_table(4, 2, 11);
        let (lg, _, _) = adj_recon_forward(&good, adj.clone(), Weights::default(), 2, &neg);
        let (lb, _, _) = adj_recon_forward(&bad, adj, Weights::default(), 2, &neg);
        assert!(lg < lb, "structured {lg} !< anti-structured {lb}");
    }

    #[test]
    fn collisions_are_counted_not_redrawn() {
        // A table that points every slot at its own anchor: all collisions,
        // loss still finite, zero gradient from the (empty) negative sets.
        let n = 5;
        let k = 2;
        let self_table: Vec<u32> = (0..n * k).map(|e| (e / k) as u32).collect();
        let reg = Arc::new(gcmae_obs::Registry::new());
        gcmae_obs::install(reg.clone());
        let mut rng = StdRng::seed_from_u64(31);
        let u = Matrix::uniform(n, 3, -1.0, 1.0, &mut rng);
        let v = Matrix::uniform(n, 3, -1.0, 1.0, &mut rng);
        let (loss, saved) = info_nce_forward(&u, &v, 0.5, k, &self_table);
        gcmae_obs::uninstall();
        assert!(loss.is_finite());
        let (du, dv) = info_nce_backward(&saved, 1.0);
        assert!(du.as_slice().iter().all(|g| g.is_finite()));
        assert!(dv.as_slice().iter().all(|g| g.is_finite()));
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(nm, _)| nm == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("loss.negatives_drawn"), (n * k) as u64);
        assert_eq!(get("loss.sampler.collisions"), (n * k) as u64);
    }

    #[test]
    fn adjacency_collisions_skip_true_neighbors() {
        // On a path graph, a table pointing anchor i at i+1 collides on the
        // true edge and contributes no negative pairs.
        let n = 4;
        let adj = path_graph(n);
        let table: Vec<u32> = (0..n).map(|i| ((i + 1) % n) as u32).collect();
        let mut rng = StdRng::seed_from_u64(33);
        let z = Matrix::uniform(n, 2, -1.0, 1.0, &mut rng);
        let (loss, comps, saved) = adj_recon_forward(&z, adj, Weights::default(), 1, &table);
        assert!(loss.is_finite() && comps.total().is_finite());
        let g = adj_recon_backward(&saved, &z, 1.0);
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forward_is_deterministic_across_calls() {
        let mut rng = StdRng::seed_from_u64(41);
        let u = Matrix::uniform(20, 6, -1.0, 1.0, &mut rng);
        let v = Matrix::uniform(20, 6, -1.0, 1.0, &mut rng);
        let neg = random_table(20, 5, 13);
        let (l1, s1) = info_nce_forward(&u, &v, 0.4, 5, &neg);
        let (l2, s2) = info_nce_forward(&u, &v, 0.4, 5, &neg);
        assert_eq!(l1.to_bits(), l2.to_bits());
        let (du1, dv1) = info_nce_backward(&s1, 1.0);
        let (du2, dv2) = info_nce_backward(&s2, 1.0);
        assert_eq!(du1.as_slice(), du2.as_slice());
        assert_eq!(dv1.as_slice(), dv2.as_slice());
    }

    #[test]
    fn duplicate_negatives_from_degree_sampling_are_summed() {
        // With-replacement tables may repeat an id within an anchor row;
        // both slots must contribute (the fd check above covers correctness,
        // this pins the structural invariant that gradients stay finite and
        // deterministic).
        let adj = path_graph(5);
        let table: Vec<u32> = vec![3, 3, 4, 4, 0, 0, 1, 1, 2, 2];
        let mut rng = StdRng::seed_from_u64(43);
        let z = Matrix::uniform(5, 2, -1.0, 1.0, &mut rng);
        let (l1, _, s1) = adj_recon_forward(&z, adj.clone(), Weights::default(), 2, &table);
        let (l2, _, s2) = adj_recon_forward(&z, adj, Weights::default(), 2, &table);
        assert_eq!(l1.to_bits(), l2.to_bits());
        let g1 = adj_recon_backward(&s1, &z, 1.0);
        let g2 = adj_recon_backward(&s2, &z, 1.0);
        assert_eq!(g1.as_slice(), g2.as_slice());
    }
}
