//! Fused graph-attention aggregation (one GAT head).
//!
//! Given per-node transformed features `H = X·W` and attention vectors
//! `a_src`, `a_dst` (each `1 × d`), computes for every node `i`
//!
//! ```text
//! e_ij  = LeakyReLU(H_i·a_src + H_j·a_dst)        for j ∈ N(i)
//! α_ij  = softmax_j(e_ij)
//! out_i = Σ_j α_ij · H_j
//! ```
//!
//! The graph is expected to already contain self loops so every node attends
//! to at least itself.

use crate::matrix::Matrix;
use crate::parallel::{par_row_blocks, RowTable};
use crate::sparse::{CsrMatrix, SharedCsr};

/// State saved by the forward pass.
pub struct Saved {
    graph: SharedCsr,
    /// Attention coefficient per stored edge (CSR order).
    alpha: Vec<f32>,
    /// LeakyReLU derivative per stored edge.
    act_deriv: Vec<f32>,
}

impl Drop for Saved {
    fn drop(&mut self) {
        crate::arena::recycle(std::mem::take(&mut self.alpha));
        crate::arena::recycle(std::mem::take(&mut self.act_deriv));
    }
}

/// Forward pass. `graph` is an `n × n` CSR whose stored coordinates are the
/// edges (values ignored); `h` is `n × d`.
pub fn forward(
    h: &Matrix,
    a_src: &Matrix,
    a_dst: &Matrix,
    graph: SharedCsr,
    neg_slope: f32,
) -> (Matrix, Saved) {
    let (n, d) = h.shape();
    assert_eq!(graph.rows(), n, "graph size mismatch");
    assert_eq!(graph.cols(), n, "graph must be square");
    assert_eq!(a_src.shape(), (1, d), "a_src must be 1 x d");
    assert_eq!(a_dst.shape(), (1, d), "a_dst must be 1 x d");

    // Per-node scalar scores as n×1 products through the blocked matmul
    // (parallel, and bit-identical to the previous per-row `dot` loop: the
    // kernel accumulates each output element over k in the same order).
    let s = crate::dense::matmul_nt(h, a_src).into_vec();
    let t = crate::dense::matmul_nt(h, a_dst).into_vec();

    let nnz = graph.nnz();
    let mut alpha = crate::arena::take_zeroed(nnz);
    let mut act_deriv = crate::arena::take_zeroed(nnz);
    let mut out = crate::arena::matrix_zeroed(n, d);
    let indptr = graph.indptr();
    let indices = graph.indices();
    for i in 0..n {
        let (lo, hi_) = (indptr[i], indptr[i + 1]);
        if lo == hi_ {
            continue;
        }
        // raw scores + leaky relu
        let mut m = f32::NEG_INFINITY;
        for e in lo..hi_ {
            let j = indices[e] as usize;
            let raw = s[i] + t[j];
            let (act, deriv) =
                if raw > 0.0 { (raw, 1.0) } else { (neg_slope * raw, neg_slope) };
            alpha[e] = act;
            act_deriv[e] = deriv;
            m = m.max(act);
        }
        // softmax over the neighborhood
        let mut denom = 0.0f32;
        for a in &mut alpha[lo..hi_] {
            *a = (*a - m).exp();
            denom += *a;
        }
        for a in &mut alpha[lo..hi_] {
            *a /= denom;
        }
        // aggregate
        let out_row = out.row_mut(i);
        for e in lo..hi_ {
            let j = indices[e] as usize;
            let a = alpha[e];
            for (o, &v) in out_row.iter_mut().zip(h.row(j)) {
                *o += a * v;
            }
        }
    }
    crate::arena::recycle(s);
    crate::arena::recycle(t);
    (out, Saved { graph, alpha, act_deriv })
}

/// Inference-only forward pass restricted to the listed output rows (no
/// saved state). Row `i` of `out` is bit-identical to row `i` of
/// [`forward`]'s output for every `i` in `rows`; other rows of `out` are left
/// untouched. `h` must hold valid data for every listed row and all of its
/// neighbors.
///
/// Per-node scores are recomputed on demand with the same `dot` kernel the
/// full forward uses, and each row runs the identical max/softmax/aggregate
/// sequence, so restriction never changes the arithmetic. `rows` must be
/// duplicate-free (each listed row has exactly one parallel writer).
pub fn forward_rows(
    h: &Matrix,
    a_src: &Matrix,
    a_dst: &Matrix,
    graph: &CsrMatrix,
    neg_slope: f32,
    rows: &[usize],
    out: &mut Matrix,
) {
    let (n, d) = h.shape();
    assert_eq!(graph.rows(), n, "graph size mismatch");
    assert_eq!(graph.cols(), n, "graph must be square");
    assert_eq!(a_src.shape(), (1, d), "a_src must be 1 x d");
    assert_eq!(a_dst.shape(), (1, d), "a_dst must be 1 x d");
    assert_eq!(out.shape(), (n, d), "output shape mismatch");
    assert!(rows.iter().all(|&r| r < n), "row index out of range");
    if d == 0 {
        return;
    }

    let asr = a_src.row(0);
    let adr = a_dst.row(0);
    let indptr = graph.indptr();
    let indices = graph.indices();
    let row_cost = (graph.nnz() / n.max(1)).max(1).saturating_mul(2 * d);
    let table = RowTable::new(out.as_mut_slice(), d);
    par_row_blocks(rows.len(), row_cost, |range| {
        for &i in &rows[range] {
            // SAFETY: `rows` is duplicate-free and parallel blocks are
            // disjoint, so each listed row has exactly one writer.
            let out_row = unsafe { table.row_mut(i) };
            out_row.fill(0.0);
            let (lo, hi_) = (indptr[i], indptr[i + 1]);
            if lo == hi_ {
                continue;
            }
            let s_i = dot(h.row(i), asr);
            let mut alpha = vec![0.0f32; hi_ - lo];
            let mut m = f32::NEG_INFINITY;
            for (k, e) in (lo..hi_).enumerate() {
                let j = indices[e] as usize;
                let raw = s_i + dot(h.row(j), adr);
                let act = if raw > 0.0 { raw } else { neg_slope * raw };
                alpha[k] = act;
                m = m.max(act);
            }
            let mut denom = 0.0f32;
            for a in &mut alpha {
                *a = (*a - m).exp();
                denom += *a;
            }
            for a in &mut alpha {
                *a /= denom;
            }
            for (k, e) in (lo..hi_).enumerate() {
                let j = indices[e] as usize;
                let a = alpha[k];
                for (o, &v) in out_row.iter_mut().zip(h.row(j)) {
                    *o += a * v;
                }
            }
        }
    });
}

/// Backward pass: gradients with respect to `h`, `a_src`, and `a_dst`.
pub fn backward(
    saved: &Saved,
    h: &Matrix,
    a_src: &Matrix,
    a_dst: &Matrix,
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let (n, d) = h.shape();
    let indptr = saved.graph.indptr();
    let indices = saved.graph.indices();
    let asr = a_src.row(0);
    let adr = a_dst.row(0);

    let mut dh = crate::arena::matrix_zeroed(n, d);
    let mut ds = crate::arena::take_zeroed(n); // grad of per-node source score
    let mut dt = crate::arena::take_zeroed(n); // grad of per-node target score

    for i in 0..n {
        let (lo, hi_) = (indptr[i], indptr[i + 1]);
        if lo == hi_ {
            continue;
        }
        let gi = gout.row(i);
        // dα_ij (direct) = g_i · h_j ; also dh_j += α_ij g_i
        let deg = hi_ - lo;
        let mut dots = vec![0.0f32; deg];
        let mut weighted_sum = 0.0f32;
        for (k, e) in (lo..hi_).enumerate() {
            let j = indices[e] as usize;
            let dj = dot(gi, h.row(j));
            dots[k] = dj;
            weighted_sum += saved.alpha[e] * dj;
            let a = saved.alpha[e];
            for (o, &g) in dh.row_mut(j).iter_mut().zip(gi) {
                *o += a * g;
            }
        }
        // softmax backward then leaky-relu backward
        for (k, e) in (lo..hi_).enumerate() {
            let de = saved.alpha[e] * (dots[k] - weighted_sum);
            let draw = de * saved.act_deriv[e];
            ds[i] += draw;
            dt[indices[e] as usize] += draw;
        }
    }

    // Route score grads into h and the attention vectors.
    let mut da_src = crate::arena::matrix_zeroed(1, d);
    let mut da_dst = crate::arena::matrix_zeroed(1, d);
    for i in 0..n {
        let hi = h.row(i);
        if ds[i] != 0.0 {
            let c = ds[i];
            for ((g, &a), (&hv, das)) in dh
                .row_mut(i)
                .iter_mut()
                .zip(asr)
                .zip(hi.iter().zip(da_src.row_mut(0).iter_mut()))
            {
                *g += c * a;
                *das += c * hv;
            }
        }
        if dt[i] != 0.0 {
            let c = dt[i];
            for ((g, &a), (&hv, dad)) in dh
                .row_mut(i)
                .iter_mut()
                .zip(adr)
                .zip(hi.iter().zip(da_dst.row_mut(0).iter_mut()))
            {
                *g += c * a;
                *dad += c * hv;
            }
        }
    }
    crate::arena::recycle(ds);
    crate::arena::recycle(dt);
    (dh, da_src, da_dst)
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Triangle with self loops.
    fn tri() -> SharedCsr {
        let mut t = vec![];
        for i in 0..3 {
            t.push((i, i, 1.0));
            for j in 0..3 {
                if i != j {
                    t.push((i, j, 1.0));
                }
            }
        }
        Arc::new(CsrMatrix::from_triplets(3, 3, &t))
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = Matrix::uniform(3, 4, -1.0, 1.0, &mut rng);
        let a_src = Matrix::uniform(1, 4, -0.5, 0.5, &mut rng);
        let a_dst = Matrix::uniform(1, 4, -0.5, 0.5, &mut rng);
        let (out, saved) = forward(&h, &a_src, &a_dst, tri(), 0.2);
        // alphas per row sum to 1
        let indptr = saved.graph.indptr();
        for i in 0..3 {
            let s: f32 = saved.alpha[indptr[i]..indptr[i + 1]].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // output stays within the convex hull's bounding box per dimension
        for c in 0..4 {
            let lo = (0..3).map(|r| h[(r, c)]).fold(f32::INFINITY, f32::min);
            let hi = (0..3).map(|r| h[(r, c)]).fold(f32::NEG_INFINITY, f32::max);
            for r in 0..3 {
                assert!(out[(r, c)] >= lo - 1e-5 && out[(r, c)] <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn isolated_with_self_loop_copies_itself() {
        let g = Arc::new(CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]));
        let h = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let a = Matrix::zeros(1, 2);
        let (out, _) = forward(&h, &a, &a, g, 0.2);
        assert!(out.max_abs_diff(&h) < 1e-6);
    }

    #[test]
    fn restricted_forward_matches_full_rows_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = tri();
        let h = Matrix::uniform(3, 5, -1.0, 1.0, &mut rng);
        let a_src = Matrix::uniform(1, 5, -0.5, 0.5, &mut rng);
        let a_dst = Matrix::uniform(1, 5, -0.5, 0.5, &mut rng);
        let (full, _) = forward(&h, &a_src, &a_dst, g.clone(), 0.2);
        let mut out = Matrix::from_fn(3, 5, |_, _| f32::NAN);
        forward_rows(&h, &a_src, &a_dst, &g, 0.2, &[2, 0], &mut out);
        assert_eq!(out.row(0), full.row(0));
        assert_eq!(out.row(2), full.row(2));
        assert!(out.row(1).iter().all(|v| v.is_nan()), "unlisted row must stay untouched");
    }

    #[test]
    fn grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(7);
        let h = Matrix::uniform(3, 3, -1.0, 1.0, &mut rng);
        let a_src = Matrix::uniform(1, 3, -0.5, 0.5, &mut rng);
        let a_dst = Matrix::uniform(1, 3, -0.5, 0.5, &mut rng);
        let g = tri();
        // scalar objective: sum of outputs
        let loss = |h: &Matrix, s: &Matrix, d: &Matrix| forward(h, s, d, g.clone(), 0.2).0.sum();
        let (_, saved) = forward(&h, &a_src, &a_dst, g.clone(), 0.2);
        let gout = Matrix::full(3, 3, 1.0);
        let (dh, dsrc, ddst) = backward(&saved, &h, &a_src, &a_dst, &gout);
        let step = 1e-3;
        let check = |analytic: &Matrix, which: &str, perturb: &dyn Fn(usize, f32) -> f32| {
            for i in 0..analytic.len() {
                let fd = (perturb(i, step) - perturb(i, -step)) / (2.0 * step);
                assert!(
                    (fd - analytic.as_slice()[i]).abs() < 5e-3,
                    "{which}[{i}]: fd={fd} analytic={}",
                    analytic.as_slice()[i]
                );
            }
        };
        check(&dh, "dh", &|i, e| {
            let mut hp = h.clone();
            hp.as_mut_slice()[i] += e;
            loss(&hp, &a_src, &a_dst)
        });
        check(&dsrc, "da_src", &|i, e| {
            let mut sp = a_src.clone();
            sp.as_mut_slice()[i] += e;
            loss(&h, &sp, &a_dst)
        });
        check(&ddst, "da_dst", &|i, e| {
            let mut dp = a_dst.clone();
            dp.as_mut_slice()[i] += e;
            loss(&h, &a_src, &dp)
        });
    }
}
