//! Variance-based discrimination loss (paper Eq. 20).
//!
//! The paper defines `L_Var(h, ε) = sqrt(Var(h) + ε)` and explains the term
//! must keep node embeddings *diverse*; minimizing the expression as printed
//! would do the opposite, so — as argued in DESIGN.md — we implement the
//! VICReg-style hinge that penalizes columns whose standard deviation falls
//! below a target: `L_Var = (1/d) Σ_c max(0, s − sqrt(Var_c(h) + ε))` with
//! target standard deviation `s = 1`.

use crate::matrix::Matrix;

/// Target per-dimension standard deviation.
pub const TARGET_STD: f32 = 1.0;

/// State saved by the forward pass.
pub struct Saved {
    /// Column means.
    means: Vec<f32>,
    /// Per-column `sqrt(var + eps)`.
    stds: Vec<f32>,
    /// Columns whose hinge is active (`std < TARGET_STD`).
    active: Vec<bool>,
}

/// Computes the hinge variance loss over the columns of `h` (`n × d`).
pub fn forward(h: &Matrix, eps: f32) -> (f32, Saved) {
    let (n, d) = h.shape();
    assert!(n >= 2, "variance needs at least two rows");
    let mut means = vec![0.0f32; d];
    for r in 0..n {
        for (m, &v) in means.iter_mut().zip(h.row(r)) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f32;
    }
    let mut vars = vec![0.0f32; d];
    for r in 0..n {
        for ((vv, &v), &m) in vars.iter_mut().zip(h.row(r)).zip(&means) {
            let c = v - m;
            *vv += c * c;
        }
    }
    let mut loss = 0.0f32;
    let mut stds = Vec::with_capacity(d);
    let mut active = Vec::with_capacity(d);
    for vv in &mut vars {
        let std = (*vv / n as f32 + eps).sqrt();
        stds.push(std);
        let hinge = TARGET_STD - std;
        active.push(hinge > 0.0);
        loss += hinge.max(0.0);
    }
    (loss / d as f32, Saved { means, stds, active })
}

/// Gradient of the hinge variance loss with respect to `h`.
pub fn backward(saved: &Saved, h: &Matrix, gout: f32) -> Matrix {
    let (n, d) = h.shape();
    let mut grad = Matrix::zeros(n, d);
    // d/dh_ic of −sqrt(var_c+ε) = −(h_ic − mean_c)/(n·std_c)
    // (the mean's own dependence on h_ic integrates to zero across the column
    // only in expectation; the exact derivative of var_c w.r.t. h_ic is
    // 2(h_ic − mean_c)·(1 − 1/n)/n + cross terms which sum to
    // 2(h_ic − mean_c)/n — the standard centered-variance gradient.)
    let scale = gout / d as f32;
    for r in 0..n {
        let hr = h.row(r);
        let gr = grad.row_mut(r);
        for c in 0..d {
            if saved.active[c] {
                gr[c] = -scale * (hr[c] - saved.means[c]) / (n as f32 * saved.stds[c]);
            }
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn collapsed_embeddings_have_max_loss() {
        let h = Matrix::full(4, 3, 0.7);
        let (loss, _) = forward(&h, 1e-6);
        assert!((loss - TARGET_STD).abs() < 1e-2, "loss = {loss}");
    }

    #[test]
    fn diverse_embeddings_have_zero_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = Matrix::uniform(64, 4, -3.0, 3.0, &mut rng);
        let (loss, _) = forward(&h, 1e-6);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn gradient_pushes_away_from_mean() {
        let h = Matrix::from_vec(2, 1, vec![0.1, -0.1]);
        let (_, saved) = forward(&h, 1e-6);
        let g = backward(&saved, &h, 1.0);
        // loss decreases when rows move apart: grad on the higher row is
        // negative (gradient descent subtracts it, increasing the value)
        assert!(g.as_slice()[0] < 0.0);
        assert!(g.as_slice()[1] > 0.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(9);
        let h = Matrix::uniform(5, 3, -0.4, 0.4, &mut rng);
        let (_, saved) = forward(&h, 1e-4);
        let grad = backward(&saved, &h, 1.0);
        let step = 1e-3;
        for i in 0..h.len() {
            let mut hp = h.clone();
            hp.as_mut_slice()[i] += step;
            let (lp, _) = forward(&hp, 1e-4);
            hp.as_mut_slice()[i] -= 2.0 * step;
            let (lm, _) = forward(&hp, 1e-4);
            let fd = (lp - lm) / (2.0 * step);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "entry {i}: fd={fd} analytic={}",
                grad.as_slice()[i]
            );
        }
    }
}
