//! Vectorized finite-scan kernel.
//!
//! The fault-tolerant training runtime scans every loss term and gradient
//! once per step, so the scan has to be close to free: a single pass that
//! classifies each `f32` by its exponent bits (`NaN`/`±∞` ⇔ all exponent
//! bits set), auto-vectorizes to integer SIMD, and goes parallel through the
//! worker pool once the buffer is large enough to pay for dispatch.
//!
//! Counting is order-independent, so unlike the loss kernels this reduction
//! may use a shared atomic without hurting determinism.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::parallel::par_rows;

/// All-exponent-bits mask: a value is non-finite iff `bits & MASK == MASK`.
const EXP_MASK: u32 = 0x7f80_0000;

/// Entries scanned per parallel block; also the serial-path chunk size that
/// lets the scalar loop vectorize without a per-element branch.
const BLOCK: usize = 8192;

#[inline]
fn non_finite_in(chunk: &[f32]) -> usize {
    // Branch-free per element: counts NaNs and infinities.
    chunk.iter().map(|v| usize::from(v.to_bits() & EXP_MASK == EXP_MASK)).sum()
}

/// Number of non-finite (`NaN` or `±∞`) entries in `data`.
pub fn non_finite_count(data: &[f32]) -> usize {
    let blocks = data.len().div_ceil(BLOCK);
    if blocks <= 1 {
        return non_finite_in(data);
    }
    let total = AtomicUsize::new(0);
    par_rows(blocks, BLOCK, |b| {
        let start = b * BLOCK;
        let end = (start + BLOCK).min(data.len());
        let c = non_finite_in(&data[start..end]);
        if c > 0 {
            total.fetch_add(c, Ordering::Relaxed);
        }
    });
    total.into_inner()
}

/// Index of the first non-finite entry, if any. Same scan as
/// [`non_finite_count`] but keeps the *smallest* offending index so error
/// messages are deterministic at any thread count.
pub fn first_non_finite(data: &[f32]) -> Option<usize> {
    let blocks = data.len().div_ceil(BLOCK);
    let first = AtomicUsize::new(usize::MAX);
    let scan_block = |b: usize| {
        let start = b * BLOCK;
        let end = (start + BLOCK).min(data.len());
        if let Some(off) = data[start..end].iter().position(|v| !v.is_finite()) {
            first.fetch_min(start + off, Ordering::Relaxed);
        }
    };
    if blocks <= 1 {
        scan_block(0);
    } else {
        par_rows(blocks, BLOCK, scan_block);
    }
    match first.into_inner() {
        usize::MAX => None,
        i => Some(i),
    }
}

/// `true` when every entry of `data` is finite.
pub fn all_finite(data: &[f32]) -> bool {
    non_finite_count(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::set_num_threads;

    #[test]
    fn clean_buffer_is_finite() {
        let data = vec![1.0f32; 3 * BLOCK + 17];
        assert!(all_finite(&data));
        assert_eq!(non_finite_count(&data), 0);
        assert_eq!(first_non_finite(&data), None);
    }

    #[test]
    fn counts_nan_and_both_infinities() {
        let mut data = vec![0.5f32; 100];
        data[3] = f32::NAN;
        data[50] = f32::INFINITY;
        data[99] = f32::NEG_INFINITY;
        assert_eq!(non_finite_count(&data), 3);
        assert_eq!(first_non_finite(&data), Some(3));
        assert!(!all_finite(&data));
    }

    #[test]
    fn subnormals_and_extremes_are_finite() {
        let data = [f32::MIN, f32::MAX, f32::MIN_POSITIVE, 1e-45, -0.0, 0.0];
        assert!(all_finite(&data));
    }

    #[test]
    fn empty_buffer_is_finite() {
        assert!(all_finite(&[]));
        assert_eq!(first_non_finite(&[]), None);
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let _g = crate::parallel::TEST_THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let n = 5 * BLOCK + 123;
        let mut data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        data[4 * BLOCK + 7] = f32::NAN;
        data[2 * BLOCK + 9] = f32::INFINITY;
        for threads in [1, 4, 8] {
            set_num_threads(threads);
            assert_eq!(non_finite_count(&data), 2, "threads={threads}");
            assert_eq!(first_non_finite(&data), Some(2 * BLOCK + 9), "threads={threads}");
        }
        set_num_threads(0);
    }
}
