//! Symmetric InfoNCE contrastive loss (paper Eqs. 14–15), GRACE-style:
//! for each positive pair `(u_i, v_i)` the denominator contains the
//! inter-view similarities to every `v_j` and the intra-view similarities to
//! every `u_j (j ≠ i)`, and the loss is averaged over both directions.
//!
//! Two implementations live here:
//!
//! * [`forward`] / [`forward_with`] — the production path. Similarity blocks
//!   come from a [`GramCache`] (self-products via SYRK at half the flops, the
//!   `V̂·Ûᵀ` block as a cached transpose of `Û·V̂ᵀ` instead of a strided
//!   column gather per anchor), the per-anchor softmax stores its `exp`
//!   values in a scratch row and reuses them for the probabilities instead of
//!   recomputing each one, and every scratch matrix is arena-backed.
//! * [`forward_reference`] / [`backward_reference`] — the pre-optimization
//!   algorithm verbatim, on the naive dense kernels. It is the bit-identity
//!   oracle for the production path and the "uncached" baseline in
//!   `bench_kernels`.
//!
//! Every production-path transformation is bit-identical to the reference:
//! raw Gram entries scaled by `1/τ` at read time perform the same single f32
//! multiply as the reference's `scale_inplace` pass, the transposed block
//! copies bits, and a stored `exp` equals a recomputed one.

use crate::dense::{matmul, matmul_nt_naive, matmul_rowstream, matmul_tn, matmul_tn_naive};
use crate::gram::GramCache;
use crate::matrix::Matrix;
use crate::parallel::{par_row_blocks, par_rows, RowTable};
use gcmae_obs::{kernel_span, KernelMetrics};

const EPS: f32 = 1e-8;

/// Flops count the O(n²) anchor loops only; the similarity matmuls report
/// under `kernel.matmul` themselves.
static INFONCE_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.infonce.ns",
    calls: "kernel.infonce.calls",
    flops: "kernel.infonce.flops",
};

/// State saved by the forward pass.
pub struct Saved {
    /// Row-normalized views.
    un: Matrix,
    vn: Matrix,
    /// Row norms of the raw inputs (for the normalization chain rule).
    u_norms: Vec<f32>,
    v_norms: Vec<f32>,
    /// Coefficient matrices `∂L/∂S` for the four similarity blocks
    /// (already including the `−δ_ij` positive term where applicable).
    g_uv: Matrix,
    g_uu: Matrix,
    g_vu: Matrix,
    g_vv: Matrix,
    tau: f32,
}

impl Drop for Saved {
    fn drop(&mut self) {
        for m in [
            &mut self.un,
            &mut self.vn,
            &mut self.g_uv,
            &mut self.g_uu,
            &mut self.g_vu,
            &mut self.g_vv,
        ] {
            crate::arena::recycle(m.take_data());
        }
        crate::arena::recycle(std::mem::take(&mut self.u_norms));
        crate::arena::recycle(std::mem::take(&mut self.v_norms));
    }
}

/// Computes the symmetric InfoNCE loss between two views `u` and `v`
/// (`n × d` each) with temperature `tau`, using a call-local Gram cache.
pub fn forward(u: &Matrix, v: &Matrix, tau: f32) -> (f32, Saved) {
    let mut cache = GramCache::new();
    forward_with(u, v, tau, &mut cache)
}

/// [`forward`] against a caller-owned [`GramCache`], so the similarity
/// products can be shared with other losses in the same step.
pub fn forward_with(u: &Matrix, v: &Matrix, tau: f32, cache: &mut GramCache) -> (f32, Saved) {
    assert_eq!(u.shape(), v.shape(), "InfoNCE views must have equal shape");
    assert!(tau > 0.0, "temperature must be positive");
    let n = u.rows();
    assert!(n >= 2, "InfoNCE needs at least two anchors");
    let _span = kernel_span(&INFONCE_METRICS, 16 * (n as u64).saturating_mul(n as u64));

    let (un, u_norms) = normalize_rows(u);
    let (vn, v_norms) = normalize_rows(v);

    // Raw cosine-similarity blocks; `inv_tau` is applied at read time inside
    // `side_row` (the same single f32 multiply the reference performs in its
    // `scale_inplace` pass, so the scaled values are bit-identical). s_vu is
    // a cache hit: the transpose of s_uv, replacing the reference's strided
    // per-anchor column gather with one contiguous tiled pass.
    let s_uv = cache.nt(&un, &vn);
    let s_uu = cache.nt(&un, &un);
    let s_vv = cache.nt(&vn, &vn);
    let s_vu = cache.nt(&vn, &un);
    let inv_tau = 1.0 / tau;

    let mut g_uv = crate::arena::matrix_dirty(n, n);
    let mut g_uu = crate::arena::matrix_dirty(n, n);
    let mut g_vu = crate::arena::matrix_dirty(n, n);
    let mut g_vv = crate::arena::matrix_dirty(n, n);

    // Both anchor loops are row-parallel: anchor i owns its coefficient rows
    // and a per-row loss partial; the partials are reduced sequentially in
    // anchor order afterwards, so the loss is bit-identical for any thread
    // count. Each anchor costs ~2n exp calls plus a few O(n) passes.
    let mut row_loss = vec![0.0f64; 2 * n];
    {
        let (u_loss, v_loss) = row_loss.split_at_mut(n);
        for (inter, intra, g_inter_m, g_intra_m, loss, cost) in [
            (&s_uv, &s_uu, &mut g_uv, &mut g_uu, u_loss, 8 * n),
            (&s_vu, &s_vv, &mut g_vu, &mut g_vv, v_loss, 9 * n),
        ] {
            let g_inter_rows = RowTable::new(g_inter_m.as_mut_slice(), n);
            let g_intra_rows = RowTable::new(g_intra_m.as_mut_slice(), n);
            let loss_rows = RowTable::new(loss, 1);
            par_row_blocks(n, cost, |range| {
                let mut e_inter = vec![0.0f64; n];
                let mut e_intra = vec![0.0f64; n];
                for i in range {
                    // SAFETY: each anchor row is visited by exactly one
                    // participant.
                    unsafe {
                        loss_rows.row_mut(i)[0] = side_row(
                            i,
                            inter.row(i),
                            intra.row(i),
                            inv_tau,
                            &mut e_inter,
                            &mut e_intra,
                            g_inter_rows.row_mut(i),
                            g_intra_rows.row_mut(i),
                        );
                    }
                }
            });
        }
    }
    let loss = (row_loss.iter().sum::<f64>() / (2 * n) as f64) as f32;
    (
        loss,
        Saved {
            un,
            vn,
            u_norms,
            v_norms,
            g_uv,
            g_uu,
            g_vu,
            g_vv,
            tau,
        },
    )
}

/// One anchor's loss over raw similarity rows (scaled by `inv_tau` at read);
/// fills coefficient rows with `p_j − δ_ij` (inter) and `p_j` for `j ≠ i`
/// (intra), where `p` is the softmax over the concatenated logits with the
/// intra self-term removed. The denominator pass stores each `exp` in the
/// caller's scratch rows and the probability pass reads them back — a stored
/// `exp` is bit-identical to the reference's recomputed one.
#[allow(clippy::too_many_arguments)]
fn side_row(
    i: usize,
    inter: &[f32],
    intra: &[f32],
    inv_tau: f32,
    e_inter: &mut [f64],
    e_intra: &mut [f64],
    g_inter: &mut [f32],
    g_intra: &mut [f32],
) -> f64 {
    let n = inter.len();
    let mut m = f32::NEG_INFINITY;
    for &x in inter {
        m = m.max(x * inv_tau);
    }
    for (j, &x) in intra.iter().enumerate() {
        if j != i {
            m = m.max(x * inv_tau);
        }
    }
    let mut denom = 0.0f64;
    for (e, &x) in e_inter.iter_mut().zip(inter) {
        *e = ((x * inv_tau - m) as f64).exp();
        denom += *e;
    }
    for (j, (e, &x)) in e_intra.iter_mut().zip(intra).enumerate() {
        if j != i {
            *e = ((x * inv_tau - m) as f64).exp();
            denom += *e;
        }
    }
    let log_denom = denom.ln() + m as f64;
    let loss = log_denom - (inter[i] * inv_tau) as f64;
    for j in 0..n {
        let p = (e_inter[j] / denom) as f32;
        g_inter[j] = if j == i { p - 1.0 } else { p };
        // e_intra[i] is stale scratch from a previous anchor; the self term
        // is forced to zero and never reads it.
        g_intra[j] = if j == i {
            0.0
        } else {
            (e_intra[j] / denom) as f32
        };
    }
    loss
}

/// Gradients with respect to the raw (un-normalized) views.
pub fn backward(saved: &Saved, gout: f32) -> (Matrix, Matrix) {
    let n = saved.un.rows();
    let scale = gout / (2.0 * n as f32 * saved.tau);

    // Gradients w.r.t. the normalized views.
    // dÛ = Guv·V̂ + (Guu + Guuᵀ)·Û + Gvuᵀ·V̂
    let mut dun = matmul(&saved.g_uv, &saved.vn);
    let guu_sym = saved.g_uu.add_transposed();
    add_consume(&mut dun, matmul(&guu_sym, &saved.un));
    crate::arena::recycle_matrix(guu_sym);
    add_consume(&mut dun, matmul_tn(&saved.g_vu, &saved.vn));
    // dV̂ = Guvᵀ·Û + (Gvv + Gvvᵀ)·V̂ + Gvu·Û
    let mut dvn = matmul_tn(&saved.g_uv, &saved.un);
    let gvv_sym = saved.g_vv.add_transposed();
    add_consume(&mut dvn, matmul(&gvv_sym, &saved.vn));
    crate::arena::recycle_matrix(gvv_sym);
    add_consume(&mut dvn, matmul(&saved.g_vu, &saved.un));

    dun.scale_inplace(scale);
    dvn.scale_inplace(scale);

    let du = normalize_backward(&dun, &saved.un, &saved.u_norms);
    let dv = normalize_backward(&dvn, &saved.vn, &saved.v_norms);
    crate::arena::recycle_matrix(dun);
    crate::arena::recycle_matrix(dvn);
    (du, dv)
}

/// `acc += rhs`, returning `rhs`'s buffer to the arena.
fn add_consume(acc: &mut Matrix, rhs: Matrix) {
    acc.add_assign(&rhs);
    crate::arena::recycle_matrix(rhs);
}

/// Pre-optimization forward pass, verbatim on the naive kernels: the
/// bit-identity oracle and uncached-timing baseline for [`forward`].
pub fn forward_reference(u: &Matrix, v: &Matrix, tau: f32) -> (f32, Saved) {
    assert_eq!(u.shape(), v.shape(), "InfoNCE views must have equal shape");
    assert!(tau > 0.0, "temperature must be positive");
    let n = u.rows();
    assert!(n >= 2, "InfoNCE needs at least two anchors");
    let _span = kernel_span(&INFONCE_METRICS, 16 * (n as u64).saturating_mul(n as u64));

    let (un, u_norms) = normalize_rows_reference(u);
    let (vn, v_norms) = normalize_rows_reference(v);

    let mut s_uv = matmul_nt_naive(&un, &vn);
    let mut s_uu = matmul_nt_naive(&un, &un);
    let mut s_vv = matmul_nt_naive(&vn, &vn);
    let inv_tau = 1.0 / tau;
    for m in [&mut s_uv, &mut s_uu, &mut s_vv] {
        m.scale_inplace(inv_tau);
    }

    let mut g_uv = Matrix::zeros(n, n);
    let mut g_uu = Matrix::zeros(n, n);
    let mut g_vu = Matrix::zeros(n, n);
    let mut g_vv = Matrix::zeros(n, n);

    let mut row_loss = vec![0.0f64; 2 * n];
    {
        let (u_loss, v_loss) = row_loss.split_at_mut(n);
        // u-side: anchor u_i against {v_j} ∪ {u_j, j≠i}.
        {
            let g_uv_rows = RowTable::new(g_uv.as_mut_slice(), n);
            let g_uu_rows = RowTable::new(g_uu.as_mut_slice(), n);
            let loss_rows = RowTable::new(u_loss, 1);
            par_rows(n, 8 * n, |i| {
                // SAFETY: each anchor row is visited by exactly one participant.
                unsafe {
                    loss_rows.row_mut(i)[0] = side_row_reference(
                        i,
                        s_uv.row(i),
                        s_uu.row(i),
                        g_uv_rows.row_mut(i),
                        g_uu_rows.row_mut(i),
                    );
                }
            });
        }
        // v-side: anchor v_i against {u_j} ∪ {v_j, j≠i}. s_vu = s_uvᵀ; each
        // anchor gathers its column of s_uv into a participant-local scratch.
        {
            let g_vu_rows = RowTable::new(g_vu.as_mut_slice(), n);
            let g_vv_rows = RowTable::new(g_vv.as_mut_slice(), n);
            let loss_rows = RowTable::new(v_loss, 1);
            par_row_blocks(n, 9 * n, |range| {
                let mut s_vu_row = vec![0.0f32; n];
                for i in range {
                    for (j, x) in s_vu_row.iter_mut().enumerate() {
                        *x = s_uv[(j, i)];
                    }
                    // SAFETY: each anchor row is visited by exactly one
                    // participant.
                    unsafe {
                        loss_rows.row_mut(i)[0] = side_row_reference(
                            i,
                            &s_vu_row,
                            s_vv.row(i),
                            g_vu_rows.row_mut(i),
                            g_vv_rows.row_mut(i),
                        );
                    }
                }
            });
        }
    }
    let loss = (row_loss.iter().sum::<f64>() / (2 * n) as f64) as f32;
    (
        loss,
        Saved {
            un,
            vn,
            u_norms,
            v_norms,
            g_uv,
            g_uu,
            g_vu,
            g_vv,
            tau,
        },
    )
}

/// Pre-optimization `side_row`: operates on pre-scaled similarity rows and
/// recomputes each `exp` in the probability pass.
fn side_row_reference(
    i: usize,
    inter: &[f32],
    intra: &[f32],
    g_inter: &mut [f32],
    g_intra: &mut [f32],
) -> f64 {
    let n = inter.len();
    let mut m = f32::NEG_INFINITY;
    for &x in inter {
        m = m.max(x);
    }
    for (j, &x) in intra.iter().enumerate() {
        if j != i {
            m = m.max(x);
        }
    }
    let mut denom = 0.0f64;
    for &x in inter {
        denom += ((x - m) as f64).exp();
    }
    for (j, &x) in intra.iter().enumerate() {
        if j != i {
            denom += ((x - m) as f64).exp();
        }
    }
    let log_denom = denom.ln() + m as f64;
    let loss = log_denom - inter[i] as f64;
    for j in 0..n {
        let p = (((inter[j] - m) as f64).exp() / denom) as f32;
        g_inter[j] = if j == i { p - 1.0 } else { p };
        g_intra[j] = if j == i {
            0.0
        } else {
            (((intra[j] - m) as f64).exp() / denom) as f32
        };
    }
    loss
}

/// Pre-optimization backward pass on the naive kernels.
pub fn backward_reference(saved: &Saved, gout: f32) -> (Matrix, Matrix) {
    let n = saved.un.rows();
    let scale = gout / (2.0 * n as f32 * saved.tau);

    let mut dun = matmul_rowstream(&saved.g_uv, &saved.vn);
    let guu_sym = saved.g_uu.add_transposed();
    dun.add_assign(&matmul_rowstream(&guu_sym, &saved.un));
    dun.add_assign(&matmul_tn_naive(&saved.g_vu, &saved.vn));
    let mut dvn = matmul_tn_naive(&saved.g_uv, &saved.un);
    let gvv_sym = saved.g_vv.add_transposed();
    dvn.add_assign(&matmul_rowstream(&gvv_sym, &saved.vn));
    dvn.add_assign(&matmul_rowstream(&saved.g_vu, &saved.un));

    dun.scale_inplace(scale);
    dvn.scale_inplace(scale);

    let du = normalize_backward(&dun, &saved.un, &saved.u_norms);
    let dv = normalize_backward(&dvn, &saved.vn, &saved.v_norms);
    (du, dv)
}

pub(crate) fn normalize_rows(m: &Matrix) -> (Matrix, Vec<f32>) {
    let mut out = crate::arena::copy_of(m);
    let mut norms = crate::arena::take_zeroed(m.rows());
    normalize_rows_into(m, &mut out, &mut norms);
    (out, norms)
}

/// Plain-allocation variant for the reference path.
fn normalize_rows_reference(m: &Matrix) -> (Matrix, Vec<f32>) {
    let mut out = m.clone();
    let mut norms = vec![0.0f32; m.rows()];
    normalize_rows_into(m, &mut out, &mut norms);
    (out, norms)
}

fn normalize_rows_into(m: &Matrix, out: &mut Matrix, norms: &mut [f32]) {
    let d = m.cols();
    if d > 0 {
        let norm_rows = RowTable::new(norms, 1);
        crate::parallel::par_row_chunks_cost(out.as_mut_slice(), d, 3 * d, |r0, chunk| {
            for (dr, row) in chunk.chunks_mut(d).enumerate() {
                let n = m.row_norm(r0 + dr).max(EPS);
                // SAFETY: each row is visited by exactly one participant.
                unsafe { norm_rows.row_mut(r0 + dr)[0] = n };
                for v in row {
                    *v /= n;
                }
            }
        });
    }
}

/// Chain rule through row L2 normalization: `dx = (dŷ − (dŷ·ŷ)ŷ)/‖x‖`.
/// The output is fully written for `d > 0` and empty otherwise, so the
/// arena's dirty take is safe.
pub(crate) fn normalize_backward(dn: &Matrix, normalized: &Matrix, norms: &[f32]) -> Matrix {
    let d = dn.cols();
    let mut out = crate::arena::matrix_dirty(dn.rows(), dn.cols());
    if d > 0 {
        crate::parallel::par_row_chunks_cost(out.as_mut_slice(), d, 4 * d, |r0, chunk| {
            for (dr, orow) in chunk.chunks_mut(d).enumerate() {
                let r = r0 + dr;
                let g = dn.row(r);
                let y = normalized.row(r);
                let gy: f32 = g.iter().zip(y).map(|(a, b)| a * b).sum();
                let inv = 1.0 / norms[r];
                for ((o, &gv), &yv) in orow.iter_mut().zip(g).zip(y) {
                    *o = (gv - gy * yv) * inv;
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_views_have_lower_loss_than_random() {
        let mut rng = StdRng::seed_from_u64(11);
        let u = Matrix::uniform(8, 4, -1.0, 1.0, &mut rng);
        let w = Matrix::uniform(8, 4, -1.0, 1.0, &mut rng);
        let (aligned, _) = forward(&u, &u, 0.5);
        let (random, _) = forward(&u, &w, 0.5);
        assert!(aligned < random, "aligned {aligned} !< random {random}");
    }

    #[test]
    fn loss_is_permutation_sensitive() {
        // Swapping the positive pairing must raise the loss.
        let mut rng = StdRng::seed_from_u64(12);
        let u = Matrix::uniform(6, 4, -1.0, 1.0, &mut rng);
        let mut v = u.clone();
        let (paired, _) = forward(&u, &v, 0.5);
        // rotate rows of v by one
        let first = v.row(0).to_vec();
        for r in 0..5 {
            let next = v.row(r + 1).to_vec();
            v.row_mut(r).copy_from_slice(&next);
        }
        v.row_mut(5).copy_from_slice(&first);
        let (shuffled, _) = forward(&u, &v, 0.5);
        assert!(paired < shuffled);
    }

    #[test]
    fn cached_path_is_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(29);
        let u = Matrix::uniform(33, 7, -1.0, 1.0, &mut rng);
        let v = Matrix::uniform(33, 7, -1.0, 1.0, &mut rng);
        let (loss, saved) = forward(&u, &v, 0.6);
        let (loss_ref, saved_ref) = forward_reference(&u, &v, 0.6);
        assert_eq!(loss, loss_ref);
        let (du, dv) = backward(&saved, 1.3);
        let (du_ref, dv_ref) = backward_reference(&saved_ref, 1.3);
        assert_eq!(du.as_slice(), du_ref.as_slice());
        assert_eq!(dv.as_slice(), dv_ref.as_slice());
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let u = Matrix::uniform(5, 3, -1.0, 1.0, &mut rng);
        let v = Matrix::uniform(5, 3, -1.0, 1.0, &mut rng);
        let (_, saved) = forward(&u, &v, 0.7);
        let (du, dv) = backward(&saved, 1.0);
        let h = 1e-3;
        for i in 0..u.len() {
            let mut up = u.clone();
            up.as_mut_slice()[i] += h;
            let (lp, _) = forward(&up, &v, 0.7);
            up.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = forward(&up, &v, 0.7);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - du.as_slice()[i]).abs() < 2e-3,
                "du[{i}]: fd={fd} analytic={}",
                du.as_slice()[i]
            );
        }
        for i in 0..v.len() {
            let mut vp = v.clone();
            vp.as_mut_slice()[i] += h;
            let (lp, _) = forward(&u, &vp, 0.7);
            vp.as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = forward(&u, &vp, 0.7);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - dv.as_slice()[i]).abs() < 2e-3,
                "dv[{i}]: fd={fd} analytic={}",
                dv.as_slice()[i]
            );
        }
    }
}
