// Indexed loops over parallel arrays are idiomatic in this numeric code.
#![allow(clippy::needless_range_loop)]

//! # gcmae-tensor
//!
//! Dense `f32` matrices, CSR sparse matrices, and an eager reverse-mode
//! autograd tape — the numerical substrate for the GCMAE reproduction.
//!
//! The crate is deliberately small and CPU-only: everything the paper's
//! models need (matmul, sparse message passing, activations, the GCMAE loss
//! kernels, and a GAT attention kernel) and nothing else.
//!
//! ## Example
//!
//! ```
//! use gcmae_tensor::{Matrix, Tape};
//!
//! let mut tape = Tape::new();
//! let w = tape.leaf(Matrix::from_vec(2, 1, vec![0.5, -0.5]));
//! let x = tape.constant(Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
//! let y = tape.matmul(x, w);
//! let loss = tape.frob_sq(y);
//! let grads = tape.backward(loss);
//! assert!(grads.get(w).is_some());
//! ```

pub mod arena;
pub mod backend;
pub mod backward;
pub mod dense;
pub mod gram;
pub mod init;
pub mod matrix;
pub mod node;
pub mod ops;
pub mod parallel;
#[cfg(target_arch = "x86_64")]
pub(crate) mod simd;
pub mod sparse;
pub mod tape;

pub use arena::ArenaGuard;
pub use backend::Backend;
pub use gram::GramCache;
pub use matrix::Matrix;
pub use node::TensorId;
pub use sparse::{CsrMatrix, SharedCsr};
pub use tape::{Grads, Tape};
