//! Dense row-major `f32` matrix.
//!
//! This is the single dense container used everywhere in the workspace:
//! node-feature matrices, hidden embeddings, weight matrices, and scalar
//! losses (as `1×1` matrices) are all [`Matrix`] values.

use std::fmt;

use rand::Rng;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a `1×1` matrix holding a scalar.
    pub fn scalar(value: f32) -> Self {
        Self { rows: 1, cols: 1, data: vec![value] }
    }

    /// Creates the `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix with entries sampled uniformly from `[lo, hi)`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Steals the backing buffer, leaving an empty `0×0` matrix behind (used
    /// by the arena `Drop` harvesters, which cannot move out of `&mut self`).
    pub(crate) fn take_data(&mut self) -> Vec<f32> {
        self.rows = 0;
        self.cols = 0;
        std::mem::take(&mut self.data)
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1×1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1×1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on a {}x{} matrix", self.rows, self.cols);
        self.data[0]
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Self {
        let mut out = crate::arena::copy_of(self);
        out.map_inplace(f);
        out
    }

    /// Transposed copy, built tile-by-tile so both the source reads and the
    /// destination writes stay within a cache-sized working set.
    pub fn transposed(&self) -> Self {
        const B: usize = 64;
        let (rows, cols) = (self.rows, self.cols);
        // Every element is written below, so a dirty arena buffer is safe.
        let mut out = crate::arena::matrix_dirty(cols, rows);
        for rb in (0..rows).step_by(B) {
            let re = (rb + B).min(rows);
            for cb in (0..cols).step_by(B) {
                let ce = (cb + B).min(cols);
                for r in rb..re {
                    let src = self.row(r);
                    for c in cb..ce {
                        out.data[c * rows + r] = src[c];
                    }
                }
            }
        }
        out
    }

    /// `self + selfᵀ` for a square matrix, computed tile-by-tile without
    /// materializing the transpose (used by the N×N loss backward passes,
    /// where the extra N² buffer and strided full-matrix pass are the
    /// dominant memory traffic).
    pub fn add_transposed(&self) -> Self {
        assert_eq!(self.rows, self.cols, "add_transposed needs a square matrix");
        let n = self.rows;
        // Every element is written by the tile sweep → dirty arena buffer.
        let mut out = crate::arena::matrix_dirty(n, n);
        crate::parallel::par_row_chunks_cost(out.as_mut_slice(), n.max(1), 2 * n, |r0, chunk| {
            const B: usize = 64;
            let mut cb = 0;
            while cb < n {
                let ce = (cb + B).min(n);
                for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                    let r = r0 + dr;
                    let src = &self.row(r)[cb..ce];
                    for (c, &sv) in (cb..ce).zip(src) {
                        out_row[c] = sv + self.data[c * n + r];
                    }
                }
                cb = ce;
            }
        });
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Euclidean (L2) norm of row `r`.
    pub fn row_norm(&self, r: usize) -> f32 {
        self.row(r).iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// `self += other` (element-wise).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` (element-wise AXPY).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, scale: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Scales every entry by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Copies the rows listed in `rows` into a new matrix (gather). Large
    /// gathers split across the worker pool; output is a pure copy, so it is
    /// identical at any thread count.
    pub fn gather_rows(&self, rows: &[usize]) -> Matrix {
        if self.cols == 0 {
            return Matrix::zeros(rows.len(), 0);
        }
        // Every row is copied over in full → dirty arena buffer.
        let mut out = crate::arena::matrix_dirty(rows.len(), self.cols);
        let cols = self.cols;
        crate::parallel::par_row_chunks_cost(out.as_mut_slice(), cols, cols, |r0, chunk| {
            for (i, dst) in chunk.chunks_mut(cols).enumerate() {
                dst.copy_from_slice(self.row(rows[r0 + i]));
            }
        });
        out
    }

    /// Writes row `i` of `src` into row `rows[i]` of `self` (scatter, the
    /// inverse of [`Matrix::gather_rows`]). `rows` must not contain
    /// duplicates: each listed destination row has exactly one parallel
    /// writer, and a repeated row would race.
    ///
    /// # Panics
    /// Panics on shape mismatch or an out-of-range row index.
    pub fn scatter_rows(&mut self, rows: &[usize], src: &Matrix) {
        assert_eq!(src.rows(), rows.len(), "scatter_rows count mismatch");
        assert_eq!(src.cols(), self.cols, "scatter_rows width mismatch");
        assert!(rows.iter().all(|&r| r < self.rows), "row index out of range");
        debug_assert!(
            {
                let mut seen = vec![false; self.rows];
                rows.iter().all(|&r| !std::mem::replace(&mut seen[r], true))
            },
            "duplicate row in scatter_rows"
        );
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        let table = crate::parallel::RowTable::new(&mut self.data, cols);
        crate::parallel::par_row_blocks(rows.len(), cols, |range| {
            for i in range {
                // SAFETY: `rows` is duplicate-free and parallel blocks are
                // disjoint, so each destination row has exactly one writer.
                let dst = unsafe { table.row_mut(rows[i]) };
                dst.copy_from_slice(src.row(i));
            }
        });
    }

    /// Maximum absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// `true` when every entry is finite (vectorized, parallel for large
    /// matrices — see [`crate::ops::finite`]).
    pub fn all_finite(&self) -> bool {
        crate::ops::finite::all_finite(&self.data)
    }

    /// Index of the first non-finite entry in row-major order, if any.
    pub fn first_non_finite(&self) -> Option<usize> {
        crate::ops::finite::first_non_finite(&self.data)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row: Vec<String> =
                self.row(r).iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ell)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::uniform(3, 5, -1.0, 1.0, &mut rng);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn transpose_crosses_tile_boundaries() {
        // 100×70 straddles the 64-wide tiles in both dimensions.
        let m = Matrix::from_fn(100, 70, |r, c| (r * 1000 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (70, 100));
        for r in 0..100 {
            for c in 0..70 {
                assert_eq!(t[(c, r)], m[(r, c)]);
            }
        }
    }

    #[test]
    fn add_transposed_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(8);
        for n in [1usize, 5, 64, 97] {
            let m = Matrix::uniform(n, n, -1.0, 1.0, &mut rng);
            let mut explicit = m.clone();
            explicit.add_assign(&m.transposed());
            assert_eq!(m.add_transposed(), explicit, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn add_transposed_rejects_rectangular() {
        let _ = Matrix::zeros(2, 3).add_transposed();
    }

    #[test]
    fn identity_matmul_fixture() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn row_views() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        m.row_mut(0)[2] = 9.0;
        assert_eq!(m[(0, 2)], 9.0);
    }

    #[test]
    fn sum_mean_frob() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.sum(), 10.0);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.frob_sq(), 30.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a[(0, 0)], 2.0);
        a.scale_inplace(2.0);
        assert_eq!(a[(1, 1)], 4.0);
    }

    #[test]
    fn gather_rows_selects() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn scatter_rows_inverts_gather() {
        let m = Matrix::from_fn(8, 3, |r, c| (r * 3 + c) as f32);
        let rows = [5usize, 1, 7];
        let g = m.gather_rows(&rows);
        let mut out = Matrix::full(8, 3, -1.0);
        out.scatter_rows(&rows, &g);
        for &r in &rows {
            assert_eq!(out.row(r), m.row(r));
        }
        assert!(out.row(0).iter().all(|&v| v == -1.0));
    }

    #[test]
    fn scalar_value_roundtrip() {
        assert_eq!(Matrix::scalar(3.5).scalar_value(), 3.5);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f32::NAN;
        assert!(!m.all_finite());
    }
}
