//! Row-block parallelism on a persistent worker pool.
//!
//! Dense matmul, CSR spmm, and the O(N²) GCMAE loss kernels dominate training
//! time, so their independent output rows are split into contiguous blocks and
//! executed on a lazily-started pool of worker threads. The pool is spawned
//! once and reused for every kernel call — there is no per-call thread
//! spawn/join — and work below a flop-aware threshold runs inline on the
//! caller to avoid dispatch overhead.
//!
//! ## Determinism
//!
//! Every parallel entry point partitions work by *row*, and each row is
//! processed serially by exactly one participant with the same instruction
//! sequence the serial path uses. Reductions (loss sums) are never performed
//! concurrently: kernels write per-row partials and reduce them afterwards in
//! row order on the caller. Outputs are therefore bit-identical for any
//! thread count (see `crates/tensor/tests/thread_invariance.rs`).
//!
//! ## Scheduling
//!
//! The pool is deliberately work-stealing-free: a dispatched task exposes its
//! row blocks through a single atomic cursor, and every participant (the
//! caller plus up to `num_threads() - 1` workers) claims the next unclaimed
//! block until none remain. The caller always participates, so a call
//! completes even if every worker is busy — queued jobs that never got picked
//! up are cancelled once the caller has drained all blocks, which also makes
//! nested parallel calls deadlock-free.
//!
//! ## Crash safety
//!
//! A panicking job closure is caught inside the claiming participant, the
//! remaining participants finish their blocks, and the original panic payload
//! is re-raised on the submitting thread once the latch has drained — the
//! pool itself stays healthy. Every mutex acquisition recovers from
//! poisoning (partial state under these locks is always valid), a worker that
//! dies while holding a job checks the job in through a completion guard so
//! the submitting thread can never hang on the latch, and dead workers are
//! respawned on the next dispatch. Worker death is exercised
//! deterministically via [`inject_worker_deaths`].

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a mutex, recovering from poisoning.
///
/// Every mutex in this module guards state that is valid after any partial
/// update (job queues, completion counts), so a panic while holding the lock
/// must not wedge every later kernel dispatch — clear the poison and move on.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hard upper bound on kernel participants (caller + pool workers).
const MAX_THREADS: usize = 16;

/// Minimum estimated per-call work (in f32 multiply-add units) before the
/// pool is engaged; smaller kernels run inline on the caller.
const PAR_FLOP_THRESHOLD: usize = 32 * 1024;

static FORCED_THREADS: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Number of participants used for parallel kernels.
///
/// Resolution order: a value forced through [`set_num_threads`] wins, then a
/// positive integer in the `GCMAE_NUM_THREADS` environment variable (read
/// once and cached), then `available_parallelism`. The env/default values are
/// clamped to `[1, 16]`; a forced value is used as-is so benches can request
/// oversubscription explicitly.
pub fn num_threads() -> usize {
    let forced = FORCED_THREADS.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("GCMAE_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    });
    resolve_threads(
        env,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )
}

/// Pure thread-count resolution (env wins over the hardware default), kept
/// separate from the cached statics so it is unit-testable.
fn resolve_threads(env: usize, available: usize) -> usize {
    if env != 0 {
        env.clamp(1, MAX_THREADS)
    } else {
        available.clamp(1, MAX_THREADS)
    }
}

/// Forces the kernel thread count (0 restores the automatic default).
pub fn set_num_threads(n: usize) {
    FORCED_THREADS.store(n, Ordering::Relaxed);
}

/// Number of live pool worker threads (excludes callers; dead workers are
/// subtracted and respawned on the next dispatch).
///
/// Exposed so tests can assert that repeated kernel calls reuse the pool
/// instead of leaking threads.
pub fn pool_size() -> usize {
    POOL.get().map_or(0, |p| p.spawned.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// Type-erased handle to an in-flight parallel call, living on the caller's
/// stack. Workers may only touch it between claiming a job and completing the
/// job's latch.
struct TaskHeader {
    /// Invokes the user closure on rows `[start, start + len)`.
    call: unsafe fn(*const (), usize, usize),
    /// Pointer to the user closure (borrowed from the caller's stack).
    f: *const (),
    rows: usize,
    block_rows: usize,
    /// Cursor over block indices; participants claim blocks until exhausted.
    next: AtomicUsize,
    panicked: AtomicBool,
    /// First captured panic payload, re-raised on the submitting thread.
    payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl TaskHeader {
    /// Claims and runs blocks until the cursor is exhausted. Panics inside
    /// the closure are caught and recorded so sibling participants finish
    /// their blocks and the caller can re-raise after the latch settles.
    fn participate(&self) {
        let res = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let start = i.saturating_mul(self.block_rows);
            if start >= self.rows {
                break;
            }
            let len = self.block_rows.min(self.rows - start);
            // SAFETY: `f` outlives the call (the caller waits on the latch
            // before returning) and blocks are disjoint row ranges.
            unsafe { (self.call)(self.f, start, len) };
        }));
        if let Err(p) = res {
            self.record_panic(p);
        }
    }

    /// Marks the task failed, keeping the first payload for the caller.
    fn record_panic(&self, p: Box<dyn Any + Send>) {
        let mut slot = lock(&self.payload);
        if slot.is_none() {
            *slot = Some(p);
        }
        drop(slot);
        self.panicked.store(true, Ordering::Release);
    }
}

/// Completion latch shared between the caller and the jobs it dispatched.
/// Heap-allocated (`Arc`) so a worker's final `complete_one` never touches
/// caller-stack memory that may already be gone.
struct Latch {
    pending: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(pending: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: Mutex::new(pending),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, k: usize) {
        let mut g = lock(&self.pending);
        *g -= k;
        if *g == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = lock(&self.pending);
        while *g > 0 {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One queued unit of pool work: "participate in this task, then check in".
struct Job {
    task: *const TaskHeader,
    latch: Arc<Latch>,
    /// Fault-injection tag: the claiming worker dies instead of working.
    kill: bool,
}

// SAFETY: the raw task pointer is only dereferenced while the owning caller
// is blocked waiting on `latch`, which it does not release until every job
// has completed or been cancelled.
unsafe impl Send for Job {}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    /// Live workers (decremented by `RespawnGuard` when one dies).
    spawned: AtomicUsize,
    /// Monotonic id source for worker thread names.
    next_id: AtomicUsize,
    /// Serializes worker spawning so the pool never overshoots its target.
    spawn_lock: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
        next_id: AtomicUsize::new(0),
        spawn_lock: Mutex::new(()),
    })
}

/// Lazily grows the pool to at least `want` workers (capped at
/// `MAX_THREADS - 1`; the caller itself is the final participant). Spawn
/// failures are tolerated: undispatched jobs are cancelled by the caller, so
/// a smaller pool only costs parallelism, never correctness.
fn ensure_workers(p: &'static Pool, want: usize) {
    let want = want.min(MAX_THREADS - 1);
    if p.spawned.load(Ordering::Relaxed) >= want {
        return;
    }
    let _guard = lock(&p.spawn_lock);
    while p.spawned.load(Ordering::Relaxed) < want {
        let id = p.next_id.fetch_add(1, Ordering::Relaxed);
        let spawned = std::thread::Builder::new()
            .name(format!("gcmae-pool-{id}"))
            .spawn(move || worker_loop(pool()));
        if spawned.is_err() {
            p.next_id.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        p.spawned.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fast gate for the fault-injection path below; `false` keeps the dispatch
/// hot path at a single relaxed load.
static DEATHS_ARMED: AtomicBool = AtomicBool::new(false);

/// `(injecting thread, remaining deaths)` for [`inject_worker_deaths`].
static DEATH_PLAN: Mutex<Option<(std::thread::ThreadId, usize)>> = Mutex::new(None);

/// Test/chaos hook: up to `n` jobs dispatched *by the calling thread* are
/// tagged so the pool worker that claims one kills its own thread. The
/// in-flight call still completes (the dying worker checks in through its
/// completion guard and the failure is resurfaced as a panic on the
/// submitting thread), and the pool respawns replacements on the next
/// dispatch. Scoped to the calling thread so concurrent tests cannot consume
/// each other's injected faults.
#[doc(hidden)]
pub fn inject_worker_deaths(n: usize) {
    *lock(&DEATH_PLAN) = Some((std::thread::current().id(), n));
    DEATHS_ARMED.store(n > 0, Ordering::Release);
}

/// Worker deaths injected by the calling thread that have not fired yet.
#[doc(hidden)]
pub fn pending_worker_deaths() -> usize {
    match *lock(&DEATH_PLAN) {
        Some((tid, n)) if tid == std::thread::current().id() => n,
        _ => 0,
    }
}

/// Claims up to `n_jobs` pending deaths for the current dispatch; only the
/// thread that armed the plan ever claims any.
fn claim_worker_deaths(n_jobs: usize) -> usize {
    if !DEATHS_ARMED.load(Ordering::Acquire) {
        return 0;
    }
    let mut plan = lock(&DEATH_PLAN);
    match plan.as_mut() {
        Some((tid, n)) if *tid == std::thread::current().id() => {
            let k = (*n).min(n_jobs);
            *n -= k;
            if *n == 0 {
                *plan = None;
                DEATHS_ARMED.store(false, Ordering::Release);
            }
            k
        }
        _ => 0,
    }
}

/// Decrements the live-worker count when a worker thread dies, so
/// `ensure_workers` spawns a replacement on the next dispatch instead of the
/// pool silently shrinking forever.
struct RespawnGuard(&'static Pool);

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        self.0.spawned.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Guarantees a claimed job checks in exactly once, even if the worker dies
/// mid-job: a latch left pending would block the submitting thread forever.
struct JobCompletion<'a> {
    job: &'a Job,
    done: bool,
}

impl Drop for JobCompletion<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Dying with the job still held: fail the task (so the caller
            // raises an error instead of returning corrupt output) and drain
            // our slot in the latch.
            // SAFETY: the caller is still blocked on the latch, so the task
            // header is alive until this `complete` runs.
            unsafe {
                (*self.job.task).record_panic(Box::new(
                    "parallel pool worker died while holding a job".to_string(),
                ));
            }
            self.job.latch.complete(1);
        }
    }
}

fn worker_loop(p: &'static Pool) {
    let _respawn = RespawnGuard(p);
    loop {
        let job = {
            let mut q = lock(&p.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let mut completion = JobCompletion {
            job: &job,
            done: false,
        };
        if job.kill {
            // Injected fault: unwind out of the loop. `completion` fails the
            // job and checks in; `_respawn` shrinks the live-worker count.
            panic!("injected worker death");
        }
        // SAFETY: the dispatching caller is blocked on `job.latch` and keeps
        // the task alive until this participation is counted.
        unsafe { (*job.task).participate() };
        completion.done = true;
        job.latch.complete(1);
    }
}

unsafe fn call_closure<F: Fn(Range<usize>) + Sync>(f: *const (), start: usize, len: usize) {
    (*(f as *const F))(start..start + len);
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Runs `f` over contiguous row ranges covering `0..rows`, in parallel when
/// the estimated work (`rows × cost_per_row` multiply-adds) crosses the
/// threshold. `cost_per_row` lets skinny-but-deep kernels (e.g. a `m×k · k×n`
/// matmul with huge `k`) parallelize even when the output itself is small.
///
/// `f` must treat the ranges it receives as disjoint: each row belongs to
/// exactly one invocation, and invocations may run concurrently.
pub fn par_row_blocks<F>(rows: usize, cost_per_row: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if rows == 0 {
        return;
    }
    let threads = num_threads();
    let total_cost = rows.saturating_mul(cost_per_row.max(1));
    if threads <= 1 || rows < 2 || total_cost < PAR_FLOP_THRESHOLD {
        gcmae_obs::counter_add("pool.dispatch.inline", 1);
        f(0..rows);
        return;
    }

    let block_rows = rows.div_ceil(threads);
    let n_blocks = rows.div_ceil(block_rows);
    let n_jobs = (n_blocks - 1).min(MAX_THREADS - 1);
    if n_jobs == 0 {
        gcmae_obs::counter_add("pool.dispatch.inline", 1);
        f(0..rows);
        return;
    }
    gcmae_obs::counter_add("pool.dispatch.parallel", 1);
    gcmae_obs::counter_add("pool.dispatch.jobs", n_jobs as u64);

    let header = TaskHeader {
        call: call_closure::<F>,
        f: &f as *const F as *const (),
        rows,
        block_rows,
        next: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        payload: Mutex::new(None),
    };
    let latch = Latch::new(n_jobs);

    let p = pool();
    ensure_workers(p, n_jobs);
    let kills = claim_worker_deaths(n_jobs);
    {
        let mut q = lock(&p.queue);
        for i in 0..n_jobs {
            q.push_back(Job {
                task: &header,
                latch: latch.clone(),
                kill: i < kills,
            });
        }
    }
    p.cv.notify_all();

    // The caller is always a participant, so every block is processed even if
    // no worker ever picks up a job.
    header.participate();

    // Cancel jobs still sitting in the queue (their blocks are already taken
    // or will be unclaimable); this also prevents deadlock when the pool is
    // saturated, e.g. by nested parallel calls.
    let task_ptr: *const TaskHeader = &header;
    let cancelled = {
        let mut q = lock(&p.queue);
        let before = q.len();
        q.retain(|j| !std::ptr::eq(j.task, task_ptr));
        before - q.len()
    };
    if cancelled > 0 {
        latch.complete(cancelled);
    }
    latch.wait();

    // Every participant has checked in; resurface the first captured panic on
    // the submitting thread with its original payload so the error reads as
    // if the kernel had run serially.
    if header.panicked.load(Ordering::Acquire) {
        let payload = lock(&header.payload)
            .take()
            .unwrap_or_else(|| Box::new("parallel kernel worker panicked".to_string()));
        resume_unwind(payload);
    }
}

/// Runs `f(r)` for every row `r` in `0..rows`; see [`par_row_blocks`].
pub fn par_rows<F>(rows: usize, cost_per_row: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_row_blocks(rows, cost_per_row, |range| {
        for r in range {
            f(r);
        }
    });
}

/// Splits `out` (a row-major buffer of rows of length `row_len`) into
/// contiguous row blocks and runs `f(first_row, block)` on each, in parallel
/// when `rows × cost_per_row` crosses the threshold.
pub fn par_row_chunks_cost<F>(out: &mut [f32], row_len: usize, cost_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if row_len == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / row_len;
    let table = RowTable::new(out, row_len);
    par_row_blocks(rows, cost_per_row, |range| {
        let start = range.start;
        // SAFETY: `par_row_blocks` hands out disjoint row ranges.
        let chunk = unsafe { table.rows_mut(range) };
        f(start, chunk);
    });
}

/// [`par_row_chunks_cost`] with the default cost model of one unit per
/// output entry (the pre-pool behavior).
pub fn par_row_chunks<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    par_row_chunks_cost(out, row_len, row_len, f);
}

/// Like [`par_row_blocks`], but with a *per-row* cost function instead of a
/// uniform estimate: block boundaries are placed on the prefix sums of
/// `row_cost` so every block carries roughly equal work. Kernels whose rows
/// have wildly different costs (CSR spmm on power-law graphs, triangular
/// SYRK sweeps) stay balanced without changing what happens inside a row, so
/// outputs remain bit-identical at any thread count.
pub fn par_row_blocks_by_cost<C, F>(rows: usize, row_cost: C, f: F)
where
    C: Fn(usize) -> usize,
    F: Fn(Range<usize>) + Sync,
{
    if rows == 0 {
        return;
    }
    let threads = num_threads();
    let mut total: usize = 0;
    for r in 0..rows {
        total = total.saturating_add(row_cost(r).max(1));
    }
    if threads <= 1 || rows < 2 || total < PAR_FLOP_THRESHOLD {
        gcmae_obs::counter_add("pool.dispatch.inline", 1);
        f(0..rows);
        return;
    }

    // Cut the rows into ~2 blocks per participant of near-equal cost; the
    // cursor in `par_row_blocks` then load-balances the blocks dynamically.
    let target_blocks = (threads * 2).min(rows);
    let budget = total.div_ceil(target_blocks).max(1);
    let mut bounds = Vec::with_capacity(target_blocks + 1);
    bounds.push(0usize);
    let mut acc = 0usize;
    for r in 0..rows {
        acc = acc.saturating_add(row_cost(r).max(1));
        if acc >= budget && r + 1 < rows {
            bounds.push(r + 1);
            acc = 0;
        }
    }
    bounds.push(rows);
    let n_blocks = bounds.len() - 1;
    par_row_blocks(n_blocks, budget, |block_range| {
        for b in block_range {
            f(bounds[b]..bounds[b + 1]);
        }
    });
}

/// [`par_row_chunks_cost`] with a per-row cost function (see
/// [`par_row_blocks_by_cost`]): splits `out` into row blocks of roughly equal
/// *total* cost instead of equal row count.
pub fn par_row_chunks_by_cost<C, F>(out: &mut [f32], row_len: usize, row_cost: C, f: F)
where
    C: Fn(usize) -> usize,
    F: Fn(usize, &mut [f32]) + Sync,
{
    if row_len == 0 || out.is_empty() {
        return;
    }
    let rows = out.len() / row_len;
    let table = RowTable::new(out, row_len);
    par_row_blocks_by_cost(rows, row_cost, |range| {
        let start = range.start;
        // SAFETY: blocks hand out disjoint row ranges.
        let chunk = unsafe { table.rows_mut(range) };
        f(start, chunk);
    });
}

// ---------------------------------------------------------------------------
// RowTable
// ---------------------------------------------------------------------------

/// Shared view of a row-major buffer that hands out disjoint `&mut` rows to
/// concurrent participants. Used by kernels whose per-row work writes into
/// several buffers at once (e.g. a coefficient matrix plus per-row loss
/// partials), which the chunk-based API cannot express.
pub struct RowTable<'a, T> {
    ptr: *mut T,
    rows: usize,
    row_len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is mediated by the unsafe row accessors, whose contract
// requires disjoint row usage across threads.
unsafe impl<T: Send> Send for RowTable<'_, T> {}
unsafe impl<T: Send> Sync for RowTable<'_, T> {}

impl<'a, T> RowTable<'a, T> {
    /// Wraps a row-major buffer of rows of length `row_len`.
    ///
    /// # Panics
    /// Panics if `row_len` is zero or does not divide the buffer length.
    pub fn new(buf: &'a mut [T], row_len: usize) -> Self {
        assert!(row_len > 0, "row_len must be positive");
        assert_eq!(buf.len() % row_len, 0, "buffer not a whole number of rows");
        Self {
            ptr: buf.as_mut_ptr(),
            rows: buf.len() / row_len,
            row_len,
            _marker: PhantomData,
        }
    }

    /// Mutable view of row `r`.
    ///
    /// # Safety
    /// No two concurrent calls may touch the same row, and the returned
    /// reference must not outlive the parallel call.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.row_len), self.row_len)
    }

    /// Mutable view of the contiguous rows in `range`.
    ///
    /// # Safety
    /// Ranges handed to concurrent callers must be disjoint, and the returned
    /// reference must not outlive the parallel call.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn rows_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.rows);
        std::slice::from_raw_parts_mut(
            self.ptr.add(range.start * self.row_len),
            (range.end - range.start) * self.row_len,
        )
    }
}

/// Serializes tests (crate-wide) that mutate the global forced thread count.
#[cfg(test)]
pub(crate) static TEST_THREADS_GUARD: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = TEST_THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(n);
        let out = f();
        set_num_threads(0);
        out
    }

    #[test]
    fn chunks_cover_all_rows_small() {
        let mut buf = vec![0.0f32; 10 * 3];
        par_row_chunks(&mut buf, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                row.fill((r0 + i) as f32);
            }
        });
        for r in 0..10 {
            assert_eq!(buf[r * 3], r as f32);
        }
    }

    #[test]
    fn chunks_cover_all_rows_large() {
        let rows = 4096;
        let cols = 16;
        let mut buf = vec![0.0f32; rows * cols];
        with_threads(8, || {
            par_row_chunks(&mut buf, cols, |r0, chunk| {
                for (i, row) in chunk.chunks_mut(cols).enumerate() {
                    row.fill((r0 + i) as f32);
                }
            });
        });
        for r in 0..rows {
            assert_eq!(buf[r * cols], r as f32, "row {r}");
            assert_eq!(buf[r * cols + cols - 1], r as f32, "row {r} tail");
        }
    }

    #[test]
    fn forced_single_thread_still_correct() {
        with_threads(1, || {
            let mut buf = vec![1.0f32; 64];
            par_row_chunks(&mut buf, 8, |_, chunk| {
                for v in chunk {
                    *v += 1.0;
                }
            });
            assert!(buf.iter().all(|&v| v == 2.0));
        });
    }

    #[test]
    fn empty_buffer_is_noop() {
        let mut buf: Vec<f32> = vec![];
        par_row_chunks(&mut buf, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn cost_hint_gates_parallelism() {
        // Tiny output, huge per-row cost: must still cover every row.
        let mut buf = vec![0.0f32; 4 * 2];
        with_threads(4, || {
            par_row_chunks_cost(&mut buf, 2, 1 << 20, |r0, chunk| {
                for (i, row) in chunk.chunks_mut(2).enumerate() {
                    row.fill((r0 + i) as f32 + 1.0);
                }
            });
        });
        for r in 0..4 {
            assert_eq!(buf[r * 2], r as f32 + 1.0);
        }
    }

    #[test]
    fn par_rows_visits_each_row_once() {
        let rows = 300;
        let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            par_rows(rows, 1 << 12, |r| {
                hits[r].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reused_not_leaked() {
        with_threads(4, || {
            for i in 0..2000 {
                let rows = if i % 2 == 0 { 4 } else { 128 };
                let mut buf = vec![0.0f32; rows * 64];
                par_row_chunks_cost(&mut buf, 64, 1 << 12, |_, chunk| {
                    for v in chunk {
                        *v += 1.0;
                    }
                });
                assert!(buf.iter().all(|&v| v == 1.0));
            }
        });
        assert!(
            pool_size() <= MAX_THREADS - 1,
            "pool leaked threads: {}",
            pool_size()
        );
    }

    #[test]
    fn nested_parallel_calls_complete() {
        let rows = 64;
        let mut buf = vec![0.0f32; rows * 32];
        with_threads(4, || {
            let table = RowTable::new(&mut buf, 32);
            par_row_blocks(rows, 1 << 12, |outer| {
                for r in outer {
                    // Nested call: runs inline or on the pool; must not
                    // deadlock even when every worker is busy.
                    let mut inner = vec![0.0f32; 64 * 16];
                    par_row_chunks_cost(&mut inner, 16, 1 << 12, |_, chunk| {
                        for v in chunk {
                            *v = 1.0;
                        }
                    });
                    let sum: f32 = inner.iter().sum();
                    let row = unsafe { table.row_mut(r) };
                    row.fill(sum);
                }
            });
        });
        assert!(buf.iter().all(|&v| v == 1024.0));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let mut buf = vec![0.0f32; 1024 * 16];
                par_row_chunks_cost(&mut buf, 16, 1 << 12, |r0, _| {
                    if r0 > 0 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err(), "panic must propagate to the caller");
        set_num_threads(0); // the panic skipped with_threads' restore
                            // The pool must stay usable afterwards.
        let mut buf = vec![0.0f32; 1024 * 16];
        with_threads(4, || {
            par_row_chunks_cost(&mut buf, 16, 1 << 12, |_, chunk| {
                for v in chunk {
                    *v = 2.0;
                }
            });
        });
        assert!(buf.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn panic_payload_reaches_the_caller_intact() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let mut buf = vec![0.0f32; 1024 * 16];
                par_row_chunks_cost(&mut buf, 16, 1 << 12, |r0, _| {
                    if r0 > 0 {
                        panic!("kernel exploded at row {r0}");
                    }
                });
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panics carry a String payload");
        assert!(
            msg.contains("kernel exploded"),
            "payload was replaced: {msg}"
        );
        set_num_threads(0); // the panic skipped with_threads' restore
    }

    #[test]
    fn dead_workers_drain_the_latch_and_are_respawned() {
        with_threads(4, || {
            let run = || {
                let mut buf = vec![0.0f32; 4096 * 16];
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    par_row_chunks_cost(&mut buf, 16, 1 << 12, |_, chunk| {
                        for v in chunk {
                            *v += 1.0;
                        }
                    });
                }));
                (r, buf)
            };
            let (healthy, _) = run();
            healthy.expect("pool healthy before injection");

            inject_worker_deaths(2);
            // Each call claims pending deaths at dispatch; no call may hang,
            // and a call whose worker died must report the failure.
            let mut observed_death = false;
            for _ in 0..50 {
                let (r, _) = run();
                observed_death |= r.is_err();
                if pending_worker_deaths() == 0 {
                    break;
                }
            }
            assert_eq!(pending_worker_deaths(), 0, "deaths were never claimed");

            // The pool must service later calls correctly (respawn path).
            for _ in 0..5 {
                let (r, buf) = run();
                r.expect("pool must recover after worker deaths");
                assert!(buf.iter().all(|&v| v == 1.0));
            }
            assert!(pool_size() <= MAX_THREADS - 1);
            // `observed_death` may stay false only if the caller out-raced
            // every worker and cancelled the tagged jobs; either way the
            // invariants above (no hang, healthy pool) are what matter.
            let _ = observed_death;
        });
    }

    #[test]
    fn resolve_threads_order() {
        assert_eq!(resolve_threads(0, 4), 4);
        assert_eq!(resolve_threads(0, 64), MAX_THREADS);
        assert_eq!(resolve_threads(6, 4), 6);
        assert_eq!(resolve_threads(64, 4), MAX_THREADS);
        assert_eq!(resolve_threads(0, 1), 1);
    }

    #[test]
    fn by_cost_blocks_cover_every_row_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        // Heavily skewed (power-law-ish) costs: row r costs ~ (rows - r)^2.
        let rows = 3000;
        let cost = |r: usize| (rows - r) * (rows - r);
        for threads in [1, 8] {
            let hits: Vec<AtomicU32> = (0..rows).map(|_| AtomicU32::new(0)).collect();
            with_threads(threads, || {
                par_row_blocks_by_cost(rows, cost, |range| {
                    for r in range {
                        hits[r].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            for (r, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "row {r} at {threads} threads");
            }
        }
    }

    #[test]
    fn by_cost_chunks_match_serial_and_balance_skewed_rows() {
        let rows = 2048;
        let cols = 8;
        // One hub row carries almost all the work, like a power-law graph.
        let cost = |r: usize| if r == 0 { 1 << 20 } else { cols };
        let fill = |buf: &mut [f32]| {
            par_row_chunks_by_cost(buf, cols, cost, |r0, chunk| {
                for (i, row) in chunk.chunks_mut(cols).enumerate() {
                    let r = (r0 + i) as f32;
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = r * 10.0 + c as f32;
                    }
                }
            });
        };
        let mut serial = vec![0.0f32; rows * cols];
        with_threads(1, || fill(&mut serial));
        let mut parallel = vec![0.0f32; rows * cols];
        with_threads(8, || fill(&mut parallel));
        assert_eq!(serial, parallel);
        assert_eq!(serial[5 * cols + 3], 53.0);
    }

    #[test]
    fn by_cost_handles_empty_and_tiny_inputs() {
        par_row_blocks_by_cost(0, |_| 1, |_| panic!("no rows, no calls"));
        let mut one = vec![0.0f32; 4];
        par_row_chunks_by_cost(&mut one, 4, |_| usize::MAX, |_, chunk| chunk.fill(2.0));
        assert!(one.iter().all(|&v| v == 2.0));
    }
}
