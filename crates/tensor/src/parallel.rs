//! Row-block parallelism helpers built on `crossbeam::scope`.
//!
//! Dense matmul and CSR spmm dominate training time, so their output rows are
//! split into contiguous blocks processed by scoped threads. Work below a
//! small threshold runs inline to avoid thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used for parallel kernels.
///
/// Defaults to `available_parallelism`, clamped to `[1, 16]`; overridable via
/// [`set_num_threads`] (used by benches to compare serial vs parallel).
pub fn num_threads() -> usize {
    let forced = FORCED_THREADS.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).clamp(1, 16)
}

static FORCED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Forces the kernel thread count (0 restores the automatic default).
pub fn set_num_threads(n: usize) {
    FORCED_THREADS.store(n, Ordering::Relaxed);
}

/// Minimum number of f32 entries in the output before threads are spawned.
const PAR_THRESHOLD: usize = 16 * 1024;

/// Splits `out` (a row-major buffer of rows of length `row_len`) into
/// contiguous row blocks and runs `f(first_row, block)` on each, in parallel
/// when the buffer is large enough.
pub fn par_row_chunks<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if row_len == 0 || out.is_empty() {
        return;
    }
    debug_assert_eq!(out.len() % row_len, 0, "buffer not a whole number of rows");
    let rows = out.len() / row_len;
    let threads = num_threads();
    if threads <= 1 || out.len() < PAR_THRESHOLD || rows < 2 {
        f(0, out);
        return;
    }
    let block_rows = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = out;
        let mut r0 = 0usize;
        while !rest.is_empty() {
            let take = (block_rows * row_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = r0;
            let fr = &f;
            s.spawn(move |_| fr(start, head));
            r0 += take / row_len;
            rest = tail;
        }
    })
    .expect("parallel kernel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_rows_small() {
        let mut buf = vec![0.0f32; 10 * 3];
        par_row_chunks(&mut buf, 3, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(3).enumerate() {
                row.fill((r0 + i) as f32);
            }
        });
        for r in 0..10 {
            assert_eq!(buf[r * 3], r as f32);
        }
    }

    #[test]
    fn chunks_cover_all_rows_large() {
        let rows = 4096;
        let cols = 16;
        let mut buf = vec![0.0f32; rows * cols];
        par_row_chunks(&mut buf, cols, |r0, chunk| {
            for (i, row) in chunk.chunks_mut(cols).enumerate() {
                row.fill((r0 + i) as f32);
            }
        });
        for r in 0..rows {
            assert_eq!(buf[r * cols], r as f32, "row {r}");
            assert_eq!(buf[r * cols + cols - 1], r as f32, "row {r} tail");
        }
    }

    #[test]
    fn forced_single_thread_still_correct() {
        set_num_threads(1);
        let mut buf = vec![1.0f32; 64];
        par_row_chunks(&mut buf, 8, |_, chunk| {
            for v in chunk {
                *v += 1.0;
            }
        });
        assert!(buf.iter().all(|&v| v == 2.0));
        set_num_threads(0);
    }

    #[test]
    fn empty_buffer_is_noop() {
        let mut buf: Vec<f32> = vec![];
        par_row_chunks(&mut buf, 4, |_, _| panic!("must not be called"));
    }
}
