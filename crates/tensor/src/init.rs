//! Weight initializers.

use rand::Rng;
use rand_distr_free::normal_pair;

use crate::matrix::Matrix;

/// Glorot/Xavier uniform initialization for a `fan_in × fan_out` weight.
pub fn glorot_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let limit = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    Matrix::uniform(fan_in, fan_out, -limit, limit, rng)
}

/// Glorot/Xavier normal initialization.
pub fn glorot_normal<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let std = (2.0f32 / (fan_in + fan_out) as f32).sqrt();
    let mut out = Matrix::zeros(fan_in, fan_out);
    let mut pending: Option<f32> = None;
    out.map_inplace(|_| {
        if let Some(z) = pending.take() {
            z * std
        } else {
            let (a, b) = normal_pair(rng);
            pending = Some(b);
            a * std
        }
    });
    out
}

/// Zero initialization (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

mod rand_distr_free {
    //! Box–Muller without pulling in `rand_distr`.
    use rand::Rng;

    /// Two independent standard-normal samples.
    pub fn normal_pair<R: Rng>(rng: &mut R) -> (f32, f32) {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_uniform(100, 50, &mut rng);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= limit));
        // roughly centered
        assert!(w.mean().abs() < 0.02);
    }

    #[test]
    fn glorot_normal_has_expected_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = glorot_normal(200, 200, &mut rng);
        let std_target = (2.0f32 / 400.0).sqrt();
        let var = w.frob_sq() / w.len() as f32;
        assert!((var.sqrt() - std_target).abs() < 0.01, "std = {}", var.sqrt());
    }
}
