//! Cross-step buffer arena for gradient and activation matrices.
//!
//! Training allocates the same set of `Vec<f32>` buffers every step: one per
//! tape node, one per gradient slot, plus the N×N scratch matrices inside the
//! loss kernels. The arena recycles those buffers across steps so the steady
//! state performs zero heap allocations on the hot path.
//!
//! ## Lifetime rules
//!
//! - Retention is **opt-in**: while at least one [`ArenaGuard`] is alive,
//!   [`recycle`] parks buffers in a global size-class pool and [`take_dirty`] /
//!   [`take_zeroed`] serve from it. With no guard active, `recycle` is a plain
//!   drop and `take_*` a plain allocation, so one-shot paths (serving, tests)
//!   pay nothing and hold nothing.
//! - The training loop owns the guard: [`crate::tape::Tape`], `Grads`, and the
//!   loss `Saved` states return their buffers on drop, which all happens
//!   inside the step, before the guard itself is released at end of run.
//!   Gradients the optimizer takes *out* of `Grads` are handed back
//!   explicitly through [`recycle_matrix`] once applied — every per-step take
//!   site needs a matching recycle or the pool misses on that class forever.
//! - When the last guard drops the pool is freed outright — an idle process
//!   retains no memory.
//!
//! Buffers are bucketed by power-of-two capacity. Fresh allocations round the
//! requested length up to the next power of two so a buffer can be re-served
//! for any request in its class; foreign buffers (allocated elsewhere, e.g.
//! `Matrix::zeros`) are bucketed by the largest power of two they can hold.
//! Retained bytes are capped at a multiple of the observed take high-water
//! mark, so a long run cannot grow the pool without bound.
//!
//! Counters `arena.take.hit` / `arena.take.miss` and gauges
//! `arena.retained_bytes` / `arena.hwm_bytes` are exported through the
//! `gcmae-obs` registry when an observer is installed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::matrix::Matrix;

/// Number of live [`ArenaGuard`]s.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Floor for the retained-bytes cap, so small workloads still get full reuse.
const MIN_RETAIN_BYTES: usize = 16 * 1024 * 1024;

#[derive(Default)]
struct Pool {
    /// `buckets[c]` holds buffers with `capacity >= 1 << c`.
    buckets: Vec<Vec<Vec<f32>>>,
    /// Bytes currently parked in `buckets`.
    retained_bytes: usize,
    /// High-water mark of bytes handed out by `take_*` and not yet recycled.
    outstanding_bytes: usize,
    outstanding_hwm: usize,
    /// High-water mark of `retained + outstanding` (the arena footprint).
    hwm_bytes: usize,
    hits: u64,
    misses: u64,
}

static POOL: Mutex<Pool> = Mutex::new(Pool {
    buckets: Vec::new(),
    retained_bytes: 0,
    outstanding_bytes: 0,
    outstanding_hwm: 0,
    hwm_bytes: 0,
    hits: 0,
    misses: 0,
});

/// Point-in-time arena statistics (test/diagnostic mirror of the obs export).
#[derive(Clone, Copy, Debug, Default)]
pub struct ArenaStats {
    /// `take_*` calls served from the pool.
    pub hits: u64,
    /// `take_*` calls that fell back to a fresh allocation.
    pub misses: u64,
    /// Bytes currently parked in the pool.
    pub retained_bytes: usize,
    /// High-water mark of pool + in-flight bytes.
    pub hwm_bytes: usize,
}

/// Snapshot of the arena counters.
pub fn stats() -> ArenaStats {
    let p = lock_pool();
    ArenaStats {
        hits: p.hits,
        misses: p.misses,
        retained_bytes: p.retained_bytes,
        hwm_bytes: p.hwm_bytes,
    }
}

/// RAII handle that turns buffer retention on for its lifetime. Guards nest;
/// the pool is freed when the last one drops.
#[must_use = "the arena only retains buffers while the guard is alive"]
pub struct ArenaGuard(());

impl ArenaGuard {
    /// Activates the arena (nestable).
    pub fn new() -> Self {
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        ArenaGuard(())
    }
}

impl Default for ArenaGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ArenaGuard {
    fn drop(&mut self) {
        if ACTIVE.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut p = lock_pool();
            p.buckets.clear();
            p.retained_bytes = 0;
            publish_gauges(&p);
        }
    }
}

fn lock_pool() -> std::sync::MutexGuard<'static, Pool> {
    // A poisoned pool mutex only means a panic unwound mid-recycle; the pool
    // state is still structurally valid (worst case a buffer was leaked).
    POOL.lock().unwrap_or_else(|e| e.into_inner())
}

fn publish_gauges(p: &Pool) {
    if gcmae_obs::enabled() {
        gcmae_obs::gauge_set("arena.retained_bytes", p.retained_bytes as f64);
        gcmae_obs::gauge_set("arena.hwm_bytes", p.hwm_bytes as f64);
    }
}

/// Bucket index for a fresh request: round up, so one buffer serves any
/// request in its class.
fn class_up(len: usize) -> usize {
    (usize::BITS - len.next_power_of_two().leading_zeros() - 1) as usize
}

/// Bucket index for a returning buffer: round down, so every buffer in bucket
/// `c` is guaranteed to hold `1 << c` elements.
fn class_down(cap: usize) -> usize {
    (usize::BITS - cap.leading_zeros() - 1) as usize
}

fn take(len: usize, zero: bool) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let class = class_up(len);
    let mut p = lock_pool();
    let reused = p.buckets.get_mut(class).and_then(Vec::pop);
    match reused {
        Some(mut v) => {
            p.hits += 1;
            gcmae_obs::counter_add("arena.take.hit", 1);
            p.retained_bytes -= v.capacity() * 4;
            note_outgoing(&mut p, v.capacity());
            drop(p);
            // `resize` zero-fills only the region beyond the old length; the
            // dirty variant relies on the caller overwriting every element.
            v.resize(len, 0.0);
            if zero {
                v.fill(0.0);
            }
            v
        }
        None => {
            p.misses += 1;
            gcmae_obs::counter_add("arena.take.miss", 1);
            let cap = 1usize << class;
            note_outgoing(&mut p, cap);
            drop(p);
            let mut v = Vec::with_capacity(cap);
            v.resize(len, 0.0);
            v
        }
    }
}

fn note_outgoing(p: &mut Pool, cap: usize) {
    p.outstanding_bytes += cap * 4;
    p.outstanding_hwm = p.outstanding_hwm.max(p.outstanding_bytes);
    let footprint = p.outstanding_bytes + p.retained_bytes;
    if footprint > p.hwm_bytes {
        p.hwm_bytes = footprint;
    }
    publish_gauges(p);
}

/// Takes a buffer of `len` elements with unspecified contents: the caller
/// must overwrite every element before reading.
pub(crate) fn take_dirty(len: usize) -> Vec<f32> {
    take(len, false)
}

/// Takes a zero-filled buffer of `len` elements.
pub(crate) fn take_zeroed(len: usize) -> Vec<f32> {
    take(len, true)
}

/// Returns a buffer to the pool (drops it when no guard is active or the
/// retention cap is reached).
pub(crate) fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap == 0 {
        return;
    }
    let mut p = lock_pool();
    p.outstanding_bytes = p.outstanding_bytes.saturating_sub(cap * 4);
    if ACTIVE.load(Ordering::SeqCst) == 0 {
        publish_gauges(&p);
        return; // `v` drops normally
    }
    let limit = (4 * p.outstanding_hwm).max(MIN_RETAIN_BYTES);
    if p.retained_bytes + cap * 4 > limit {
        publish_gauges(&p);
        return;
    }
    let class = class_down(cap);
    if p.buckets.len() <= class {
        p.buckets.resize_with(class + 1, Vec::new);
    }
    p.buckets[class].push(v);
    p.retained_bytes += cap * 4;
    let footprint = p.outstanding_bytes + p.retained_bytes;
    if footprint > p.hwm_bytes {
        p.hwm_bytes = footprint;
    }
    publish_gauges(&p);
}

/// Arena-backed `rows × cols` matrix with unspecified contents; every element
/// must be written before use.
pub(crate) fn matrix_dirty(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, take_dirty(rows * cols))
}

/// Arena-backed zero-filled `rows × cols` matrix.
pub(crate) fn matrix_zeroed(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, take_zeroed(rows * cols))
}

/// Arena-backed copy of `m`.
pub(crate) fn copy_of(m: &Matrix) -> Matrix {
    let mut v = take_dirty(m.len());
    v.copy_from_slice(m.as_slice());
    Matrix::from_vec(m.rows(), m.cols(), v)
}

/// Recycles a matrix's backing buffer. Public so that downstream consumers of
/// arena-backed matrices that escape the tape — the optimizer takes ownership
/// of parameter gradients via `Grads::take` — can return them to the pool.
/// A no-op (plain drop) when no [`ArenaGuard`] is active.
pub fn recycle_matrix(m: Matrix) {
    recycle(m.into_vec());
}

#[cfg(test)]
mod tests {
    use super::*;

    // Arena tests share process-global state with each other (and with any
    // test that trains under a guard), so they serialize on one mutex.
    static ARENA_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        ARENA_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn no_guard_means_no_retention() {
        let _l = locked();
        recycle(vec![1.0; 100]);
        let before = stats();
        let v = take_dirty(100);
        assert_eq!(v.len(), 100);
        let after = stats();
        assert_eq!(
            after.hits, before.hits,
            "nothing may be served from the pool"
        );
    }

    #[test]
    fn guard_enables_reuse_and_classes_round_up() {
        let _l = locked();
        let guard = ArenaGuard::new();
        let v = take_zeroed(100); // capacity rounds to 128
        assert!(v.capacity() >= 128);
        recycle(v);
        let before = stats();
        let w = take_zeroed(120); // same class → must hit
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
        assert!(w.iter().all(|&x| x == 0.0));
        drop(guard);
        assert_eq!(stats().retained_bytes, 0, "last guard drop frees the pool");
    }

    #[test]
    fn zeroed_take_clears_recycled_garbage() {
        let _l = locked();
        let _guard = ArenaGuard::new();
        recycle(vec![7.0; 64]);
        let v = take_zeroed(64);
        assert!(v.iter().all(|&x| x == 0.0));
        let d = take_dirty(64); // miss (bucket drained) → fresh zeroed alloc
        assert_eq!(d.len(), 64);
    }

    #[test]
    fn nested_guards_keep_pool_until_last() {
        let _l = locked();
        let outer = ArenaGuard::new();
        {
            let _inner = ArenaGuard::new();
            recycle(vec![0.0; 256]);
        }
        assert!(
            stats().retained_bytes > 0,
            "inner drop must not clear the pool"
        );
        drop(outer);
        assert_eq!(stats().retained_bytes, 0);
    }
}
