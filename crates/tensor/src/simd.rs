//! AVX2/FMA kernel implementations for the Simd backend (x86-64 only).
//!
//! Structural twins of the Reference kernels in [`crate::dense`]: the same
//! packed `[strip][k][16]` B panels, the same adaptive panel width, the same
//! parallel row partitioning, and the same scalar edge handling for the
//! `n % 16` column remainder — only the microkernel changes. The register
//! tile grows from 4×16 to 6×16 (12 ymm accumulators, two 8-wide strip
//! loads and one broadcast per step, `_mm256_fmadd_ps` for the update),
//! which is enough independent FMA chains to saturate both FMA ports.
//!
//! On hosts that additionally report AVX-512F, the gemm strip loop upgrades
//! to a 6×32 zmm tile over *pairs* of packed strips ([`micro_6x32`]): one
//! 512-bit register covers a full 16-wide strip, so the pair keeps the same
//! 12 independent FMA chains while doubling the flops per instruction. Odd
//! trailing strips fall back to the ymm kernel; the choice is probed once
//! per chunk from the cached [`crate::backend::cpu_features`].
//!
//! ## Numerical contract
//!
//! FMA contracts each multiply-add into a single rounding and the dot
//! reductions accumulate in 8-lane partial sums, so these kernels are *not*
//! bit-identical to Reference. Parity is tolerance-based (relative error,
//! see `crates/tensor/tests/backend_parity.rs`); the column-edge remainder
//! intentionally reuses the scalar [`crate::dense::edge_row`], which is
//! bit-equal to Reference there and only tightens the bound.
//!
//! Every function in this module is `unsafe`: callers must have verified
//! AVX2+FMA via [`crate::backend::simd_supported`] (the dispatch gate
//! [`crate::backend::simd_active`] does exactly that).

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

use crate::dense::{edge_row, panel_width, IC, NR};
use crate::matrix::Matrix;

/// Rows of the output block held in registers by the Simd microkernel.
pub(crate) const MR_SIMD: usize = 6;

/// Horizontal sum of an 8-lane f32 vector.
#[inline]
#[target_feature(enable = "avx")]
unsafe fn hsum256(v: __m256) -> f32 {
    let hi = _mm256_extractf128_ps(v, 1);
    let lo = _mm256_castps256_ps128(v);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
    _mm_cvtss_f32(s)
}

/// FMA dot product: four 8-lane accumulators, scalar `mul_add` tail.
///
/// # Safety
/// The caller must have verified AVX2+FMA support.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = [_mm256_setzero_ps(); 4];
    let mut p = 0;
    while p + 32 <= n {
        for (l, acc) in acc.iter_mut().enumerate() {
            let av = _mm256_loadu_ps(ap.add(p + l * 8));
            let bv = _mm256_loadu_ps(bp.add(p + l * 8));
            *acc = _mm256_fmadd_ps(av, bv, *acc);
        }
        p += 32;
    }
    while p + 8 <= n {
        acc[0] = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(p)), _mm256_loadu_ps(bp.add(p)), acc[0]);
        p += 8;
    }
    let sum = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
    let mut out = hsum256(sum);
    while p < n {
        out = (*ap.add(p)).mul_add(*bp.add(p), out);
        p += 1;
    }
    out
}

/// 8-lane row maximum; `-inf` for an empty slice. `f32::max` semantics for
/// finite inputs (NaN handling is the guard layer's job, as in Reference).
///
/// # Safety
/// The caller must have verified AVX2+FMA support.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn row_max(xs: &[f32]) -> f32 {
    let n = xs.len();
    let p = xs.as_ptr();
    let mut i = 0;
    let mut best = f32::NEG_INFINITY;
    if n >= 8 {
        let mut m = _mm256_loadu_ps(p);
        i = 8;
        while i + 8 <= n {
            m = _mm256_max_ps(m, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let hi = _mm256_extractf128_ps(m, 1);
        let lo = _mm256_castps256_ps128(m);
        let s = _mm_max_ps(lo, hi);
        let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0b01));
        best = _mm_cvtss_f32(s);
    }
    while i < n {
        best = best.max(*p.add(i));
        i += 1;
    }
    best
}

/// `6 × 16` FMA inner kernel over one packed `[p][16]` strip: 12 ymm
/// accumulators carry the full `k` depth, then each row stores once.
///
/// # Safety
/// AVX2+FMA must be supported; `chunk` must hold rows `i..i+6` of width `n`
/// with columns `j..j+16` in range; every `rows[r]` has `≥ k` elements where
/// `k = bp.len() / 16`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_6x16(
    rows: [&[f32]; MR_SIMD],
    bp: &[f32],
    n: usize,
    j: usize,
    chunk: &mut [f32],
    i: usize,
) {
    let k = bp.len() / NR;
    let bptr = bp.as_ptr();
    let mut lo = [_mm256_setzero_ps(); MR_SIMD];
    let mut hi = [_mm256_setzero_ps(); MR_SIMD];
    for p in 0..k {
        let b0 = _mm256_loadu_ps(bptr.add(p * NR));
        let b1 = _mm256_loadu_ps(bptr.add(p * NR + 8));
        for r in 0..MR_SIMD {
            let av = _mm256_set1_ps(*rows[r].get_unchecked(p));
            lo[r] = _mm256_fmadd_ps(av, b0, lo[r]);
            hi[r] = _mm256_fmadd_ps(av, b1, hi[r]);
        }
    }
    let out = chunk.as_mut_ptr();
    for r in 0..MR_SIMD {
        let at = (i + r) * n + j;
        _mm256_storeu_ps(out.add(at), lo[r]);
        _mm256_storeu_ps(out.add(at + 8), hi[r]);
    }
}

/// `6 × 32` AVX-512 inner kernel over two adjacent packed strips: one zmm
/// register spans exactly one 16-wide strip, so the pair gives 12 independent
/// 16-lane FMA chains — enough to saturate both 512-bit FMA ports on servers
/// that have them, doubling the AVX2 ceiling.
///
/// # Safety
/// AVX-512F must be supported; `chunk` must hold rows `i..i+6` of width `n`
/// with columns `j..j+32` in range; `bp0`/`bp1` are the two packed strips,
/// each `k × 16` long; every `rows[r]` has `≥ k` elements.
#[target_feature(enable = "avx512f")]
unsafe fn micro_6x32(
    rows: [&[f32]; MR_SIMD],
    bp0: &[f32],
    bp1: &[f32],
    n: usize,
    j: usize,
    chunk: &mut [f32],
    i: usize,
) {
    let k = bp0.len() / NR;
    let b0p = bp0.as_ptr();
    let b1p = bp1.as_ptr();
    let mut acc0 = [_mm512_setzero_ps(); MR_SIMD];
    let mut acc1 = [_mm512_setzero_ps(); MR_SIMD];
    for p in 0..k {
        let b0 = _mm512_loadu_ps(b0p.add(p * NR));
        let b1 = _mm512_loadu_ps(b1p.add(p * NR));
        for r in 0..MR_SIMD {
            let av = _mm512_set1_ps(*rows[r].get_unchecked(p));
            acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
        }
    }
    let out = chunk.as_mut_ptr();
    for r in 0..MR_SIMD {
        let at = (i + r) * n + j;
        _mm512_storeu_ps(out.add(at), acc0[r]);
        _mm512_storeu_ps(out.add(at + NR), acc1[r]);
    }
}

/// How many strips ahead of the current output tile to prefetch. The store
/// stream is the bottleneck for LLC-dwarfing outputs (each 6×16 tile misses
/// six fresh lines, and the demand-store miss queue is what caps large-`n`
/// throughput), so the strip loop prefetches the tile this many strips ahead
/// while the FMAs of the current tile retire.
const PF_STRIPS: usize = 4;

/// Output chunks below this size skip the store prefetch: a cache-resident
/// output has no store misses to hide, and the extra prefetch traffic only
/// costs load-port slots.
const PF_MIN_BYTES: usize = 2 << 20;

/// Prefetches the six output lines of the tile `PF_STRIPS` strips ahead.
///
/// # Safety
/// Prefetch is a hint and never faults; `out` need only be a valid pointer
/// base.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn prefetch_tile(out: *const f32, n: usize, i: usize, j: usize) {
    for r in 0..MR_SIMD {
        _mm_prefetch::<_MM_HINT_T0>(out.add((i + r) * n + j).cast::<i8>());
    }
}

/// Single-row variant of the 16-wide FMA strip kernel.
///
/// # Safety
/// As [`micro_6x16`], for one row.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_1x16(ar: &[f32], bp: &[f32], j: usize, out_row: &mut [f32]) {
    let k = bp.len() / NR;
    let bptr = bp.as_ptr();
    let mut lo = _mm256_setzero_ps();
    let mut hi = _mm256_setzero_ps();
    for p in 0..k {
        let av = _mm256_set1_ps(*ar.get_unchecked(p));
        lo = _mm256_fmadd_ps(av, _mm256_loadu_ps(bptr.add(p * NR)), lo);
        hi = _mm256_fmadd_ps(av, _mm256_loadu_ps(bptr.add(p * NR + 8)), hi);
    }
    let out = out_row.as_mut_ptr();
    _mm256_storeu_ps(out.add(j), lo);
    _mm256_storeu_ps(out.add(j + 8), hi);
}

/// Simd twin of [`crate::dense::gemm_chunk`]: same panel walk, 6-row blocks.
///
/// # Safety
/// AVX2+FMA must be supported (the dispatch gate guarantees it); the slice
/// contracts are identical to the Reference chunk kernel's.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn gemm_chunk(
    a: &Matrix,
    b: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    let rows = chunk.len() / n;
    let strips = n / NR;
    let per_panel = panel_width(k) / NR;
    let pf = std::mem::size_of_val(chunk) >= PF_MIN_BYTES;
    let wide = crate::backend::cpu_features().avx512f;
    let mut ib = 0;
    while ib < rows {
        let ie = (ib + IC).min(rows);
        let mut sb = 0;
        while sb < strips {
            let se = (sb + per_panel).min(strips);
            let mut i = ib;
            while i + MR_SIMD <= ie {
                let ar = [
                    a.row(r0 + i),
                    a.row(r0 + i + 1),
                    a.row(r0 + i + 2),
                    a.row(r0 + i + 3),
                    a.row(r0 + i + 4),
                    a.row(r0 + i + 5),
                ];
                let mut s = sb;
                while wide && s + 2 <= se {
                    if pf && s + PF_STRIPS < se {
                        prefetch_tile(chunk.as_ptr(), n, i, (s + PF_STRIPS) * NR);
                        prefetch_tile(chunk.as_ptr(), n, i, (s + 1 + PF_STRIPS) * NR);
                    }
                    micro_6x32(
                        ar,
                        &pack[s * k * NR..(s + 1) * k * NR],
                        &pack[(s + 1) * k * NR..(s + 2) * k * NR],
                        n,
                        s * NR,
                        chunk,
                        i,
                    );
                    s += 2;
                }
                while s < se {
                    if pf && s + PF_STRIPS < se {
                        prefetch_tile(chunk.as_ptr(), n, i, (s + PF_STRIPS) * NR);
                    }
                    let bp = &pack[s * k * NR..(s + 1) * k * NR];
                    micro_6x16(ar, bp, n, s * NR, chunk, i);
                    s += 1;
                }
                i += MR_SIMD;
            }
            while i < ie {
                let ar = a.row(r0 + i);
                let out_row = &mut chunk[i * n..(i + 1) * n];
                for s in sb..se {
                    micro_1x16(ar, &pack[s * k * NR..(s + 1) * k * NR], s * NR, out_row);
                }
                i += 1;
            }
            sb = se;
        }
        ib = ie;
    }
    let j0 = strips * NR;
    if j0 < n {
        for i in 0..rows {
            edge_row(a.row(r0 + i), b, n, j0, n, &mut chunk[i * n..(i + 1) * n]);
        }
    }
}

/// Simd twin of [`crate::dense::syrk_chunk`]: lower-triangle staircase with
/// 6-row blocks; full strips run the FMA microkernel up to the first row's
/// diagonal, the staircase past it stays on the scalar edge kernel.
///
/// # Safety
/// As [`gemm_chunk`]; `bt` is the unpacked `Aᵀ` for the edge reads.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn syrk_chunk(
    a: &Matrix,
    bt: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    let rows = chunk.len() / n;
    let mut i = 0;
    while i + MR_SIMD <= rows {
        let g = r0 + i;
        let ar = [
            a.row(g),
            a.row(g + 1),
            a.row(g + 2),
            a.row(g + 3),
            a.row(g + 4),
            a.row(g + 5),
        ];
        let mut j = 0;
        while j + NR <= g + 1 {
            let s = j / NR;
            micro_6x16(ar, &pack[s * k * NR..(s + 1) * k * NR], n, j, chunk, i);
            j += NR;
        }
        for (ii, row) in ar.iter().enumerate() {
            edge_row(row, bt, n, j, g + ii + 1, &mut chunk[(i + ii) * n..]);
        }
        i += MR_SIMD;
    }
    while i < rows {
        let g = r0 + i;
        let ar = a.row(g);
        let out_row = &mut chunk[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NR <= g + 1 {
            let s = j / NR;
            micro_1x16(ar, &pack[s * k * NR..(s + 1) * k * NR], j, out_row);
            j += NR;
        }
        edge_row(ar, bt, n, j, g + 1, out_row);
        i += 1;
    }
}
