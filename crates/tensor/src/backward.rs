//! Backward rules for every op — one reverse step per recorded node.

use crate::dense::{matmul, matmul_nt, matmul_tn};
use crate::matrix::Matrix;
use crate::node::{Op, TensorId};
use crate::ops::{adj_recon, gat, infonce, sampled, sce, softmax_ce, variance};
use crate::tape::Tape;

/// Accumulates `delta` into the gradient slot of `id` (skipping nodes that do
/// not require gradients). Deltas that are not moved into a slot go back to
/// the buffer arena.
fn acc(tape: &Tape, grads: &mut [Option<Matrix>], id: TensorId, delta: Matrix) {
    if !tape.nodes[id.0].requires {
        crate::arena::recycle_matrix(delta);
        return;
    }
    match &mut grads[id.0] {
        Some(g) => {
            g.add_assign(&delta);
            crate::arena::recycle_matrix(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Propagates the output gradient `g` of node `i` into its inputs.
pub(crate) fn step(tape: &Tape, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
    let node = &tape.nodes[i];
    match &node.op {
        Op::Leaf | Op::Constant => {}

        Op::MatMul(a, b) => {
            // C = A·B ⇒ dA = G·Bᵀ, dB = Aᵀ·G
            if tape.nodes[a.0].requires {
                acc(tape, grads, *a, matmul_nt(g, tape.value(*b)));
            }
            if tape.nodes[b.0].requires {
                acc(tape, grads, *b, matmul_tn(tape.value(*a), g));
            }
        }
        Op::MatMulNT(a, b) => {
            // C = A·Bᵀ ⇒ dA = G·B, dB = Gᵀ·A
            if tape.nodes[a.0].requires {
                acc(tape, grads, *a, matmul(g, tape.value(*b)));
            }
            if tape.nodes[b.0].requires {
                acc(tape, grads, *b, matmul_tn(g, tape.value(*a)));
            }
        }
        Op::SpMM { bwd, rhs, .. } => {
            acc(tape, grads, *rhs, bwd.matmul_dense(g));
        }
        Op::Add(a, b) => {
            acc(tape, grads, *a, crate::arena::copy_of(g));
            acc(tape, grads, *b, crate::arena::copy_of(g));
        }
        Op::Sub(a, b) => {
            acc(tape, grads, *a, crate::arena::copy_of(g));
            let mut neg = crate::arena::copy_of(g);
            neg.scale_inplace(-1.0);
            acc(tape, grads, *b, neg);
        }
        Op::Hadamard(a, b) => {
            if tape.nodes[a.0].requires {
                let mut d = crate::arena::copy_of(g);
                for (x, &y) in d.as_mut_slice().iter_mut().zip(tape.value(*b).as_slice()) {
                    *x *= y;
                }
                acc(tape, grads, *a, d);
            }
            if tape.nodes[b.0].requires {
                let mut d = crate::arena::copy_of(g);
                for (x, &y) in d.as_mut_slice().iter_mut().zip(tape.value(*a).as_slice()) {
                    *x *= y;
                }
                acc(tape, grads, *b, d);
            }
        }
        Op::Scale(a, c) => {
            let mut d = crate::arena::copy_of(g);
            d.scale_inplace(*c);
            acc(tape, grads, *a, d);
        }
        Op::AddBias { input, bias } => {
            acc(tape, grads, *input, crate::arena::copy_of(g));
            if tape.nodes[bias.0].requires {
                let mut d = crate::arena::matrix_zeroed(1, g.cols());
                for r in 0..g.rows() {
                    for (o, &gv) in d.row_mut(0).iter_mut().zip(g.row(r)) {
                        *o += gv;
                    }
                }
                acc(tape, grads, *bias, d);
            }
        }
        Op::Transpose(a) => {
            acc(tape, grads, *a, g.transposed());
        }

        Op::Relu(a) => {
            let mut d = crate::arena::copy_of(g);
            for (x, &v) in d.as_mut_slice().iter_mut().zip(tape.value(*a).as_slice()) {
                if v <= 0.0 {
                    *x = 0.0;
                }
            }
            acc(tape, grads, *a, d);
        }
        Op::LeakyRelu(a, slope) => {
            let mut d = crate::arena::copy_of(g);
            for (x, &v) in d.as_mut_slice().iter_mut().zip(tape.value(*a).as_slice()) {
                if v <= 0.0 {
                    *x *= slope;
                }
            }
            acc(tape, grads, *a, d);
        }
        Op::Elu(a, alpha) => {
            // out = x>0 ? x : α(eˣ−1) ⇒ d = x>0 ? 1 : out+α
            let mut d = crate::arena::copy_of(g);
            let input = tape.value(*a);
            for ((x, &v), &o) in d
                .as_mut_slice()
                .iter_mut()
                .zip(input.as_slice())
                .zip(node.value.as_slice())
            {
                if v <= 0.0 {
                    *x *= o + alpha;
                }
            }
            acc(tape, grads, *a, d);
        }
        Op::Sigmoid(a) => {
            let mut d = crate::arena::copy_of(g);
            for (x, &o) in d.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                *x *= o * (1.0 - o);
            }
            acc(tape, grads, *a, d);
        }
        Op::Tanh(a) => {
            let mut d = crate::arena::copy_of(g);
            for (x, &o) in d.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                *x *= 1.0 - o * o;
            }
            acc(tape, grads, *a, d);
        }
        Op::Exp(a) => {
            let mut d = crate::arena::copy_of(g);
            for (x, &o) in d.as_mut_slice().iter_mut().zip(node.value.as_slice()) {
                *x *= o;
            }
            acc(tape, grads, *a, d);
        }

        Op::RowNormalize { input, norms } => {
            // y = x/‖x‖ ⇒ dx = (g − (g·y)y)/‖x‖ — rows are independent.
            let y = &node.value;
            let cols = g.cols();
            // Fully written when cols > 0 and empty otherwise: dirty is safe.
            let mut d = crate::arena::matrix_dirty(g.rows(), cols);
            if cols > 0 {
                crate::parallel::par_row_chunks_cost(d.as_mut_slice(), cols, 4 * cols, |r0, chunk| {
                    for (dr, orow) in chunk.chunks_mut(cols).enumerate() {
                        let r = r0 + dr;
                        let gr = g.row(r);
                        let yr = y.row(r);
                        let gy: f32 = gr.iter().zip(yr).map(|(a, b)| a * b).sum();
                        let inv = 1.0 / norms[r];
                        for ((o, &gv), &yv) in orow.iter_mut().zip(gr).zip(yr) {
                            *o = (gv - gy * yv) * inv;
                        }
                    }
                });
            }
            acc(tape, grads, *input, d);
        }
        Op::StandardizeCols { input, stds } => {
            // Per column: x̂ = (x−μ)/σ ⇒ dx = (1/σ)(dŷ − mean(dŷ) − x̂·mean(dŷ·x̂))
            let y = &node.value;
            let (n, dcols) = y.shape();
            let mut mean_g = vec![0.0f32; dcols];
            let mut mean_gy = vec![0.0f32; dcols];
            for r in 0..n {
                for ((mg, &gv), (mgy, &yv)) in mean_g
                    .iter_mut()
                    .zip(g.row(r))
                    .zip(mean_gy.iter_mut().zip(y.row(r)))
                {
                    *mg += gv;
                    *mgy += gv * yv;
                }
            }
            for v in &mut mean_g {
                *v /= n as f32;
            }
            for v in &mut mean_gy {
                *v /= n as f32;
            }
            let mut d = crate::arena::matrix_dirty(n, dcols);
            for r in 0..n {
                for c in 0..dcols {
                    d[(r, c)] =
                        (g[(r, c)] - mean_g[c] - y[(r, c)] * mean_gy[c]) / stds[c];
                }
            }
            acc(tape, grads, *input, d);
        }
        Op::Dropout { input, mask } => {
            let mut d = crate::arena::copy_of(g);
            for (x, &m) in d.as_mut_slice().iter_mut().zip(mask.iter()) {
                *x *= m;
            }
            acc(tape, grads, *input, d);
        }
        Op::MaskRows { input, rows } => {
            let mut d = crate::arena::copy_of(g);
            for &r in rows {
                d.row_mut(r).fill(0.0);
            }
            acc(tape, grads, *input, d);
        }
        Op::GatherRows { input, rows, in_rows } => {
            // Scatter-accumulate target: rows may repeat, so it must be zeroed.
            let mut d = crate::arena::matrix_zeroed(*in_rows, g.cols());
            for (i, &r) in rows.iter().enumerate() {
                for (o, &gv) in d.row_mut(r).iter_mut().zip(g.row(i)) {
                    *o += gv;
                }
            }
            acc(tape, grads, *input, d);
        }
        Op::ConcatCols(parts) => {
            let mut off = 0;
            for &p in parts {
                let w = tape.value(p).cols();
                if tape.nodes[p.0].requires {
                    let mut d = crate::arena::matrix_dirty(g.rows(), w);
                    for r in 0..g.rows() {
                        d.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                    }
                    acc(tape, grads, p, d);
                }
                off += w;
            }
        }

        Op::MeanRows(a) => {
            let n = tape.value(*a).rows();
            let mut d = crate::arena::matrix_dirty(n, g.cols());
            let inv = 1.0 / n as f32;
            for r in 0..n {
                for (o, &gv) in d.row_mut(r).iter_mut().zip(g.row(0)) {
                    *o = gv * inv;
                }
            }
            acc(tape, grads, *a, d);
        }
        Op::SegmentMean { input, segments, counts } => {
            let x = tape.value(*input);
            // `segments` names every row exactly once: fully written.
            let mut d = crate::arena::matrix_dirty(x.rows(), x.cols());
            for (r, &s) in segments.iter().enumerate() {
                let s = s as usize;
                let inv = 1.0 / counts[s].max(1.0);
                for (o, &gv) in d.row_mut(r).iter_mut().zip(g.row(s)) {
                    *o = gv * inv;
                }
            }
            acc(tape, grads, *input, d);
        }
        Op::SumAll(a) => {
            let x = tape.value(*a);
            let mut d = crate::arena::matrix_dirty(x.rows(), x.cols());
            d.as_mut_slice().fill(g.scalar_value());
            acc(tape, grads, *a, d);
        }
        Op::MeanAll(a) => {
            let x = tape.value(*a);
            let v = g.scalar_value() / x.len() as f32;
            let mut d = crate::arena::matrix_dirty(x.rows(), x.cols());
            d.as_mut_slice().fill(v);
            acc(tape, grads, *a, d);
        }
        Op::FrobSq(a) => {
            let mut d = crate::arena::copy_of(tape.value(*a));
            d.scale_inplace(2.0 * g.scalar_value());
            acc(tape, grads, *a, d);
        }

        Op::SoftmaxCe { logits, saved } => {
            let d = softmax_ce::backward(saved, tape.value(*logits).shape(), g.scalar_value());
            acc(tape, grads, *logits, d);
        }
        Op::BceWithLogits { logits, targets } => {
            let l = tape.value(*logits);
            let scale = g.scalar_value() / l.len() as f32;
            let mut d = crate::arena::matrix_dirty(l.rows(), l.cols());
            for ((o, &x), &t) in d
                .as_mut_slice()
                .iter_mut()
                .zip(l.as_slice())
                .zip(targets.as_slice())
            {
                let s = 1.0 / (1.0 + (-x).exp());
                *o = scale * (s - t);
            }
            acc(tape, grads, *logits, d);
        }
        Op::Sce { pred, saved } => {
            let d = sce::backward(saved, tape.value(*pred), g.scalar_value());
            acc(tape, grads, *pred, d);
        }
        Op::InfoNce { u, v, saved } => {
            let (du, dv) = infonce::backward(saved, g.scalar_value());
            acc(tape, grads, *u, du);
            acc(tape, grads, *v, dv);
        }
        Op::AdjRecon { z, saved } => {
            let d = adj_recon::backward(saved, tape.value(*z), g.scalar_value());
            acc(tape, grads, *z, d);
        }
        Op::InfoNceSampled { u, v, saved } => {
            let (du, dv) = sampled::info_nce_backward(saved, g.scalar_value());
            acc(tape, grads, *u, du);
            acc(tape, grads, *v, dv);
        }
        Op::AdjReconSampled { z, saved } => {
            let d = sampled::adj_recon_backward(saved, tape.value(*z), g.scalar_value());
            acc(tape, grads, *z, d);
        }
        Op::VarianceHinge { input, saved } => {
            let d = variance::backward(saved, tape.value(*input), g.scalar_value());
            acc(tape, grads, *input, d);
        }
        Op::Gat { h, a_src, a_dst, saved } => {
            let (dh, dsrc, ddst) =
                gat::backward(saved, tape.value(*h), tape.value(*a_src), tape.value(*a_dst), g);
            acc(tape, grads, *h, dh);
            acc(tape, grads, *a_src, dsrc);
            acc(tape, grads, *a_dst, ddst);
        }
    }
}
