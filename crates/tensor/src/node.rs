//! Tape node and operation definitions.

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::ops::{adj_recon, gat, infonce, sampled, sce, softmax_ce, variance};
use crate::sparse::SharedCsr;

/// Identifier of a tensor on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TensorId(pub(crate) usize);

impl TensorId {
    /// Raw index (stable for the lifetime of the tape).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded operation. Saved state needed for the backward pass is stored
/// inline because the forward pass is eager.
pub(crate) enum Op {
    Leaf,
    Constant,
    MatMul(TensorId, TensorId),
    /// `A · Bᵀ`.
    MatMulNT(TensorId, TensorId),
    /// Sparse × dense; only the transpose (`bwd`) is needed after the eager
    /// forward multiplication.
    SpMM { bwd: SharedCsr, rhs: TensorId },
    Add(TensorId, TensorId),
    Sub(TensorId, TensorId),
    Hadamard(TensorId, TensorId),
    Scale(TensorId, f32),
    /// `(n×d) + (1×d)` broadcast.
    AddBias { input: TensorId, bias: TensorId },
    Transpose(TensorId),
    Relu(TensorId),
    LeakyRelu(TensorId, f32),
    Elu(TensorId, f32),
    Sigmoid(TensorId),
    Tanh(TensorId),
    Exp(TensorId),
    /// Row L2 normalization; saves the pre-normalization row norms.
    RowNormalize { input: TensorId, norms: Vec<f32> },
    /// Column standardization (zero mean / unit variance); saves the stds.
    StandardizeCols { input: TensorId, stds: Vec<f32> },
    /// Inverted dropout with a precomputed `{0, 1/(1−p)}` mask.
    Dropout { input: TensorId, mask: Arc<Vec<f32>> },
    /// Zeroes the listed rows.
    MaskRows { input: TensorId, rows: Vec<usize> },
    /// Gathers the listed rows into a new matrix.
    GatherRows { input: TensorId, rows: Vec<usize>, in_rows: usize },
    ConcatCols(Vec<TensorId>),
    /// Column means over all rows → `1 × d`.
    MeanRows(TensorId),
    /// Per-segment column means (graph read-out).
    SegmentMean { input: TensorId, segments: Arc<Vec<u32>>, counts: Vec<f32> },
    SumAll(TensorId),
    MeanAll(TensorId),
    /// Sum of squares of all entries.
    FrobSq(TensorId),
    SoftmaxCe { logits: TensorId, saved: softmax_ce::Saved },
    BceWithLogits { logits: TensorId, targets: Arc<Matrix> },
    Sce { pred: TensorId, saved: sce::Saved },
    InfoNce { u: TensorId, v: TensorId, saved: Box<infonce::Saved> },
    AdjRecon { z: TensorId, saved: Box<adj_recon::Saved> },
    InfoNceSampled { u: TensorId, v: TensorId, saved: Box<sampled::InfoNceSaved> },
    AdjReconSampled { z: TensorId, saved: Box<sampled::AdjReconSaved> },
    VarianceHinge { input: TensorId, saved: variance::Saved },
    Gat { h: TensorId, a_src: TensorId, a_dst: TensorId, saved: Box<gat::Saved> },
}

pub(crate) struct Node {
    pub value: Matrix,
    pub op: Op,
    /// Whether a gradient must be propagated into (or through) this node.
    pub requires: bool,
}
