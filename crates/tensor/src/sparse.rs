//! Compressed-sparse-row (CSR) matrices.
//!
//! Graph adjacency structure is stored once as an immutable [`CsrMatrix`] and
//! shared into the autograd tape behind an [`std::sync::Arc`], so augmented
//! views never copy the dense feature data.

use std::sync::Arc;

use crate::matrix::Matrix;
use crate::parallel::{par_row_blocks_by_cost, par_row_chunks_by_cost, RowTable};
use gcmae_obs::{kernel_span, KernelMetrics};

/// Sparse×dense products (full and row-restricted) share one metric family;
/// flops are counted as nnz·cols multiply-adds actually touched.
static SPMM_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.spmm.ns",
    calls: "kernel.spmm.calls",
    flops: "kernel.spmm.flops",
};

/// An immutable CSR sparse matrix of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw components.
    ///
    /// # Panics
    /// Panics if the components are inconsistent (wrong `indptr` length,
    /// non-monotone `indptr`, column index out of range, or mismatched
    /// `indices`/`values` lengths).
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr must have rows+1 entries");
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr tail mismatch"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be non-decreasing"
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds a CSR matrix from unsorted `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            assert!(r < rows, "row index {r} out of range");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let nnz = triplets.len();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = indptr.clone();
        for &(r, c, v) in triplets {
            assert!(c < cols, "col index {c} out of range");
            let pos = cursor[r];
            indices[pos] = c as u32;
            values[pos] = v;
            cursor[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_indptr = vec![0usize; rows + 1];
        let mut out_indices = Vec::with_capacity(nnz);
        let mut out_values = Vec::with_capacity(nnz);
        for r in 0..rows {
            let (s, e) = (indptr[r], indptr[r + 1]);
            let mut row: Vec<(u32, f32)> = indices[s..e]
                .iter()
                .copied()
                .zip(values[s..e].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let (c, mut v) = row[i];
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                out_indices.push(c);
                out_values.push(v);
                i = j;
            }
            out_indptr[r + 1] = out_indices.len();
        }
        Self {
            rows,
            cols,
            indptr: out_indptr,
            indices: out_indices,
            values: out_values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row pointer array (`rows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Iterator over `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Transposed copy (CSR of the transpose).
    pub fn transposed(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = indptr.clone();
        for (r, c, v) in self.iter() {
            let pos = cursor[c];
            indices[pos] = r as u32;
            values[pos] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Dense copy (for tests and small matrices only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out[(r, c)] += v;
        }
        out
    }

    /// Sparse × dense product `self * rhs`, written into a fresh matrix.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "spmm shape mismatch");
        // Arena-dirty is safe: `matmul_dense_into` overwrites every row.
        let mut out = crate::arena::matrix_dirty(self.rows, rhs.cols());
        self.matmul_dense_into(rhs, &mut out);
        out
    }

    /// Sparse × dense product accumulated into `out` (overwritten).
    pub fn matmul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows(), "spmm shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "spmm output shape mismatch"
        );
        let cols = rhs.cols();
        let _span = kernel_span(
            &SPMM_METRICS,
            (self.nnz() as u64).saturating_mul(cols as u64),
        );
        // Degree-weighted cost model: row `r` costs `nnz(r) · cols`
        // multiply-adds, so block boundaries land where the *work* balances,
        // not where the row count does. On power-law graphs an equal-rows
        // split strands most of the flops in the blocks that hold the hubs;
        // weighting by degree keeps every thread's share comparable. Per-row
        // arithmetic is untouched, so outputs stay bit-identical.
        par_row_chunks_by_cost(
            out.as_mut_slice(),
            cols,
            |r| self.row_nnz(r).max(1).saturating_mul(cols),
            |r0, chunk| {
                for (dr, out_row) in chunk.chunks_mut(cols).enumerate() {
                    let r = r0 + dr;
                    out_row.fill(0.0);
                    let (cs, vs) = self.row(r);
                    for (&c, &v) in cs.iter().zip(vs) {
                        let src = rhs.row(c as usize);
                        for (o, s) in out_row.iter_mut().zip(src) {
                            *o += v * s;
                        }
                    }
                }
            },
        );
    }

    /// Sparse × dense product restricted to the listed output rows.
    ///
    /// Writes row `r` of `self · rhs` into row `r` of `out` for every `r` in
    /// `rows`, leaving all other rows of `out` untouched. Each listed row runs
    /// the same per-row kernel as [`CsrMatrix::matmul_dense_into`], so the
    /// computed rows are bit-identical to a full product at any thread count.
    ///
    /// `rows` must not contain duplicates: listed rows are written by exactly
    /// one parallel participant each, and a repeated row would race.
    ///
    /// # Panics
    /// Panics on shape mismatch or an out-of-range row index.
    pub fn matmul_dense_rows(&self, rhs: &Matrix, rows: &[usize], out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows(), "spmm shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "spmm output shape mismatch"
        );
        assert!(
            rows.iter().all(|&r| r < self.rows),
            "row index out of range"
        );
        debug_assert!(
            {
                let mut seen = vec![false; self.rows];
                rows.iter().all(|&r| !std::mem::replace(&mut seen[r], true))
            },
            "duplicate row in restricted spmm"
        );
        let cols = rhs.cols();
        if cols == 0 {
            return;
        }
        // Exact flop attribution needs a pass over the listed rows; only pay
        // for it when somebody is listening.
        let flops = if gcmae_obs::enabled() {
            let nnz: u64 = rows.iter().map(|&r| self.row(r).0.len() as u64).sum();
            nnz.saturating_mul(cols as u64)
        } else {
            0
        };
        let _span = kernel_span(&SPMM_METRICS, flops);
        // Same degree-weighted cost model as the full product; the cost
        // function indexes the *listed* rows, so hub-heavy subsets split
        // evenly too.
        let table = RowTable::new(out.as_mut_slice(), cols);
        par_row_blocks_by_cost(
            rows.len(),
            |k| self.row_nnz(rows[k]).max(1).saturating_mul(cols),
            |range| {
                for &r in &rows[range] {
                    // SAFETY: `rows` is duplicate-free and parallel blocks
                    // are disjoint, so each listed row has exactly one
                    // writer.
                    let out_row = unsafe { table.row_mut(r) };
                    out_row.fill(0.0);
                    let (cs, vs) = self.row(r);
                    for (&c, &v) in cs.iter().zip(vs) {
                        let src = rhs.row(c as usize);
                        for (o, s) in out_row.iter_mut().zip(src) {
                            *o += v * s;
                        }
                    }
                }
            },
        );
    }

    /// Row-scaled copy: row `r` multiplied by `scales[r]`.
    pub fn scale_rows(&self, scales: &[f32]) -> CsrMatrix {
        assert_eq!(scales.len(), self.rows, "scale_rows length mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            let (s, e) = (out.indptr[r], out.indptr[r + 1]);
            for v in &mut out.values[s..e] {
                *v *= scales[r];
            }
        }
        out
    }

    /// `true` when `(r, c)` is a stored coordinate.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        let (cols, _) = self.row(r);
        cols.binary_search(&(c as u32)).is_ok()
    }
}

/// Shared handle to a CSR matrix, as stored inside tape operations.
pub type SharedCsr = Arc<CsrMatrix>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn triplets_roundtrip() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense().as_slice(), &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense()[(0, 1)], 3.5);
    }

    #[test]
    fn rows_are_sorted() {
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 1.0), (0, 2, 1.0)]);
        assert_eq!(m.indices(), &[0, 2, 3]);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(m.transposed().to_dense(), m.to_dense().transposed());
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let rhs = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let got = m.matmul_dense(&rhs);
        // dense product by hand
        assert_eq!(got.as_slice(), &[11.0, 14.0, 9.0, 12.0]);
    }

    #[test]
    fn restricted_spmm_matches_full_rows() {
        let mut triplets = Vec::new();
        for r in 0..64 {
            for k in 0..5 {
                triplets.push((r, (r * 7 + k * 13) % 64, 0.1 * (r + k) as f32 + 0.3));
            }
        }
        let m = CsrMatrix::from_triplets(64, 64, &triplets);
        let rhs = Matrix::from_fn(64, 9, |r, c| ((r * 9 + c) as f32).sin());
        let full = m.matmul_dense(&rhs);
        let rows = [0usize, 3, 17, 63, 40];
        let mut out = Matrix::from_fn(64, 9, |_, _| f32::NAN);
        m.matmul_dense_rows(&rhs, &rows, &mut out);
        for &r in &rows {
            assert_eq!(out.row(r), full.row(r), "row {r} must be bit-identical");
        }
        // untouched rows keep their prior contents
        assert!(out.row(1).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn contains_checks_membership() {
        let m = sample();
        assert!(m.contains(0, 2));
        assert!(!m.contains(0, 1));
        assert!(m.contains(1, 1));
    }

    #[test]
    fn scale_rows_scales() {
        let m = sample().scale_rows(&[2.0, 0.5]);
        assert_eq!(m.to_dense()[(0, 2)], 4.0);
        assert_eq!(m.to_dense()[(1, 1)], 1.5);
    }

    #[test]
    #[should_panic(expected = "indptr")]
    fn new_rejects_bad_indptr() {
        let _ = CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }
}
