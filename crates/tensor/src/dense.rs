//! Dense matrix-multiplication kernels.
//!
//! Three variants are provided because autograd needs products against
//! transposes: `A·B`, `A·Bᵀ`, and `Aᵀ·B`. All route through one cache-blocked,
//! register-tiled NN microkernel (`gemm_nn_into`); the transposed variants
//! first rewrite their strided operand into row-major order (via the tiled
//! [`Matrix::transposed`], recycled through the arena) and then share the
//! same packed NN path.
//!
//! ## Bit-identity of the blocked kernel
//!
//! Only the i/j loops are tiled and only data *layout* changes (packing is a
//! pure copy). Every output element still accumulates its `k` products in the
//! same sequential order the reference kernels use (`p = 0, 1, …, k-1` into a
//! single f32 accumulator), so the blocked kernels are bit-identical to them
//! at any thread count. Two references are kept for `A·B`:
//! [`matmul_naive`], the textbook i-j-k triple loop (scalar dot per output
//! element — the canonical baseline blocked-kernel speedups are quoted
//! against), and [`matmul_rowstream`], the pre-blocking production kernel
//! (i-k-j, load/FMA/store through the output row, skipping `a[i][p] == 0.0`
//! terms — bit-neutral for finite inputs, since the accumulator starts at
//! `+0.0` and adding `±0.0` to any partial sum reproduces it exactly). The
//! transposed references (`*_naive`) are per-element scalar dots. All serve
//! as oracles for the bit-identity proptests and as baseline rows in
//! `bench_kernels`.
//!
//! ## Tiling parameters
//!
//! The microkernel holds a 4-row × 16-column block of the output in
//! registers (a 4×4 block of 4-wide SIMD lanes: 64 independent f32
//! accumulators), so each `a` element is broadcast once per 16 column
//! products and each `b` strip is loaded once per 4 row products — instead
//! of the rowstream kernel's load/FMA/store round trip through the output
//! row for every single multiply. The full-width column strips of `b` are
//! packed once per call into a contiguous `[strip][k][16]` scratch, so the
//! inner loop streams consecutive cache lines instead of striding `n` floats
//! between `k`-steps; the `n % 16` remainder columns are handled by a scalar
//! edge kernel straight off the unpacked operand. Strips are grouped into
//! panels (up to 512 columns, narrowed for deep `k` by [`panel_width`] so a
//! packed panel stays cache-resident), and output rows are walked in
//! [`IC`]-row blocks with the panel loop *inside*: one row block revisits
//! every panel before the sweep moves down. Without the row blocking, a
//! panel sweep at large `m` touches every page of the output per panel
//! (`m×n` bytes of stores re-walked once per panel), which is what melted
//! the n=8192 single-thread numbers; with it, each panel pass stays inside
//! an `IC`-row window of the output. The i/j re-tiling changes nothing about
//! per-element `k` order, so bit-identity is untouched.
//!
//! ## Backends
//!
//! The blocked kernels here are the **Reference** backend. When the **Simd**
//! backend is active (see [`crate::backend`]) the per-chunk work is routed
//! to the AVX2/FMA twins in [`crate::simd`] instead — same packing, same
//! partitioning, same edge handling, different (FMA, tolerance-parity)
//! microkernel. The naive/rowstream reference kernels below never dispatch:
//! they are the frozen oracles.

use crate::matrix::Matrix;
use crate::parallel::{par_row_chunks_by_cost, par_row_chunks_cost};
use gcmae_obs::{kernel_span, KernelMetrics};

/// All dense variants report under one metric family: they share the same
/// m·k·n cost model and the split by transpose is an implementation detail of
/// autograd, not a workload distinction.
static MATMUL_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.matmul.ns",
    calls: "kernel.matmul.calls",
    flops: "kernel.matmul.flops",
};

fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    (m as u64).saturating_mul(k as u64).saturating_mul(n as u64)
}

/// Rows of the output block held in registers.
const MR: usize = 4;
/// Columns of the output block held in registers (4 SIMD lanes of 4).
pub(crate) const NR: usize = 16;
/// Maximum column panel width: the `k × JC` slice of `b` walked by one row
/// block (narrowed for deep `k` by [`panel_width`]).
const JC: usize = 512;
/// Output rows walked against one packed panel before the next panel is
/// visited: bounds the page working set of a panel pass to `IC` output rows.
pub(crate) const IC: usize = 128;

/// Column panel width for depth `k`: the widest multiple of [`NR`] in
/// `[128, JC]` that keeps one packed `k × width` panel within a 256 KiB
/// cache budget, so the panel a row block streams over stays L2-resident
/// even for deep products.
pub(crate) fn panel_width(k: usize) -> usize {
    /// 256 KiB of f32s.
    const PANEL_FLOATS: usize = 1 << 16;
    (PANEL_FLOATS / k.max(1) / NR * NR).clamp(8 * NR, JC)
}

/// `rows × 16` register-tiled inner kernel: accumulates the full `k` depth
/// for a 4×16 output block without touching memory, then stores each row
/// once. `bp` is one packed `[p][16]` column strip, so the inner loop walks
/// consecutive cache lines. Accumulation per output element is sequential in
/// `p`, matching the reference kernels bit-for-bit.
#[inline(always)]
fn micro_4x16(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    bp: &[f32],
    n: usize,
    j: usize,
    chunk: &mut [f32],
    i: usize,
) {
    let mut c = [[0.0f32; NR]; MR];
    for ((((&v0, &v1), &v2), &v3), br) in a0.iter().zip(a1).zip(a2).zip(a3).zip(bp.chunks_exact(NR))
    {
        let br: &[f32; NR] = br.try_into().expect("strip width");
        let av = [v0, v1, v2, v3];
        for ii in 0..MR {
            for jj in 0..NR {
                c[ii][jj] += av[ii] * br[jj];
            }
        }
    }
    for (ii, ci) in c.iter().enumerate() {
        let at = (i + ii) * n + j;
        chunk[at..at + NR].copy_from_slice(ci);
    }
}

/// Single-row variant of the 16-wide packed-strip kernel.
#[inline(always)]
fn micro_1x16(ar: &[f32], bp: &[f32], j: usize, out_row: &mut [f32]) {
    let mut c = [0.0f32; NR];
    for (&av, br) in ar.iter().zip(bp.chunks_exact(NR)) {
        let br: &[f32; NR] = br.try_into().expect("strip width");
        for jj in 0..NR {
            c[jj] += av * br[jj];
        }
    }
    out_row[j..j + NR].copy_from_slice(&c);
}

/// Packs the full 16-wide column strips of `b` (`k×n`, row-major) into a
/// contiguous `[strip][p][16]` scratch (held as a `(strips·k)×16` arena
/// matrix — strip `s` is rows `s·k..(s+1)·k`). A pure copy, shared read-only
/// by every worker; the `n % 16` remainder columns stay unpacked and are
/// handled by [`edge_row`] straight off `b`. Caller recycles the returned
/// matrix.
fn pack_strips(b: &[f32], k: usize, n: usize) -> Matrix {
    let strips = n / NR;
    let mut pack = crate::arena::matrix_dirty(strips * k, NR);
    let pdata = pack.as_mut_slice();
    for s in 0..strips {
        let j = s * NR;
        let dst = &mut pdata[s * k * NR..(s + 1) * k * NR];
        for (p, d) in dst.chunks_exact_mut(NR).enumerate() {
            d.copy_from_slice(&b[p * n + j..p * n + j + NR]);
        }
    }
    pack
}

/// Scalar edge kernel for the `< 16`-wide column remainder of one row;
/// `out_row` is the slice starting at the row's first column. Shared by both
/// backends (the Simd path keeps the scalar edge, bit-equal to Reference).
#[inline(always)]
pub(crate) fn edge_row(ar: &[f32], b: &[f32], n: usize, j0: usize, je: usize, out_row: &mut [f32]) {
    for j in j0..je {
        let mut acc = 0.0f32;
        for (p, &av) in ar.iter().enumerate() {
            acc += av * b[p * n + j];
        }
        out_row[j] = acc;
    }
}

/// Blocked `A (m×k) · B (k×n)` into `out` (every element is written).
fn gemm_nn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(out.shape(), (m, n));
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    let bdata = b.as_slice();
    let pack = pack_strips(bdata, k, n);
    let pdata = pack.as_slice();
    // Backend dispatch happens once per call; every parallel participant
    // then runs the same chunk kernel.
    let simd = crate::backend::simd_active();
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        k.max(1).saturating_mul(n),
        |r0, chunk| dispatch_gemm_chunk(simd, a, bdata, pdata, r0, chunk, n, k),
    );
    crate::arena::recycle_matrix(pack);
}

/// Routes one output-row chunk to the active backend's gemm kernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[inline]
fn dispatch_gemm_chunk(
    simd: bool,
    a: &Matrix,
    b: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    if simd {
        // SAFETY: `simd` comes from `backend::simd_active()`, which requires
        // runtime-detected AVX2+FMA.
        unsafe { crate::simd::gemm_chunk(a, b, pack, r0, chunk, n, k) }
    } else {
        gemm_chunk(a, b, pack, r0, chunk, n, k)
    }
}

/// Non-x86-64 hosts have no Simd implementation; the dispatch gate always
/// resolves to Reference there.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
#[inline]
fn dispatch_gemm_chunk(
    _simd: bool,
    a: &Matrix,
    b: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    gemm_chunk(a, b, pack, r0, chunk, n, k)
}

/// Blocked kernel over one contiguous block of output rows. `pack` is the
/// `[strip][p][16]` panel scratch from [`pack_strips`]; the `n % 16` column
/// remainder reads the unpacked `b` through [`edge_row`]. Rows advance in
/// [`IC`]-blocks with the panel loop inside (see the module docs).
fn gemm_chunk(
    a: &Matrix,
    b: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    let rows = chunk.len() / n;
    let strips = n / NR;
    let per_panel = panel_width(k) / NR;
    let mut ib = 0;
    while ib < rows {
        let ie = (ib + IC).min(rows);
        let mut sb = 0;
        while sb < strips {
            let se = (sb + per_panel).min(strips);
            let mut i = ib;
            while i + MR <= ie {
                let a0 = a.row(r0 + i);
                let a1 = a.row(r0 + i + 1);
                let a2 = a.row(r0 + i + 2);
                let a3 = a.row(r0 + i + 3);
                for s in sb..se {
                    let bp = &pack[s * k * NR..(s + 1) * k * NR];
                    micro_4x16(a0, a1, a2, a3, bp, n, s * NR, chunk, i);
                }
                i += MR;
            }
            while i < ie {
                let ar = a.row(r0 + i);
                let out_row = &mut chunk[i * n..(i + 1) * n];
                for s in sb..se {
                    micro_1x16(ar, &pack[s * k * NR..(s + 1) * k * NR], s * NR, out_row);
                }
                i += 1;
            }
            sb = se;
        }
        ib = ie;
    }
    let j0 = strips * NR;
    if j0 < n {
        for i in 0..rows {
            edge_row(a.row(r0 + i), b, n, j0, n, &mut chunk[i * n..(i + 1) * n]);
        }
    }
}

/// `A (m×k) · B (k×n) → (m×n)`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = crate::arena::matrix_dirty(m, n);
    gemm_nn_into(a, b, &mut out);
    out
}

/// `A (m×k) · Bᵀ (k×n from B n×k) → (m×n)`.
///
/// `B` is packed once into a contiguous `k×n` scratch (a tiled transpose) so
/// the blocked kernel streams contiguous strips; the scratch is recycled
/// through the arena before returning.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let bt = b.transposed();
    let mut out = crate::arena::matrix_dirty(m, n);
    gemm_nn_into(a, &bt, &mut out);
    crate::arena::recycle_matrix(bt);
    out
}

/// `Aᵀ (k×m from A m×k) · B (m×n) → (k×n)`.
///
/// `A` is packed once into a contiguous `k×m` scratch, then the blocked NN
/// kernel runs on `(Aᵀ, B)`; per-element accumulation stays sequential in the
/// shared dimension, bit-identical to the naive kernel.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.cols();
    let n = b.cols();
    let m = a.rows();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let at = a.transposed();
    let mut out = crate::arena::matrix_dirty(k, n);
    gemm_nn_into(&at, b, &mut out);
    crate::arena::recycle_matrix(at);
    out
}

/// Wrapper for a pointer shared across the SYRK mirror participants.
struct SyncPtr(*mut f32);
// SAFETY: participants write only the strictly-upper elements of their own
// disjoint row ranges and read only strictly-lower elements, which no
// participant writes during the mirror phase.
unsafe impl Send for SyncPtr {}
unsafe impl Sync for SyncPtr {}

/// Symmetric Gram product `A·Aᵀ` in half the flops: only the lower triangle
/// (plus diagonal) is computed, then mirrored.
///
/// Bit-identical to `matmul_nt(a, a)`: element `(i, j≤i)` runs the same
/// sequential-`k` accumulation, and the mirrored `(i, j>i)` equals
/// `dot(a_j, a_i)`, which multiplies the same operand pairs in the same order
/// as `dot(a_i, a_j)` — f32 multiplication commutes exactly.
pub fn syrk_nt(a: &Matrix) -> Matrix {
    let n = a.rows();
    let k = a.cols();
    let flops = ((n as u64).saturating_mul(n as u64 + 1) / 2).saturating_mul(k as u64);
    let _span = kernel_span(&MATMUL_METRICS, flops);
    let at = a.transposed();
    let mut out = crate::arena::matrix_dirty(n, n);
    if n == 0 {
        return out;
    }
    let bdata = at.as_slice();
    let pack = pack_strips(bdata, k, n);
    let pdata = pack.as_slice();
    let simd = crate::backend::simd_active();
    // Lower triangle: row i costs (i+1)·k, so blocks are cut on the cost
    // prefix sums to stay balanced.
    par_row_chunks_by_cost(
        out.as_mut_slice(),
        n,
        |r| (r + 1).saturating_mul(k.max(1)),
        |r0, chunk| dispatch_syrk_chunk(simd, a, bdata, pdata, r0, chunk, n, k),
    );
    crate::arena::recycle_matrix(pack);
    crate::arena::recycle_matrix(at);
    // Mirror the strictly-lower triangle into the strictly-upper one,
    // tile-by-tile. Row r copies n-1-r elements, so blocks are cost-cut too.
    let ptr = SyncPtr(out.as_mut_slice().as_mut_ptr());
    crate::parallel::par_row_blocks_by_cost(
        n,
        |r| n - r,
        |range| {
            const B: usize = 64;
            let p = &ptr;
            let mut rb = range.start;
            while rb < range.end {
                let re = (rb + B).min(range.end);
                let mut jb = rb + 1;
                while jb < n {
                    let je = (jb + B).min(n);
                    for r in rb..re {
                        for j in (r + 1).max(jb)..je {
                            // SAFETY: see `SyncPtr` — upper-element writes are
                            // confined to this participant's rows; the lower
                            // elements read are finalized and never written
                            // during this phase.
                            unsafe { *p.0.add(r * n + j) = *p.0.add(j * n + r) };
                        }
                    }
                    jb = je;
                }
                rb = re;
            }
        },
    );
    out
}

/// Routes one SYRK row chunk to the active backend's kernel.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[inline]
fn dispatch_syrk_chunk(
    simd: bool,
    a: &Matrix,
    bt: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    if simd {
        // SAFETY: `simd` comes from `backend::simd_active()`, which requires
        // runtime-detected AVX2+FMA.
        unsafe { crate::simd::syrk_chunk(a, bt, pack, r0, chunk, n, k) }
    } else {
        syrk_chunk(a, bt, pack, r0, chunk, n, k)
    }
}

/// Non-x86-64 hosts always run the Reference SYRK kernel.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
#[inline]
fn dispatch_syrk_chunk(
    _simd: bool,
    a: &Matrix,
    bt: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    syrk_chunk(a, bt, pack, r0, chunk, n, k)
}

/// Lower-triangle (inclusive diagonal) blocked kernel for [`syrk_nt`].
/// `pack` holds the packed strips of `bt` (= `Aᵀ`); the staircase past the
/// last full strip reads the unpacked `bt` through [`edge_row`].
fn syrk_chunk(
    a: &Matrix,
    bt: &[f32],
    pack: &[f32],
    r0: usize,
    chunk: &mut [f32],
    n: usize,
    k: usize,
) {
    let rows = chunk.len() / n;
    let mut i = 0;
    while i + MR <= rows {
        let g = r0 + i;
        let a0 = a.row(g);
        let a1 = a.row(g + 1);
        let a2 = a.row(g + 2);
        let a3 = a.row(g + 3);
        // Full 4-wide strips are valid up to the *first* row's diagonal;
        // the staircase past it is finished per-row by the edge kernel.
        let mut j = 0;
        while j + NR <= g + 1 {
            let s = j / NR;
            micro_4x16(
                a0,
                a1,
                a2,
                a3,
                &pack[s * k * NR..(s + 1) * k * NR],
                n,
                j,
                chunk,
                i,
            );
            j += NR;
        }
        for ii in 0..MR {
            edge_row(
                a.row(g + ii),
                bt,
                n,
                j,
                g + ii + 1,
                &mut chunk[(i + ii) * n..],
            );
        }
        i += MR;
    }
    while i < rows {
        let g = r0 + i;
        let ar = a.row(g);
        let out_row = &mut chunk[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NR <= g + 1 {
            let s = j / NR;
            micro_1x16(ar, &pack[s * k * NR..(s + 1) * k * NR], j, out_row);
            j += NR;
        }
        edge_row(ar, bt, n, j, g + 1, out_row);
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Reference kernels
// ---------------------------------------------------------------------------

/// Textbook `A·B` triple loop (i-j-k, one scalar dot per output element): the
/// canonical baseline the blocked kernel's speedup is quoted against in
/// `bench_kernels` and gated on in CI. Per-element accumulation is the same
/// sequential `p = 0..k` order as every other kernel here, so it doubles as
/// a bit-identity oracle. Bit-identical to [`matmul`].
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(m, n);
    let bdata = b.as_slice();
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        k.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let ar = a.row(r0 + dr);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (p, &av) in ar.iter().enumerate() {
                        acc += av * bdata[p * n + j];
                    }
                    *o = acc;
                }
            }
        },
    );
    out
}

/// The pre-blocking production `A·B` kernel (i-k-j: load/FMA/store through
/// the output row, skipping `a[i][p] == 0.0` terms). Kept because the loss
/// `*_reference` baselines are frozen against it and `bench_kernels` reports
/// it as its own comparison row — it is what the blocked kernel actually
/// replaced. Bit-identical to [`matmul`]: the zero-skip is bit-neutral for
/// finite inputs (adding `±0.0` to any partial sum reproduces it exactly).
pub fn matmul_rowstream(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(m, n);
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        k.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let ar = a.row(r0 + dr);
                for p in 0..k {
                    let av = ar[p];
                    if av == 0.0 {
                        continue;
                    }
                    let br = b.row(p);
                    for (o, &bv) in out_row.iter_mut().zip(br) {
                        *o += av * bv;
                    }
                }
            }
        },
    );
    out
}

/// Pre-blocking `A·Bᵀ` reference kernel (per-element scalar dot, like
/// [`matmul_naive`]). Bit-identical to [`matmul_nt`].
pub fn matmul_nt_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(m, n);
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        k.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let ar = a.row(r0 + dr);
                for (o, j) in out_row.iter_mut().zip(0..n) {
                    let br = b.row(j);
                    let mut acc = 0.0f32;
                    for (&x, &y) in ar.iter().zip(br) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        },
    );
    out
}

/// Pre-blocking `Aᵀ·B` reference kernel (p-streaming with zero-skip, like
/// [`matmul_rowstream`]). Bit-identical to [`matmul_tn`].
pub fn matmul_tn_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.cols();
    let n = b.cols();
    let m = a.rows();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(k, n);
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        m.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let c = r0 + dr;
                for p in 0..m {
                    let av = a.row(p)[c];
                    if av == 0.0 {
                        continue;
                    }
                    let br = b.row(p);
                    for (o, &bv) in out_row.iter_mut().zip(br) {
                        *o += av * bv;
                    }
                }
            }
        },
    );
    out
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Bit-identity with the naive kernels is a Reference-backend contract;
    /// the Simd backend is tolerance-validated in tests/backend_parity.rs.
    fn pin_reference() {
        crate::backend::set_backend(crate::backend::Backend::Reference);
    }

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::uniform(7, 5, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(5, 9, -1.0, 1.0, &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(8, 4, -1.0, 1.0, &mut rng);
        assert!(matmul_nt(&a, &b).max_abs_diff(&matmul(&a, &b.transposed())) < 1e-5);
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(6, 3, -1.0, 1.0, &mut rng);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.transposed(), &b)) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::uniform(5, 5, -1.0, 1.0, &mut rng);
        assert!(matmul(&a, &Matrix::identity(5)).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&Matrix::identity(5), &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::uniform(300, 40, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(40, 120, -1.0, 1.0, &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }

    #[test]
    fn blocked_kernels_are_bit_identical_to_naive() {
        pin_reference();
        let mut rng = StdRng::seed_from_u64(6);
        // Shapes straddle the 4-row and 16-column microkernel boundaries and
        // the 512-wide column panel.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 7, 5),
            (4, 32, 16),
            (37, 13, 19),
            (130, 5, 530),
        ] {
            let a = Matrix::uniform(m, k, -1.0, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, -1.0, 1.0, &mut rng);
            assert_eq!(matmul(&a, &b), matmul_naive(&a, &b), "nn {m}x{k}x{n}");
            assert_eq!(
                matmul_rowstream(&a, &b),
                matmul_naive(&a, &b),
                "rowstream {m}x{k}x{n}"
            );
            let bt = b.transposed();
            assert_eq!(
                matmul_nt(&a, &bt),
                matmul_nt_naive(&a, &bt),
                "nt {m}x{k}x{n}"
            );
            let at = a.transposed();
            assert_eq!(
                matmul_tn(&at, &b),
                matmul_tn_naive(&at, &b),
                "tn {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn syrk_is_bit_identical_to_matmul_nt() {
        pin_reference();
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 4, 17, 64, 101] {
            let a = Matrix::uniform(n, 9, -1.0, 1.0, &mut rng);
            assert_eq!(syrk_nt(&a), matmul_nt(&a, &a), "n = {n}");
        }
    }
}
