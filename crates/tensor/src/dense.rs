//! Dense matrix-multiplication kernels.
//!
//! Three variants are provided because autograd needs products against
//! transposes and materializing the transpose would double memory traffic:
//! `A·B`, `A·Bᵀ`, and `Aᵀ·B`. All use ikj loop order (row-major friendly) and
//! row-block parallelism over the output.

use crate::matrix::Matrix;
use crate::parallel::par_row_chunks_cost;
use gcmae_obs::{kernel_span, KernelMetrics};

/// All three dense variants report under one metric family: they share the
/// same m·k·n cost model and the split by transpose is an implementation
/// detail of autograd, not a workload distinction.
static MATMUL_METRICS: KernelMetrics = KernelMetrics {
    ns: "kernel.matmul.ns",
    calls: "kernel.matmul.calls",
    flops: "kernel.matmul.flops",
};

fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    (m as u64).saturating_mul(k as u64).saturating_mul(n as u64)
}

/// `A (m×k) · B (k×n) → (m×n)`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(m, n);
    // Each output row costs k·n multiply-adds, so a skinny m×n output with a
    // deep inner dimension still crosses the parallel threshold.
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        k.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let ar = a.row(r0 + dr);
                for p in 0..k {
                    let av = ar[p];
                    if av == 0.0 {
                        continue;
                    }
                    let br = b.row(p);
                    for (o, &bv) in out_row.iter_mut().zip(br) {
                        *o += av * bv;
                    }
                }
            }
        },
    );
    out
}

/// `A (m×k) · Bᵀ (k×n from B n×k) → (m×n)`.
///
/// Both operands are walked row-wise, so this is the cache-friendly way to
/// build similarity/Gram matrices.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(m, n);
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        k.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let ar = a.row(r0 + dr);
                for (o, j) in out_row.iter_mut().zip(0..n) {
                    let br = b.row(j);
                    let mut acc = 0.0f32;
                    for (&x, &y) in ar.iter().zip(br) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        },
    );
    out
}

/// `Aᵀ (k×m from A m×k) · B (m×n) → (k×n)`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.cols();
    let n = b.cols();
    let m = a.rows();
    let _span = kernel_span(&MATMUL_METRICS, matmul_flops(m, k, n));
    let mut out = Matrix::zeros(k, n);
    // Row-parallel over the k×n output like the other variants; each output
    // row costs m·n multiply-adds (accumulating row p of B scaled by
    // A[p][row] keeps the inner walk sequential in memory).
    par_row_chunks_cost(
        out.as_mut_slice(),
        n,
        m.max(1).saturating_mul(n),
        |r0, chunk| {
            for (dr, out_row) in chunk.chunks_mut(n).enumerate() {
                let c = r0 + dr; // output row == column of A
                for p in 0..m {
                    let av = a.row(p)[c];
                    if av == 0.0 {
                        continue;
                    }
                    let br = b.row(p);
                    for (o, &bv) in out_row.iter_mut().zip(br) {
                        *o += av * bv;
                    }
                }
            }
        },
    );
    out
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::uniform(7, 5, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(5, 9, -1.0, 1.0, &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_nt_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(8, 4, -1.0, 1.0, &mut rng);
        assert!(matmul_nt(&a, &b).max_abs_diff(&matmul(&a, &b.transposed())) < 1e-5);
    }

    #[test]
    fn matmul_tn_matches_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::uniform(6, 4, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(6, 3, -1.0, 1.0, &mut rng);
        assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.transposed(), &b)) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::uniform(5, 5, -1.0, 1.0, &mut rng);
        assert!(matmul(&a, &Matrix::identity(5)).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&Matrix::identity(5), &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Matrix::uniform(300, 40, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(40, 120, -1.0, 1.0, &mut rng);
        assert!(matmul(&a, &b).max_abs_diff(&naive(&a, &b)) < 1e-4);
    }
}
