//! Kernel-engine bit-identity suite: the blocked gemm microkernel, the
//! shared [`GramCache`], and the arena-backed tape must all be invisible in
//! the outputs — every loss, gradient, and product is compared bitwise
//! against the pre-optimization reference kernels, at 1 and 8 threads.

use std::sync::{Arc, Mutex, MutexGuard};

use gcmae_tensor::ops::{adj_recon, infonce};
use gcmae_tensor::parallel::set_num_threads;
use gcmae_tensor::{dense, CsrMatrix, GramCache, Matrix, SharedCsr, Tape, TensorId};
use proptest::prelude::*;

/// Serializes tests that mutate the global forced thread count.
static THREADS_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    // Bitwise comparison against the pre-optimization reference kernels is
    // a Reference-backend contract (the Simd backend is tolerance-validated
    // in backend_parity.rs), so pin Reference even under GCMAE_KERNEL_BACKEND.
    gcmae_tensor::backend::set_backend(gcmae_tensor::Backend::Reference);
    THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    set_num_threads(n);
    let out = f();
    set_num_threads(0);
    out
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Random symmetric binary adjacency without self loops over `n` nodes.
fn adjacency(n: usize) -> impl Strategy<Value = SharedCsr> {
    prop::collection::vec((0..n, 0..n), 1..3 * n).prop_map(move |pairs| {
        let mut t = Vec::new();
        for (i, j) in pairs {
            if i != j {
                t.push((i, j, 1.0));
                t.push((j, i, 1.0));
            }
        }
        // Guarantee at least one edge so dist terms are well-defined.
        t.push((0, n - 1, 1.0));
        t.push((n - 1, 0, 1.0));
        let summed = CsrMatrix::from_triplets(n, n, &t);
        let values = vec![1.0; summed.nnz()];
        Arc::new(CsrMatrix::new(
            n,
            n,
            summed.indptr().to_vec(),
            summed.indices().to_vec(),
            values,
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The blocked i/j-tiled gemm family must be bit-identical to the naive
    /// triple loops at any thread count (the k-accumulation order per output
    /// element is shared).
    #[test]
    fn blocked_gemm_is_bit_identical_to_naive(
        a in matrix(37, 29),
        b in matrix(29, 53),
        c in matrix(53, 29),
    ) {
        let _g = guard();
        // `matmul_tn` contracts over rows: both operands need k rows.
        let bt = b.transposed();
        let nn = dense::matmul_naive(&a, &b);
        let nt = dense::matmul_nt_naive(&a, &c);
        let tn = dense::matmul_tn_naive(&bt, &c);
        let syrk_ref = dense::matmul_nt_naive(&a, &a);
        for threads in [1usize, 8] {
            let (got_nn, got_nt, got_tn, got_syrk) = with_threads(threads, || {
                (
                    dense::matmul(&a, &b),
                    dense::matmul_nt(&a, &c),
                    dense::matmul_tn(&bt, &c),
                    dense::syrk_nt(&a),
                )
            });
            prop_assert_eq!(bits(&got_nn), bits(&nn));
            prop_assert_eq!(bits(&got_nt), bits(&nt));
            prop_assert_eq!(bits(&got_tn), bits(&tn));
            prop_assert_eq!(bits(&got_syrk), bits(&syrk_ref));
        }
    }

    /// InfoNCE through a shared GramCache (SYRK self-products, cached
    /// transpose for `s_vu`, arena scratch) must reproduce the reference
    /// kernel bit-for-bit — loss and both gradients, at 1 and 8 threads.
    #[test]
    fn cached_infonce_matches_reference(
        u in matrix(33, 9),
        v in matrix(33, 9),
    ) {
        let _g = guard();
        let (loss_ref, saved_ref) = infonce::forward_reference(&u, &v, 0.5);
        let (du_ref, dv_ref) = infonce::backward_reference(&saved_ref, 1.25);
        for threads in [1usize, 8] {
            let (loss, du, dv) = with_threads(threads, || {
                let mut cache = GramCache::new();
                let (loss, saved) = infonce::forward_with(&u, &v, 0.5, &mut cache);
                let (du, dv) = infonce::backward(&saved, 1.25);
                (loss, du, dv)
            });
            prop_assert_eq!(loss.to_bits(), loss_ref.to_bits());
            prop_assert_eq!(bits(&du), bits(&du_ref));
            prop_assert_eq!(bits(&dv), bits(&dv_ref));
        }
    }

    /// Adjacency reconstruction through the cache (SYRK Gram, single-branch
    /// BCE, arena coefficient matrix) vs the reference kernel.
    #[test]
    fn cached_adj_recon_matches_reference(
        z in matrix(24, 7),
        adj in adjacency(24),
    ) {
        let _g = guard();
        let w = adj_recon::Weights::default();
        let (loss_ref, comps_ref, saved_ref) =
            adj_recon::forward_reference(&z, adj.clone(), w);
        let grad_ref = adj_recon::backward_reference(&saved_ref, &z, 0.75);
        for threads in [1usize, 8] {
            let (loss, comps, grad) = with_threads(threads, || {
                let mut cache = GramCache::new();
                let (loss, comps, saved) =
                    adj_recon::forward_with(&z, adj.clone(), w, &mut cache);
                let grad = adj_recon::backward(&saved, &z, 0.75);
                (loss, comps, grad)
            });
            prop_assert_eq!(loss.to_bits(), loss_ref.to_bits());
            prop_assert_eq!(comps.mse.to_bits(), comps_ref.mse.to_bits());
            prop_assert_eq!(comps.bce.to_bits(), comps_ref.bce.to_bits());
            prop_assert_eq!(comps.dist.to_bits(), comps_ref.dist.to_bits());
            prop_assert_eq!(bits(&grad), bits(&grad_ref));
        }
    }

    /// Both losses sharing one step-scoped cache (the trainer's real shape:
    /// `Z·Zᵀ` computed once, reused by adj_recon and both infonce
    /// self-products) must match running each loss against the reference.
    #[test]
    fn cross_loss_gram_sharing_is_bit_identical(
        z in matrix(21, 6),
        v in matrix(21, 6),
        adj in adjacency(21),
    ) {
        let _g = guard();
        let w = adj_recon::Weights::default();
        let (al_ref, _, a_saved_ref) = adj_recon::forward_reference(&z, adj.clone(), w);
        let a_grad_ref = adj_recon::backward_reference(&a_saved_ref, &z, 1.0);
        let (il_ref, i_saved_ref) = infonce::forward_reference(&z, &v, 0.7);
        let (du_ref, dv_ref) = infonce::backward_reference(&i_saved_ref, 1.0);

        let mut cache = GramCache::new();
        let (al, _, a_saved) = adj_recon::forward_with(&z, adj, w, &mut cache);
        let (il, i_saved) = infonce::forward_with(&z, &v, 0.7, &mut cache);
        prop_assert_eq!(al.to_bits(), al_ref.to_bits());
        prop_assert_eq!(il.to_bits(), il_ref.to_bits());
        let a_grad = adj_recon::backward(&a_saved, &z, 1.0);
        let (du, dv) = infonce::backward(&i_saved, 1.0);
        prop_assert_eq!(bits(&a_grad), bits(&a_grad_ref));
        prop_assert_eq!(bits(&du), bits(&du_ref));
        prop_assert_eq!(bits(&dv), bits(&dv_ref));
    }
}

/// Finite-difference check of `d loss / d leaf` for every leaf.
fn gradcheck(leaves: &[Matrix], build: impl Fn(&mut Tape, &[TensorId]) -> TensorId, tol: f32) {
    let run = |ls: &[Matrix]| -> (f32, Vec<Option<Matrix>>) {
        let mut tape = Tape::new();
        let ids: Vec<TensorId> = ls.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build(&mut tape, &ids);
        let value = tape.value(loss).scalar_value();
        let grads = tape.backward(loss);
        let gs = ids.iter().map(|&id| grads.get(id).cloned()).collect();
        (value, gs)
    };
    let (_, grads) = run(leaves);
    let h = 1e-3f32;
    for (k, leaf) in leaves.iter().enumerate() {
        let g = grads[k]
            .as_ref()
            .unwrap_or_else(|| panic!("no grad for leaf {k}"));
        for i in 0..leaf.len() {
            let mut ls: Vec<Matrix> = leaves.to_vec();
            ls[k].as_mut_slice()[i] += h;
            let (lp, _) = run(&ls);
            ls[k].as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = run(&ls);
            let fd = (lp - lm) / (2.0 * h);
            let an = g.as_slice()[i];
            assert!(
                (fd - an).abs() < tol,
                "leaf {k} entry {i}: finite-diff {fd} vs analytic {an}"
            );
        }
    }
}

/// Gradients must flow correctly *through* the cached similarity blocks:
/// one tape computes both O(N²) losses off the same embedding, so every
/// Gram product in the graph is a cache hit (SYRK, swapped-transpose, or
/// direct) — and the analytic gradients still have to match finite
/// differences of the combined loss.
#[test]
fn finite_differences_through_shared_similarity_blocks() {
    let _g = guard();
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut r = StdRng::seed_from_u64(42);
    let z = Matrix::uniform(6, 4, -1.0, 1.0, &mut r);
    let v = Matrix::uniform(6, 4, -1.0, 1.0, &mut r);
    let mut t = vec![];
    for i in 0..6usize {
        let j = (i + 1) % 6;
        t.push((i, j, 1.0));
        t.push((j, i, 1.0));
    }
    let adj: SharedCsr = Arc::new(CsrMatrix::from_triplets(6, 6, &t));
    gradcheck(
        &[z, v],
        |tape, ids| {
            let nce = tape.info_nce(ids[0], ids[1], 0.8);
            let (adj_loss, _) = tape.adj_recon(ids[0], adj.clone(), adj_recon::Weights::default());
            tape.add(nce, adj_loss)
        },
        5e-2,
    );
}
