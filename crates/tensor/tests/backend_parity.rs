//! Simd-backend validation suite: the AVX2/FMA kernels are *not* bit-exact
//! against Reference (FMA contraction + 8-lane partial sums reorder the
//! additions), so this suite proves the two stronger properties the backend
//! contract actually needs:
//!
//! 1. **Tolerance parity** — every dispatched kernel (matmul, matmul_nt,
//!    matmul_tn, SYRK, dot, row_max) matches Reference within an
//!    accumulation-scaled tolerance, across random shapes straddling the
//!    6-row/16-column microkernel edges, at 1 and 8 threads.
//! 2. **Gradient correctness** — finite-difference gradchecks run entirely
//!    under the Simd backend, through tape graphs whose forward/backward
//!    hit the simd gemm path (matmul, matmul_nt) and the SYRK path
//!    (`adj_recon` and `info_nce` self-Gram products).
//!
//! Plus the dispatch contract: `GCMAE_KERNEL_BACKEND` selects the backend in
//! a fresh process, and requesting Simd on an unsupported host degrades to
//! Reference instead of faulting.
//!
//! On hosts without AVX2+FMA the parity tests compare Reference against
//! itself (the dispatch demotes Simd), which keeps the suite portable.

use std::sync::{Arc, Mutex, MutexGuard};

use gcmae_tensor::backend::{
    active_backend, cpu_features, resolve_backend, set_backend, simd_supported,
};
use gcmae_tensor::ops::adj_recon;
use gcmae_tensor::parallel::set_num_threads;
use gcmae_tensor::{backend, dense, Backend, CsrMatrix, Matrix, Tape, TensorId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes tests that mutate the process-global backend / thread count.
static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    GLOBAL_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the given backend forced, restoring Reference after.
fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    set_backend(b);
    let out = f();
    set_backend(Backend::Reference);
    out
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    set_num_threads(n);
    let out = f();
    set_num_threads(0);
    out
}

/// Element-wise closeness with a tolerance scaled by the accumulation length:
/// FMA reassociation perturbs each output by O(k·eps·|value|).
fn assert_close(label: &str, got: &Matrix, want: &Matrix, k: usize) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape mismatch");
    let tol = 1e-5 * (k as f32).max(8.0);
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        let scale = w.abs().max(1.0);
        assert!(
            (g - w).abs() <= tol * scale,
            "{label}: entry {i} diverges: simd {g} vs reference {w} (tol {tol})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All four dispatched gemm shapes agree with Reference within tolerance
    /// at 1 and 8 threads, on shapes straddling the microkernel edges.
    #[test]
    fn gemm_family_matches_reference_within_tolerance(
        m in 1usize..70,
        k in 1usize..48,
        n in 1usize..70,
        seed in 0u64..1_000,
    ) {
        let _g = guard();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(k, n, -1.0, 1.0, &mut rng);
        let bt = b.transposed();
        let at = a.transposed();
        for threads in [1usize, 8] {
            let (r_nn, r_nt, r_tn, r_syrk) = with_threads(threads, || {
                with_backend(Backend::Reference, || {
                    (
                        dense::matmul(&a, &b),
                        dense::matmul_nt(&a, &bt),
                        dense::matmul_tn(&at, &b),
                        dense::syrk_nt(&a),
                    )
                })
            });
            let (s_nn, s_nt, s_tn, s_syrk) = with_threads(threads, || {
                with_backend(Backend::Simd, || {
                    (
                        dense::matmul(&a, &b),
                        dense::matmul_nt(&a, &bt),
                        dense::matmul_tn(&at, &b),
                        dense::syrk_nt(&a),
                    )
                })
            });
            assert_close(&format!("matmul t={threads}"), &s_nn, &r_nn, k);
            assert_close(&format!("matmul_nt t={threads}"), &s_nt, &r_nt, k);
            assert_close(&format!("matmul_tn t={threads}"), &s_tn, &r_tn, m);
            assert_close(&format!("syrk t={threads}"), &s_syrk, &r_syrk, k);
        }
    }

    /// The dispatched reductions (dot, row_max) agree with their scalar
    /// definitions under the Simd backend.
    #[test]
    fn reductions_match_reference_within_tolerance(
        len in 1usize..300,
        seed in 0u64..1_000,
    ) {
        let _g = guard();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(1, len, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(1, len, -1.0, 1.0, &mut rng);
        let (r_dot, r_max) = with_backend(Backend::Reference, || {
            (backend::dot(a.as_slice(), b.as_slice()), backend::row_max(a.as_slice()))
        });
        let (s_dot, s_max) = with_backend(Backend::Simd, || {
            (backend::dot(a.as_slice(), b.as_slice()), backend::row_max(a.as_slice()))
        });
        let tol = 1e-5 * (len as f32).max(8.0);
        prop_assert!((s_dot - r_dot).abs() <= tol * r_dot.abs().max(1.0));
        // max picks one input element; no rounding is involved on any path.
        prop_assert_eq!(s_max.to_bits(), r_max.to_bits());
    }
}

/// Checks `d loss / d leaf_k` against central finite differences, with the
/// whole computation (forward, backward, and both perturbed re-evaluations)
/// running under the currently forced backend.
fn gradcheck(leaves: &[Matrix], build: impl Fn(&mut Tape, &[TensorId]) -> TensorId, tol: f32) {
    let run = |ls: &[Matrix]| -> (f32, Vec<Option<Matrix>>) {
        let mut tape = Tape::new();
        let ids: Vec<TensorId> = ls.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build(&mut tape, &ids);
        let value = tape.value(loss).scalar_value();
        let grads = tape.backward(loss);
        let gs = ids.iter().map(|&id| grads.get(id).cloned()).collect();
        (value, gs)
    };
    let (_, grads) = run(leaves);
    let h = 1e-3f32;
    for (k, leaf) in leaves.iter().enumerate() {
        let g = grads[k]
            .as_ref()
            .unwrap_or_else(|| panic!("no grad for leaf {k}"));
        for i in 0..leaf.len() {
            let mut ls: Vec<Matrix> = leaves.to_vec();
            ls[k].as_mut_slice()[i] += h;
            let (lp, _) = run(&ls);
            ls[k].as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = run(&ls);
            let fd = (lp - lm) / (2.0 * h);
            let an = g.as_slice()[i];
            assert!(
                (fd - an).abs() < tol,
                "leaf {k} entry {i}: finite-diff {fd} vs analytic {an}"
            );
        }
    }
}

/// Symmetric 6-node cycle adjacency (no self loops) for the adj_recon check.
fn cycle_csr(n: usize) -> Arc<CsrMatrix> {
    let mut t = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        t.push((i, j, 1.0));
        t.push((j, i, 1.0));
    }
    Arc::new(CsrMatrix::from_triplets(n, n, &t))
}

/// Gradients through the Simd gemm path: `frob_sq(A·B)` exercises matmul
/// forward plus matmul_nt/matmul_tn in backward.
#[test]
fn gradcheck_matmul_chain_under_simd() {
    let _g = guard();
    let mut rng = StdRng::seed_from_u64(11);
    let a = Matrix::uniform(7, 5, -0.8, 0.8, &mut rng);
    let b = Matrix::uniform(5, 6, -0.8, 0.8, &mut rng);
    with_backend(Backend::Simd, || {
        gradcheck(
            &[a, b],
            |tape, ids| {
                let prod = tape.matmul(ids[0], ids[1]);
                tape.frob_sq(prod)
            },
            2e-2,
        );
    });
}

/// Gradients through the Simd SYRK path: `adj_recon` and `info_nce` both
/// compute a self-Gram `Z·Zᵀ` that GramCache routes to `syrk_nt`.
#[test]
fn gradcheck_self_gram_losses_under_simd() {
    let _g = guard();
    let mut rng = StdRng::seed_from_u64(12);
    let n = 6;
    let z = Matrix::uniform(n, 4, -0.8, 0.8, &mut rng);
    let u = Matrix::uniform(5, 4, -0.8, 0.8, &mut rng);
    let v = Matrix::uniform(5, 4, -0.8, 0.8, &mut rng);
    let adj = cycle_csr(n);
    with_backend(Backend::Simd, || {
        let adj2 = Arc::clone(&adj);
        gradcheck(
            &[z],
            move |tape, ids| {
                let (loss, _) = tape.adj_recon(ids[0], adj2.clone(), Default::default());
                loss
            },
            3e-2,
        );
        gradcheck(
            &[u, v],
            |tape, ids| tape.info_nce(ids[0], ids[1], 0.5),
            3e-2,
        );
    });
}

/// Tolerance parity for the fused losses themselves (forward + backward)
/// between the two backends — the end-to-end form of the kernel parity above.
#[test]
fn adj_recon_loss_and_grad_parity() {
    let _g = guard();
    let mut rng = StdRng::seed_from_u64(13);
    let n = 24;
    let z = Matrix::uniform(n, 8, -1.0, 1.0, &mut rng);
    let adj = cycle_csr(n);
    let eval = |b: Backend| {
        with_backend(b, || {
            let w = adj_recon::Weights::default();
            let (loss, _, state) = adj_recon::forward(&z, adj.clone(), w);
            let grad = adj_recon::backward(&state, &z, 1.0);
            (loss, grad)
        })
    };
    let (rl, rg) = eval(Backend::Reference);
    let (sl, sg) = eval(Backend::Simd);
    assert!(
        (rl - sl).abs() <= 1e-4 * rl.abs().max(1.0),
        "loss diverges: {sl} vs {rl}"
    );
    assert_close("adj_recon grad", &sg, &rg, n);
}

#[test]
fn forcing_simd_activates_exactly_when_supported() {
    let _g = guard();
    let got = with_backend(Backend::Simd, active_backend);
    assert_eq!(got, resolve_backend(Backend::Simd, simd_supported()));
    let f = cpu_features();
    if f.avx2 && f.fma {
        assert_eq!(got, Backend::Simd, "AVX2+FMA host must honor the request");
    } else {
        assert_eq!(got, Backend::Reference, "unsupported host must fall back");
    }
    // Reference is always available.
    assert_eq!(with_backend(Backend::Reference, active_backend), Backend::Reference);
}

/// Helper target for the subprocess test below: prints the requested backend
/// as this process resolved it from its environment. Ignored in normal runs.
#[test]
#[ignore]
fn env_probe() {
    println!("requested={}", backend::requested_backend());
}

/// `GCMAE_KERNEL_BACKEND` must select the backend in a fresh process, and an
/// unparseable value must fall back to the default instead of erroring. The
/// env var is read once and cached, so the test re-execs this binary with a
/// controlled environment rather than mutating its own.
#[test]
fn env_var_selects_backend_in_fresh_process() {
    let exe = std::env::current_exe().expect("test binary path");
    let probe = |env: Option<&str>| -> String {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["env_probe", "--ignored", "--exact", "--nocapture", "--test-threads=1"])
            .env_remove("GCMAE_KERNEL_BACKEND");
        if let Some(v) = env {
            cmd.env("GCMAE_KERNEL_BACKEND", v);
        }
        let out = cmd.output().expect("spawn env probe");
        assert!(out.status.success(), "probe failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // libtest may glue the probe println onto its own status line, so
        // split on the marker instead of matching a line prefix.
        stdout
            .split_once("requested=")
            .unwrap_or_else(|| panic!("no probe marker in output:\n{stdout}"))
            .1
            .split_whitespace()
            .next()
            .expect("backend name after marker")
            .to_string()
    };
    assert_eq!(probe(Some("simd")), "simd");
    assert_eq!(probe(Some("reference")), "reference");
    assert_eq!(probe(Some("not-a-backend")), "reference", "typos must not change the default");
    assert_eq!(probe(None), "reference");
}
