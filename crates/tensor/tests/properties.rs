//! Property-based tests for the tensor substrate: kernel algebra, CSR
//! structure, and autograd linearity.

use gcmae_tensor::{dense, CsrMatrix, Matrix, Tape};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(a in matrix(4, 3), b in matrix(3, 5), c in matrix(3, 5)) {
        // A(B + C) = AB + AC
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = dense::matmul(&a, &bc);
        let mut rhs = dense::matmul(&a, &b);
        rhs.add_assign(&dense::matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(4, 3), b in matrix(5, 3)) {
        // A·Bᵀ computed directly equals the two-step transpose version
        let direct = dense::matmul_nt(&a, &b);
        let two_step = dense::matmul(&a, &b.transposed());
        prop_assert!(direct.max_abs_diff(&two_step) < 1e-5);
        // (A·Bᵀ)ᵀ = B·Aᵀ
        let t = direct.transposed();
        let other = dense::matmul_nt(&b, &a);
        prop_assert!(t.max_abs_diff(&other) < 1e-5);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose(a in matrix(4, 3), b in matrix(4, 2)) {
        let direct = dense::matmul_tn(&a, &b);
        let two_step = dense::matmul(&a.transposed(), &b);
        prop_assert!(direct.max_abs_diff(&two_step) < 1e-5);
    }

    #[test]
    fn csr_dense_roundtrip(
        triplets in prop::collection::vec((0usize..5, 0usize..6, -1.0f32..1.0), 0..20)
    ) {
        let m = CsrMatrix::from_triplets(5, 6, &triplets);
        let dense_m = m.to_dense();
        // every stored entry appears in the dense form
        for (r, c, v) in m.iter() {
            prop_assert!((dense_m[(r, c)] - v).abs() < 1e-6);
        }
        // nnz never exceeds input count
        prop_assert!(m.nnz() <= triplets.len());
        // transpose twice is identity
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn spmm_agrees_with_dense_product(
        triplets in prop::collection::vec((0usize..4, 0usize..4, -1.0f32..1.0), 1..12),
        x in matrix(4, 3),
    ) {
        let s = CsrMatrix::from_triplets(4, 4, &triplets);
        let sparse = s.matmul_dense(&x);
        let dense_result = dense::matmul(&s.to_dense(), &x);
        prop_assert!(sparse.max_abs_diff(&dense_result) < 1e-4);
    }

    #[test]
    fn backward_is_linear_in_upstream_gradient(x in matrix(3, 3), k in 0.5f32..4.0) {
        // d(k·f)/dx = k·df/dx for f = sum(sigmoid(x))
        let grad_of = |scale: f32| -> Matrix {
            let mut tape = Tape::new();
            let xi = tape.leaf(x.clone());
            let s = tape.sigmoid(xi);
            let sum = tape.sum_all(s);
            let loss = tape.scale(sum, scale);
            let grads = tape.backward(loss);
            grads.get(xi).unwrap().clone()
        };
        let g1 = grad_of(1.0);
        let gk = grad_of(k);
        let mut scaled = g1.clone();
        scaled.scale_inplace(k);
        prop_assert!(gk.max_abs_diff(&scaled) < 1e-4);
    }

    #[test]
    fn relu_elu_agree_on_positives(x in prop::collection::vec(0.01f32..2.0, 9)) {
        let m = Matrix::from_vec(3, 3, x);
        let mut tape = Tape::new();
        let xi = tape.constant(m.clone());
        let r = tape.relu(xi);
        let e = tape.elu(xi, 1.0);
        prop_assert!(tape.value(r).max_abs_diff(tape.value(e)) < 1e-6);
        prop_assert!(tape.value(r).max_abs_diff(&m) < 1e-6);
    }

    #[test]
    fn row_normalize_produces_unit_rows(x in matrix(4, 5)) {
        let mut tape = Tape::new();
        let xi = tape.constant(x.clone());
        let n = tape.row_normalize(xi);
        for r in 0..4 {
            let norm = tape.value(n).row_norm(r);
            // rows that were near-zero stay near zero; others become unit
            if x.row_norm(r) > 1e-3 {
                prop_assert!((norm - 1.0).abs() < 1e-4, "row {r} norm {norm}");
            }
        }
    }

    #[test]
    fn standardize_cols_yields_zero_mean_unit_var(x in matrix(8, 3)) {
        let mut tape = Tape::new();
        let xi = tape.constant(x);
        let s = tape.standardize_cols(xi, 1e-6);
        let v = tape.value(s);
        for c in 0..3 {
            let mean: f32 = (0..8).map(|r| v[(r, c)]).sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-4, "col {c} mean {mean}");
            let var: f32 = (0..8).map(|r| (v[(r, c)] - mean).powi(2)).sum::<f32>() / 8.0;
            // degenerate (constant) columns divide by sqrt(eps); skip them
            if var > 1e-3 {
                prop_assert!((var - 1.0).abs() < 1e-2, "col {c} var {var}");
            }
        }
    }

    #[test]
    fn gather_then_scatter_preserves_gradient_mass(x in matrix(5, 2)) {
        // loss = sum(gather(x, rows)) ⇒ grad counts row multiplicity
        let rows = vec![0usize, 2, 2, 4];
        let mut tape = Tape::new();
        let xi = tape.leaf(x);
        let gathered = tape.gather_rows(xi, rows.clone());
        let loss = tape.sum_all(gathered);
        let grads = tape.backward(loss);
        let g = grads.get(xi).unwrap();
        prop_assert_eq!(g.row(0), &[1.0, 1.0][..]);
        prop_assert_eq!(g.row(1), &[0.0, 0.0][..]);
        prop_assert_eq!(g.row(2), &[2.0, 2.0][..]);
        prop_assert_eq!(g.row(4), &[1.0, 1.0][..]);
    }
}
