//! Thread-count invariance: every parallel kernel must produce bit-identical
//! output regardless of the configured thread count (see the Determinism
//! section in `src/parallel.rs`). Shapes are drawn so cases land on both
//! sides of the flop threshold that gates pool dispatch.

use std::sync::{Arc, Mutex, MutexGuard};

use gcmae_tensor::ops::{adj_recon, infonce, sampled};
use gcmae_tensor::parallel::{pool_size, set_num_threads};
use gcmae_tensor::{dense, CsrMatrix, Matrix, SharedCsr};
use proptest::prelude::*;

/// Serializes tests that mutate the global forced thread count (integration
/// tests in one binary run concurrently).
static THREADS_GUARD: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    // Bit-identity across thread counts is a Reference-backend contract
    // (the Simd backend has its own tolerance suite in backend_parity.rs),
    // so the whole binary pins Reference even under GCMAE_KERNEL_BACKEND.
    gcmae_tensor::backend::set_backend(gcmae_tensor::Backend::Reference);
    THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    set_num_threads(n);
    let out = f();
    set_num_threads(0);
    out
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Random symmetric binary adjacency without self loops over `n` nodes.
fn adjacency(n: usize) -> impl Strategy<Value = SharedCsr> {
    prop::collection::vec((0..n, 0..n), 0..3 * n).prop_map(move |pairs| {
        let mut t = Vec::new();
        for (i, j) in pairs {
            if i != j {
                t.push((i, j, 1.0));
                t.push((j, i, 1.0));
            }
        }
        let summed = CsrMatrix::from_triplets(n, n, &t);
        let values = vec![1.0; summed.nnz()];
        Arc::new(CsrMatrix::new(
            n,
            n,
            summed.indptr().to_vec(),
            summed.indices().to_vec(),
            values,
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_thread_invariant(
        (m, k, n) in (1usize..64, 1usize..48, 1usize..64),
        seed in any::<u64>(),
    ) {
        let _g = guard();
        let s = seed as usize;
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 17 + s) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 7 + s) % 11) as f32 - 5.0);
        let one = with_threads(1, || dense::matmul(&a, &b));
        let many = with_threads(8, || dense::matmul(&a, &b));
        prop_assert_eq!(bits(&one), bits(&many));
    }

    #[test]
    fn matmul_nt_is_thread_invariant(a in matrix(51, 33), b in matrix(47, 33)) {
        let _g = guard();
        let one = with_threads(1, || dense::matmul_nt(&a, &b));
        let many = with_threads(8, || dense::matmul_nt(&a, &b));
        prop_assert_eq!(bits(&one), bits(&many));
    }

    #[test]
    fn matmul_tn_is_thread_invariant(a in matrix(49, 35), b in matrix(49, 29)) {
        let _g = guard();
        let one = with_threads(1, || dense::matmul_tn(&a, &b));
        let many = with_threads(8, || dense::matmul_tn(&a, &b));
        prop_assert_eq!(bits(&one), bits(&many));
    }

    #[test]
    fn spmm_is_thread_invariant(adj in adjacency(96), x in matrix(96, 24)) {
        let _g = guard();
        let one = with_threads(1, || adj.matmul_dense(&x));
        let many = with_threads(8, || adj.matmul_dense(&x));
        prop_assert_eq!(bits(&one), bits(&many));
    }

    #[test]
    fn adj_recon_is_thread_invariant(adj in adjacency(40), z in matrix(40, 9)) {
        let _g = guard();
        let w = adj_recon::Weights::default();
        let (l1, c1, s1) = with_threads(1, || adj_recon::forward(&z, adj.clone(), w));
        let (l8, c8, s8) = with_threads(8, || adj_recon::forward(&z, adj.clone(), w));
        prop_assert_eq!(l1.to_bits(), l8.to_bits());
        prop_assert_eq!(c1.mse.to_bits(), c8.mse.to_bits());
        prop_assert_eq!(c1.bce.to_bits(), c8.bce.to_bits());
        prop_assert_eq!(c1.dist.to_bits(), c8.dist.to_bits());
        let g1 = with_threads(1, || adj_recon::backward(&s1, &z, 1.0));
        let g8 = with_threads(8, || adj_recon::backward(&s8, &z, 1.0));
        prop_assert_eq!(bits(&g1), bits(&g8));
    }

    #[test]
    fn infonce_sampled_is_thread_invariant(
        u in matrix(44, 11),
        v in matrix(44, 11),
        neg in prop::collection::vec(0u32..44, 44 * 5),
    ) {
        let _g = guard();
        let (l1, s1) = with_threads(1, || sampled::info_nce_forward(&u, &v, 0.5, 5, &neg));
        let (l8, s8) = with_threads(8, || sampled::info_nce_forward(&u, &v, 0.5, 5, &neg));
        prop_assert_eq!(l1.to_bits(), l8.to_bits());
        let (du1, dv1) = with_threads(1, || sampled::info_nce_backward(&s1, 1.0));
        let (du8, dv8) = with_threads(8, || sampled::info_nce_backward(&s8, 1.0));
        prop_assert_eq!(bits(&du1), bits(&du8));
        prop_assert_eq!(bits(&dv1), bits(&dv8));
    }

    #[test]
    fn adj_recon_sampled_is_thread_invariant(
        adj in adjacency(40),
        z in matrix(40, 9),
        neg in prop::collection::vec(0u32..40, 40 * 4),
    ) {
        let _g = guard();
        let w = adj_recon::Weights::default();
        let (l1, c1, s1) =
            with_threads(1, || sampled::adj_recon_forward(&z, adj.clone(), w, 4, &neg));
        let (l8, c8, s8) =
            with_threads(8, || sampled::adj_recon_forward(&z, adj.clone(), w, 4, &neg));
        prop_assert_eq!(l1.to_bits(), l8.to_bits());
        prop_assert_eq!(c1.mse.to_bits(), c8.mse.to_bits());
        prop_assert_eq!(c1.bce.to_bits(), c8.bce.to_bits());
        prop_assert_eq!(c1.dist.to_bits(), c8.dist.to_bits());
        let g1 = with_threads(1, || sampled::adj_recon_backward(&s1, &z, 1.0));
        let g8 = with_threads(8, || sampled::adj_recon_backward(&s8, &z, 1.0));
        prop_assert_eq!(bits(&g1), bits(&g8));
    }

    #[test]
    fn infonce_is_thread_invariant(u in matrix(44, 11), v in matrix(44, 11)) {
        let _g = guard();
        let (l1, s1) = with_threads(1, || infonce::forward(&u, &v, 0.5));
        let (l8, s8) = with_threads(8, || infonce::forward(&u, &v, 0.5));
        prop_assert_eq!(l1.to_bits(), l8.to_bits());
        let (du1, dv1) = with_threads(1, || infonce::backward(&s1, 1.0));
        let (du8, dv8) = with_threads(8, || infonce::backward(&s8, 1.0));
        prop_assert_eq!(bits(&du1), bits(&du8));
        prop_assert_eq!(bits(&dv1), bits(&dv8));
    }
}

/// Thousands of alternating tiny/large kernel calls must reuse the pool
/// rather than spawning fresh threads per call.
#[test]
fn pool_is_reused_across_kernel_calls() {
    let _g = guard();
    with_threads(8, || {
        let a = Matrix::from_fn(96, 32, |r, c| (r + c) as f32 * 0.01);
        let b = Matrix::from_fn(32, 96, |r, c| (r * c % 7) as f32 * 0.1);
        let small = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        for _ in 0..1500 {
            std::hint::black_box(dense::matmul(&a, &b));
            std::hint::black_box(dense::matmul(&small, &small));
        }
    });
    assert!(pool_size() <= 15, "pool leaked threads: {}", pool_size());
}
