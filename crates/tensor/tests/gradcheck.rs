//! End-to-end gradient checks: every tape op participates in at least one
//! composite graph whose leaf gradients are verified against central finite
//! differences.

use std::sync::Arc;

use gcmae_tensor::{CsrMatrix, Matrix, Tape, TensorId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks `d loss / d leaf_k` for every leaf against finite differences.
fn gradcheck(leaves: &[Matrix], build: impl Fn(&mut Tape, &[TensorId]) -> TensorId, tol: f32) {
    let run = |ls: &[Matrix]| -> (f32, Vec<Option<Matrix>>) {
        let mut tape = Tape::new();
        let ids: Vec<TensorId> = ls.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build(&mut tape, &ids);
        let value = tape.value(loss).scalar_value();
        let grads = tape.backward(loss);
        let gs = ids.iter().map(|&id| grads.get(id).cloned()).collect();
        (value, gs)
    };
    let (_, grads) = run(leaves);
    let h = 1e-3f32;
    for (k, leaf) in leaves.iter().enumerate() {
        let g = grads[k].as_ref().unwrap_or_else(|| panic!("no grad for leaf {k}"));
        for i in 0..leaf.len() {
            let mut ls: Vec<Matrix> = leaves.to_vec();
            ls[k].as_mut_slice()[i] += h;
            let (lp, _) = run(&ls);
            ls[k].as_mut_slice()[i] -= 2.0 * h;
            let (lm, _) = run(&ls);
            let fd = (lp - lm) / (2.0 * h);
            let an = g.as_slice()[i];
            assert!(
                (fd - an).abs() < tol,
                "leaf {k} entry {i}: finite-diff {fd} vs analytic {an}"
            );
        }
    }
}

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn small_csr() -> Arc<CsrMatrix> {
    // 4-node cycle, symmetric, no self loops
    let mut t = vec![];
    for i in 0..4usize {
        let j = (i + 1) % 4;
        t.push((i, j, 1.0));
        t.push((j, i, 1.0));
    }
    Arc::new(CsrMatrix::from_triplets(4, 4, &t))
}

#[test]
fn linear_chain_matmul_bias_activations() {
    let mut r = rng(1);
    let x = Matrix::uniform(4, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 2, -1.0, 1.0, &mut r);
    let b = Matrix::uniform(1, 2, -0.5, 0.5, &mut r);
    gradcheck(&[x, w, b], |t, ids| {
        let h = t.matmul(ids[0], ids[1]);
        let h = t.add_bias(h, ids[2]);
        let h = t.tanh(h);
        let h = t.elu(h, 1.0);
        t.frob_sq(h)
    }, 5e-2);
}

#[test]
fn exp_through_scale() {
    let mut r = rng(20);
    let x = Matrix::uniform(3, 3, -1.0, 1.0, &mut r);
    gradcheck(&[x], |t, ids| {
        let s = t.scale(ids[0], 0.5);
        let e = t.exp(s);
        t.mean_all(e)
    }, 2e-2);
}

#[test]
fn relu_sigmoid_leaky_chain() {
    let mut r = rng(2);
    let x = Matrix::uniform(3, 4, -1.0, 1.0, &mut r);
    gradcheck(&[x], |t, ids| {
        let a = t.relu(ids[0]);
        let b = t.leaky_relu(ids[0], 0.2);
        let c = t.sigmoid(ids[0]);
        let s1 = t.add(a, b);
        let s2 = t.hadamard(s1, c);
        let m = t.mean_all(s2);
        t.scale(m, 3.0)
    }, 2e-2);
}

#[test]
fn spmm_through_gcn_style_layer() {
    let mut r = rng(3);
    let adj = small_csr();
    let x = Matrix::uniform(4, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 2, -1.0, 1.0, &mut r);
    gradcheck(&[x, w], move |t, ids| {
        let xw = t.matmul(ids[0], ids[1]);
        let agg = t.spmm(adj.clone(), adj.clone(), xw); // symmetric
        let act = t.relu(agg);
        t.sum_all(act)
    }, 5e-2);
}

#[test]
fn transpose_sub_matmul_nt() {
    let mut r = rng(4);
    let a = Matrix::uniform(3, 4, -1.0, 1.0, &mut r);
    let b = Matrix::uniform(3, 4, -1.0, 1.0, &mut r);
    gradcheck(&[a, b], |t, ids| {
        let s = t.matmul_nt(ids[0], ids[1]);
        let st = t.transpose(s);
        let d = t.sub(s, st);
        t.frob_sq(d)
    }, 1e-1);
}

#[test]
fn row_normalize_and_gather() {
    let mut r = rng(5);
    let x = Matrix::uniform(5, 3, 0.2, 1.0, &mut r);
    gradcheck(&[x], |t, ids| {
        let n = t.row_normalize(ids[0]);
        let g = t.gather_rows(n, vec![0, 2, 2, 4]);
        t.frob_sq(g)
    }, 2e-2);
}

#[test]
fn standardize_cols_chain() {
    let mut r = rng(6);
    let x = Matrix::uniform(6, 3, -1.0, 1.0, &mut r);
    gradcheck(&[x], |t, ids| {
        let s = t.standardize_cols(ids[0], 1e-3);
        let sq = t.hadamard(s, s);
        t.mean_all(sq)
    }, 5e-2);
}

#[test]
fn dropout_mask_rows_concat() {
    let mut r = rng(7);
    let x = Matrix::uniform(4, 2, -1.0, 1.0, &mut r);
    let mask: Arc<Vec<f32>> = Arc::new(vec![2.0, 0.0, 2.0, 0.0, 2.0, 2.0, 0.0, 2.0]);
    gradcheck(&[x], move |t, ids| {
        let d = t.dropout(ids[0], mask.clone());
        let m = t.mask_rows(ids[0], vec![1]);
        let c = t.concat_cols(&[d, m]);
        t.frob_sq(c)
    }, 5e-2);
}

#[test]
fn mean_rows_and_segment_mean() {
    let mut r = rng(8);
    let x = Matrix::uniform(5, 3, -1.0, 1.0, &mut r);
    let segs = Arc::new(vec![0u32, 0, 1, 1, 1]);
    gradcheck(&[x], move |t, ids| {
        let m = t.mean_rows(ids[0]);
        let s = t.segment_mean(ids[0], segs.clone(), 2);
        let ms = t.frob_sq(m);
        let ss = t.frob_sq(s);
        t.add(ms, ss)
    }, 2e-2);
}

#[test]
fn softmax_ce_through_linear() {
    let mut r = rng(9);
    let x = Matrix::uniform(5, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 3, -1.0, 1.0, &mut r);
    gradcheck(&[x, w], |t, ids| {
        let logits = t.matmul(ids[0], ids[1]);
        t.softmax_ce(logits, vec![0, 2, 4], vec![1, 0, 2])
    }, 2e-2);
}

#[test]
fn bce_with_logits_through_matmul_nt() {
    let mut r = rng(10);
    let z = Matrix::uniform(4, 2, -1.0, 1.0, &mut r);
    let targets = Arc::new(Matrix::from_fn(4, 4, |i, j| ((i + j) % 2) as f32));
    gradcheck(&[z], move |t, ids| {
        let s = t.matmul_nt(ids[0], ids[0]);
        t.bce_with_logits(s, targets.clone())
    }, 5e-2);
}

#[test]
fn sce_loss_through_decoder() {
    let mut r = rng(11);
    let h = Matrix::uniform(4, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 3, -1.0, 1.0, &mut r);
    let target = Arc::new(Matrix::uniform(4, 3, 0.0, 1.0, &mut r));
    gradcheck(&[h, w], move |t, ids| {
        let z = t.matmul(ids[0], ids[1]);
        t.sce_loss(z, target.clone(), vec![0, 1, 3], 2.0)
    }, 2e-2);
}

#[test]
fn info_nce_through_projectors() {
    let mut r = rng(12);
    let h1 = Matrix::uniform(5, 3, -1.0, 1.0, &mut r);
    let h2 = Matrix::uniform(5, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 3, -1.0, 1.0, &mut r);
    gradcheck(&[h1, h2, w], |t, ids| {
        let u = t.matmul(ids[0], ids[2]);
        let v = t.matmul(ids[1], ids[2]);
        t.info_nce(u, v, 0.6)
    }, 5e-2);
}

#[test]
fn adj_recon_through_linear() {
    let mut r = rng(13);
    let adj = small_csr();
    let h = Matrix::uniform(4, 3, -0.8, 0.8, &mut r);
    let w = Matrix::uniform(3, 2, -0.8, 0.8, &mut r);
    gradcheck(&[h, w], move |t, ids| {
        let z = t.matmul(ids[0], ids[1]);
        let (loss, _) = t.adj_recon(z, adj.clone(), Default::default());
        loss
    }, 5e-2);
}

#[test]
fn info_nce_sampled_through_projectors() {
    let mut r = rng(22);
    let h1 = Matrix::uniform(5, 3, -1.0, 1.0, &mut r);
    let h2 = Matrix::uniform(5, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 3, -1.0, 1.0, &mut r);
    // Fixed table with a deliberate self-collision (anchor 2, slot 1).
    let neg: Vec<u32> = vec![1, 3, 2, 4, 4, 2, 0, 1, 2, 0];
    gradcheck(&[h1, h2, w], move |t, ids| {
        let u = t.matmul(ids[0], ids[2]);
        let v = t.matmul(ids[1], ids[2]);
        t.info_nce_sampled(u, v, 0.6, 2, &neg)
    }, 5e-2);
}

#[test]
fn adj_recon_sampled_through_linear() {
    let mut r = rng(23);
    let adj = small_csr();
    let h = Matrix::uniform(4, 3, -0.8, 0.8, &mut r);
    let w = Matrix::uniform(3, 2, -0.8, 0.8, &mut r);
    let neg: Vec<u32> = vec![2, 3, 3, 0, 0, 1, 1, 2];
    gradcheck(&[h, w], move |t, ids| {
        let z = t.matmul(ids[0], ids[1]);
        let (loss, _) = t.adj_recon_sampled(z, adj.clone(), Default::default(), 2, &neg);
        loss
    }, 5e-2);
}

#[test]
fn variance_hinge_through_linear() {
    let mut r = rng(14);
    let h = Matrix::uniform(5, 3, -0.3, 0.3, &mut r);
    let w = Matrix::uniform(3, 3, -0.5, 0.5, &mut r);
    gradcheck(&[h, w], |t, ids| {
        let z = t.matmul(ids[0], ids[1]);
        t.variance_hinge(z, 1e-4)
    }, 2e-2);
}

#[test]
fn gat_layer_end_to_end() {
    let mut r = rng(15);
    // cycle + self loops
    let mut trip = vec![];
    for i in 0..4usize {
        trip.push((i, i, 1.0));
        let j = (i + 1) % 4;
        trip.push((i, j, 1.0));
        trip.push((j, i, 1.0));
    }
    let g = Arc::new(CsrMatrix::from_triplets(4, 4, &trip));
    let x = Matrix::uniform(4, 3, -1.0, 1.0, &mut r);
    let w = Matrix::uniform(3, 2, -1.0, 1.0, &mut r);
    let a_src = Matrix::uniform(1, 2, -0.5, 0.5, &mut r);
    let a_dst = Matrix::uniform(1, 2, -0.5, 0.5, &mut r);
    gradcheck(&[x, w, a_src, a_dst], move |t, ids| {
        let h = t.matmul(ids[0], ids[1]);
        let o = t.gat(h, ids[2], ids[3], g.clone(), 0.2);
        let o = t.elu(o, 1.0);
        t.frob_sq(o)
    }, 1e-1);
}

#[test]
fn multi_loss_weighted_sum() {
    // The full GCMAE-style composite: several losses added with weights.
    let mut r = rng(16);
    let adj = small_csr();
    let h = Matrix::uniform(4, 3, -0.5, 0.5, &mut r);
    let target = Arc::new(Matrix::uniform(4, 3, 0.0, 1.0, &mut r));
    gradcheck(&[h], move |t, ids| {
        let sce = t.sce_loss(ids[0], target.clone(), vec![0, 2], 2.0);
        let var = t.variance_hinge(ids[0], 1e-4);
        let (adj_l, _) = t.adj_recon(ids[0], adj.clone(), Default::default());
        let s1 = t.add_scaled(sce, var, 0.5);
        t.add_scaled(s1, adj_l, 0.25)
    }, 5e-2);
}

#[test]
fn grad_not_propagated_to_constants() {
    let mut tape = Tape::new();
    let c = tape.constant(Matrix::full(2, 2, 1.0));
    let l = tape.leaf(Matrix::full(2, 2, 2.0));
    let p = tape.hadamard(c, l);
    let loss = tape.sum_all(p);
    let grads = tape.backward(loss);
    assert!(grads.get(c).is_none());
    assert!(grads.get(l).is_some());
}

#[test]
fn gradient_accumulates_across_reuse() {
    // y = x + x ⇒ dy/dx = 2
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::scalar(3.0));
    let y = tape.add(x, x);
    let loss = tape.sum_all(y);
    let grads = tape.backward(loss);
    assert_eq!(grads.get(x).unwrap().scalar_value(), 2.0);
}
