//! Sharded-tier integration: partitioner safety properties over seeded
//! random graphs and encoder depths, then end-to-end gateway parity — a
//! 4-shard tier must answer bit-for-bit like a single process, before and
//! after mutations routed through the gateway (halo invalidation included),
//! at 1 and 8 kernel threads — plus the protocol-version contract.

use gcmae_repro::core::model::seeded_rng;
use gcmae_repro::core::{Gcmae, GcmaeConfig};
use gcmae_repro::graph::Graph;
use gcmae_repro::serve::{
    halo_depth_for, load_bundle, save_bundle, AnnParams, Client, ClientError, Engine, Gateway,
    GatewayError, GatewayOptions, Partition, PartitionError, PartitionMode, Request, RequestMeta,
    ResilientClient, Response, Server, ServerOptions, ShardTier, TierOptions, Wal, WalRecord,
    PROTOCOL_VERSION,
};
use gcmae_repro::tensor::parallel::set_num_threads;
use gcmae_repro::tensor::Matrix;

/// Ring backbone (guaranteed connectivity) plus seeded random chords,
/// deduplicated so the CSR sees each undirected edge once.
fn random_graph(n: usize, chords: usize, seed: u64) -> Graph {
    let mut edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let mut state = seed | 1;
    let mut step = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for _ in 0..chords {
        let u = step() % n;
        let v = step() % n;
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    let mut norm: Vec<(usize, usize)> = edges
        .into_iter()
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    norm.sort_unstable();
    norm.dedup();
    Graph::from_edges(n, &norm)
}

/// Partitioner safety net, per ISSUE: over seeded random graphs and every
/// encoder depth we serve, (1) owned sets partition the node set exactly,
/// (2) the closed `halo_depth`-hop ball of every node is resident on the
/// shard owning it, and (3) each shard's local graph is exactly the induced
/// subgraph over its residents. Property (2) is what makes owned embeddings
/// bit-exact; property (3) is what the gateway's repair plans maintain under
/// mutations, so it must hold at build time too.
#[test]
fn partition_properties_hold_over_random_graphs_and_depths() {
    for seed in [3_u64, 11, 42] {
        let n = 60 + (seed as usize % 17);
        let g = random_graph(n, n / 2, seed);
        for shards in [2_usize, 3, 5] {
            for layers in [1_usize, 2, 3] {
                let depth = halo_depth_for(layers);
                for mode in [PartitionMode::Hash, PartitionMode::Bfs] {
                    let p = match Partition::build(&g, shards, mode, depth) {
                        Ok(p) => p,
                        // Hash mode may leave a shard empty on small n; that
                        // is a typed error, not a property violation.
                        Err(PartitionError::EmptyShard(_)) => continue,
                        Err(e) => panic!("seed {seed} {mode:?}: {e}"),
                    };

                    // (1) exact partition: every node owned exactly once,
                    // and the mask agrees with the owner table.
                    let mut owned_count = vec![0_usize; n];
                    for (s, spec) in p.shards.iter().enumerate() {
                        for (i, &v) in spec.residents.iter().enumerate() {
                            if spec.owned[i] {
                                owned_count[v] += 1;
                                assert_eq!(p.owner[v] as usize, s, "seed {seed} {mode:?}");
                            }
                        }
                    }
                    assert!(
                        owned_count.iter().all(|&c| c == 1),
                        "seed {seed} {mode:?} shards {shards} depth {depth}: {owned_count:?}"
                    );

                    // (2) halo sufficiency: every node's closed depth-hop
                    // neighborhood is resident on its owning shard.
                    for v in 0..n {
                        let spec = &p.shards[p.owner[v] as usize];
                        for u in g.k_hop_closed(&[v], depth) {
                            assert!(
                                spec.residents.binary_search(&u).is_ok(),
                                "seed {seed} {mode:?}: node {u} within {depth} hops of \
                                 {v} missing from shard {}",
                                p.owner[v]
                            );
                        }
                    }

                    // (3) induced-subgraph equivalence, edge for edge.
                    for (s, spec) in p.shards.iter().enumerate() {
                        let sg = p.shard_graph(&g, s);
                        assert_eq!(sg.num_nodes(), spec.residents.len());
                        for (i, &v) in spec.residents.iter().enumerate() {
                            let mut want: Vec<usize> = g
                                .neighbors(v)
                                .iter()
                                .filter_map(|&w| {
                                    spec.residents.binary_search(&(w as usize)).ok()
                                })
                                .collect();
                            want.sort_unstable();
                            let mut got: Vec<usize> =
                                sg.neighbors(i).iter().map(|&w| w as usize).collect();
                            got.sort_unstable();
                            assert_eq!(got, want, "seed {seed} {mode:?} shard {s} node {v}");
                        }
                    }
                }
            }
        }
    }
}

/// Full sweep through the gateway must match `expected` bit-for-bit.
fn assert_sweep(client: &mut Client, expected: &Matrix, n: usize) {
    for chunk_start in (0..n).step_by(16) {
        let nodes: Vec<usize> = (chunk_start..n.min(chunk_start + 16)).collect();
        let rows = client.embed(&nodes).expect("gateway sweep");
        for (row, &v) in rows.iter().zip(&nodes) {
            assert_eq!(row.as_slice(), expected.row(v), "node {v}");
        }
    }
}

fn tier_parity_round(kernel_threads: usize, seed: u64) {
    set_num_threads(kernel_threads);
    let n = 72;
    let in_dim = 6;
    let graph = random_graph(n, 24, seed);
    let mut rng = seeded_rng(seed);
    let features = Matrix::uniform(n, in_dim, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig { hidden_dim: 12, proj_dim: 8, ..GcmaeConfig::fast() };
    let model = Gcmae::new(&cfg, in_dim, &mut rng);
    let bundle = save_bundle(&model, &graph, &features);

    let wal_dir = std::env::temp_dir().join(format!(
        "gcmae_sharding_test_{}_{kernel_threads}_{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let tier = ShardTier::launch(
        &bundle,
        4,
        TierOptions {
            mode: PartitionMode::Bfs,
            wal_dir: Some(wal_dir.clone()),
            client_seed: 0x7061_7269_7479 ^ seed,
            ..TierOptions::default()
        },
    )
    .expect("tier launch");
    let addr = tier.gateway_addr().to_string();
    let mut client = Client::connect(&addr).expect("gateway connect");

    // Pre-mutation: embeddings and top-k through the gateway match a
    // single-process engine on the same bundle.
    let expected = model.encode(&graph, &features);
    assert_sweep(&mut client, &expected, n);
    let (m1, g1, f1) = load_bundle(&bundle).expect("bundle");
    let mut single = Engine::new(m1, g1, f1).expect("single engine");
    for v in (0..n).step_by(7) {
        assert_eq!(
            client.top_k(v, 5).expect("gateway top_k"),
            single.top_k(v, 5).expect("single top_k"),
            "pre-mutation top_k({v})"
        );
    }

    // Mutations through the gateway, crossing region boundaries on purpose:
    // the repair plans must extend halos on several shards, and the edges'
    // invalidation must reach every replica.
    let new_edges = [(0, n / 2), (1, n / 2 + 1), (n / 4, 3 * n / 4)];
    let mut mutator = ResilientClient::new(&addr, 0x7061 + seed);
    mutator.add_edges(&new_edges).expect("gateway add_edges");
    let new_feat: Vec<f32> = (0..in_dim).map(|i| 0.25 * i as f32 - 0.5).collect();
    let new_neighbors = [0_usize, n / 2, n - 1];
    let new_id = mutator
        .add_node(&new_neighbors, &new_feat)
        .expect("gateway add_node");
    assert_eq!(new_id, n, "appended node id");

    // Clean single-process replay of the same mutations.
    let (g2, _) = graph.add_edges(&new_edges).expect("clean add_edges");
    let (g3, _) = g2.add_node(&new_neighbors).expect("clean add_node");
    let mut data = Vec::with_capacity((n + 1) * in_dim);
    for v in 0..n {
        data.extend_from_slice(features.row(v));
    }
    data.extend_from_slice(&new_feat);
    let f3 = Matrix::from_vec(n + 1, in_dim, data);
    let expected2 = model.encode(&g3, &f3);
    assert_sweep(&mut client, &expected2, n + 1);

    let (m2, _, _) = load_bundle(&bundle).expect("bundle reload");
    let mut clean = Engine::new(m2, g3, f3).expect("clean engine");
    for v in (0..=n).step_by(5) {
        assert_eq!(
            client.top_k(v, 5).expect("gateway top_k"),
            clean.top_k(v, 5).expect("clean top_k"),
            "post-mutation top_k({v})"
        );
    }

    drop(client);
    tier.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Global similarity search through the gateway: each shard answers
/// `sim_top_k_owned` over its own ANN index, the gateway merges with the
/// score-desc / id-asc tie-break, and the result must be bit-equal to a
/// single-process engine on the same bundle. `ef_search` is raised past
/// every shard's size so candidate sets are exhaustive and the exact f32
/// re-score makes both sides literally identical — including on anchors
/// resident only as halo replicas, and after gateway-routed mutations.
#[test]
fn sharded_sim_top_k_is_bit_equal_to_a_single_process_engine() {
    let n = 72;
    let in_dim = 6;
    let graph = random_graph(n, 24, 31);
    let mut rng = seeded_rng(31);
    let features = Matrix::uniform(n, in_dim, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig { hidden_dim: 12, proj_dim: 8, ..GcmaeConfig::fast() };
    let model = Gcmae::new(&cfg, in_dim, &mut rng);
    let bundle = save_bundle(&model, &graph, &features);

    let exhaustive = AnnParams { ef_search: 4 * n, ..AnnParams::default() };
    let tier = ShardTier::launch(
        &bundle,
        4,
        TierOptions { ann: Some(exhaustive), ..TierOptions::default() },
    )
    .expect("tier launch");
    let mut client = Client::connect(&tier.gateway_addr().to_string()).expect("gateway connect");

    let (m1, g1, f1) = load_bundle(&bundle).expect("bundle");
    let mut single = Engine::new(m1, g1, f1).expect("single engine");
    single.set_ann_params(exhaustive);
    for v in (0..n).step_by(3) {
        assert_eq!(
            client.sim_top_k(v, 7).expect("gateway sim_top_k"),
            single.sim_top_k(v, 7).expect("single sim_top_k"),
            "pre-mutation sim_top_k({v})"
        );
    }

    // Mutations invalidate quantized rows and unlink them from every
    // shard's index; the re-warmed answers must still merge bit-equal.
    let new_edges = [(0, n / 2), (n / 4, 3 * n / 4)];
    let mut mutator = ResilientClient::new(&tier.gateway_addr().to_string(), 0x51ed);
    mutator.add_edges(&new_edges).expect("gateway add_edges");
    let (g2, _) = graph.add_edges(&new_edges).expect("clean add_edges");
    let (m2, _, _) = load_bundle(&bundle).expect("bundle reload");
    let mut clean = Engine::new(m2, g2, features.clone()).expect("clean engine");
    clean.set_ann_params(exhaustive);
    for v in (0..n).step_by(5) {
        assert_eq!(
            client.sim_top_k(v, 7).expect("gateway sim_top_k"),
            clean.sim_top_k(v, 7).expect("clean sim_top_k"),
            "post-mutation sim_top_k({v})"
        );
    }

    // Aggregated stats surface the per-shard ANN/quantized counters.
    let stats = client.stats().expect("gateway stats");
    assert!(stats.ann_searches > 0, "shards answered sim_top_k via the index");
    assert!(stats.quantized_rows > 0, "quantized sidecars are live");
    assert!(stats.ann_resident_bytes > 0);

    drop(client);
    tier.shutdown();
}

#[test]
fn four_shard_tier_is_bit_exact_with_single_threaded_kernels() {
    tier_parity_round(1, 21);
    set_num_threads(0);
}

#[test]
fn four_shard_tier_is_bit_exact_with_eight_kernel_threads() {
    tier_parity_round(8, 22);
    set_num_threads(0);
}

/// Version contract at the gateway: frames from the future fail loudly with
/// a typed error naming both versions, the connection survives, and both
/// legacy (no version) and current-version frames keep working on it.
#[test]
fn future_protocol_version_fails_loud_but_connection_survives() {
    let n = 24;
    let graph = random_graph(n, 0, 9);
    let mut rng = seeded_rng(9);
    let features = Matrix::uniform(n, 4, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, ..GcmaeConfig::fast() };
    let model = Gcmae::new(&cfg, 4, &mut rng);
    let bundle = save_bundle(&model, &graph, &features);
    let tier = ShardTier::launch(&bundle, 2, TierOptions::default()).expect("tier launch");
    let mut client = Client::connect(&tier.gateway_addr().to_string()).expect("connect");

    let future = RequestMeta {
        version: Some(PROTOCOL_VERSION + 1),
        ..RequestMeta::default()
    };
    match client.call_with(&Request::Ping, &future) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("unsupported protocol version"),
                "wrong message: {msg}"
            );
        }
        other => panic!("future version must fail loud, got {other:?}"),
    }
    // Same connection: legacy frames (no version field) stay accepted...
    client.ping().expect("legacy frame after mismatch");
    // ...and so do current-version frames.
    let current = RequestMeta {
        version: Some(PROTOCOL_VERSION),
        ..RequestMeta::default()
    };
    client.call_with(&Request::Ping, &current).expect("current version");

    drop(client);
    tier.shutdown();
}

/// Exactly-once under concurrent duplicate delivery: two connections race
/// the *same* `(client, seq)` `add_node` at the gateway. The admission gate
/// must serialize them — one applies, the other waits out the in-flight
/// reservation and replays the recorded ack — so both see the same new
/// global id and the tier grows by exactly one node per round. (This is
/// the check-then-record race: without an atomic gate, both copies read
/// `Fresh` and the node is minted twice.)
#[test]
fn concurrent_duplicate_mutation_applies_exactly_once() {
    let n = 32;
    let in_dim = 4;
    let graph = random_graph(n, 8, 5);
    let mut rng = seeded_rng(5);
    let features = Matrix::uniform(n, in_dim, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, ..GcmaeConfig::fast() };
    let model = Gcmae::new(&cfg, in_dim, &mut rng);
    let bundle = save_bundle(&model, &graph, &features);
    let tier = ShardTier::launch(&bundle, 2, TierOptions::default()).expect("tier launch");
    let addr = tier.gateway_addr().to_string();

    let rounds = 4_u64;
    for seq in 1..=rounds {
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let ids: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let addr = addr.clone();
                    let barrier = std::sync::Arc::clone(&barrier);
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr).expect("connect");
                        let request = Request::AddNode {
                            neighbors: vec![0, n - 1],
                            features: vec![0.125; in_dim],
                        };
                        let meta = RequestMeta {
                            client: Some(777),
                            seq: Some(seq),
                            ..RequestMeta::default()
                        };
                        barrier.wait();
                        match client.call_with(&request, &meta).expect("add_node") {
                            Response::NodeAdded { node } => node,
                            other => panic!("expected node_added, got {other:?}"),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("racer")).collect()
        });
        let want = n + (seq as usize) - 1;
        assert_eq!(ids, vec![want, want], "round {seq}: divergent or duplicate ids");
    }

    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.num_nodes,
        n + rounds as usize,
        "duplicate deliveries must not mint extra nodes"
    );
    drop(client);
    tier.shutdown();
}

/// Crash-window recovery: the gateway WAL holds a mutation the shards never
/// saw (journaled write-ahead, crashed before delivery). A restarted
/// gateway with the same identity seed must probe each shard's applied
/// frame count, redeliver exactly the missing tail, answer reads
/// bit-identically to a clean replay, and keep accepting new mutations.
/// And if the WAL is instead *behind* the shards (stale or wrong file),
/// startup must fail loudly rather than serve divergent numbering.
#[test]
fn restarted_gateway_reconciles_undelivered_wal_tail() {
    let n = 32;
    let in_dim = 4;
    let graph = random_graph(n, 8, 13);
    let mut rng = seeded_rng(13);
    let features = Matrix::uniform(n, in_dim, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig { hidden_dim: 8, proj_dim: 4, ..GcmaeConfig::fast() };
    let model = Gcmae::new(&cfg, in_dim, &mut rng);
    let halo = halo_depth_for(model.encoder_layers());
    let partition =
        Partition::build(&graph, 2, PartitionMode::Bfs, halo).expect("partition");

    // Shards assembled by hand (no ShardTier) so they outlive the gateway.
    let mut servers = Vec::new();
    let mut shard_addrs = Vec::new();
    for s in 0..2 {
        let slice = partition.shard_bundle(&model, &graph, &features, s);
        let (sm, sg, sf) = load_bundle(&slice).expect("shard bundle");
        let mut engine = Engine::new(sm, sg, sf).expect("shard engine");
        engine.set_owned(partition.shards[s].owned.clone()).expect("owned mask");
        let server = Server::start_with(
            engine,
            "127.0.0.1:0",
            ServerOptions {
                max_batch: 8,
                read_timeout: Some(std::time::Duration::from_millis(500)),
                ..ServerOptions::default()
            },
        )
        .expect("shard server");
        shard_addrs.push(server.addr().to_string());
        servers.push(server);
    }

    let wal_dir = std::env::temp_dir().join(format!(
        "gcmae_gateway_restart_test_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("wal dir");
    let wal_path = wal_dir.join("gateway.wal");
    let seed = 0x7265_7374_6172_7421; // stable across both gateway lifetimes
    let gw_opts = || GatewayOptions {
        wal_path: Some(wal_path.clone()),
        read_timeout: Some(std::time::Duration::from_millis(500)),
        client_seed: seed,
        ..GatewayOptions::default()
    };

    // Lifetime 1: two mutations, fully delivered.
    let gateway = Gateway::start(
        graph.clone(),
        &features,
        &partition,
        &shard_addrs,
        "127.0.0.1:0",
        gw_opts(),
    )
    .expect("gateway lifetime 1");
    let addr1 = gateway.addr().to_string();
    let delivered_edges = [(0, n / 2), (1, n / 2 + 1)];
    let new_feat: Vec<f32> = (0..in_dim).map(|i| 0.25 * i as f32 - 0.5).collect();
    let new_neighbors = [0_usize, n - 1];
    {
        let mut mutator = ResilientClient::new(&addr1, 0x51);
        mutator.add_edges(&delivered_edges).expect("delivered add_edges");
        assert_eq!(
            mutator.add_node(&new_neighbors, &new_feat).expect("delivered add_node"),
            n
        );
    }
    gateway.shutdown();

    // Crash window: journal a third mutation the shards never receive.
    let undelivered_edge = (2, n / 2 + 2);
    {
        let (mut wal, records) = Wal::open(&wal_path).expect("reopen gateway wal");
        assert_eq!(records.len(), 2, "both delivered mutations journaled");
        wal.append(&WalRecord {
            client: 0x99,
            seq: 1,
            request: Request::AddEdges { edges: vec![undelivered_edge] },
            halo: false,
        })
        .expect("hand-journal undelivered record");
    }

    // Clean single-process replay of all three mutations.
    let (g2, _) = graph.add_edges(&delivered_edges).expect("clean add_edges");
    let (g3, _) = g2.add_node(&new_neighbors).expect("clean add_node");
    let (g4, _) = g3.add_edges(&[undelivered_edge]).expect("clean undelivered");
    let mut data = Vec::with_capacity((n + 1) * in_dim);
    for v in 0..n {
        data.extend_from_slice(features.row(v));
    }
    data.extend_from_slice(&new_feat);
    let f4 = Matrix::from_vec(n + 1, in_dim, data);
    let expected = model.encode(&g4, &f4);

    // Lifetime 2: same seed, same WAL. Startup probes the shards, queues
    // the undelivered tail, and the redelivery thread lands it; reads
    // fence on the pending counter until then, so the first sweep already
    // sees the converged tier.
    let gateway = Gateway::start(
        graph.clone(),
        &features,
        &partition,
        &shard_addrs,
        "127.0.0.1:0",
        gw_opts(),
    )
    .expect("gateway lifetime 2");
    let addr2 = gateway.addr().to_string();
    let mut client = Client::connect(&addr2).expect("connect lifetime 2");
    assert_sweep(&mut client, &expected, n + 1);

    // The tier keeps accepting mutations after reconciliation.
    let post_edge = (3, n / 2 + 3);
    let mut mutator = ResilientClient::new(&addr2, 0xA7);
    mutator.add_edges(&[post_edge]).expect("post-restart add_edges");
    let (g5, _) = g4.add_edges(&[post_edge]).expect("clean post-restart");
    let expected2 = model.encode(&g5, &f4);
    assert_sweep(&mut client, &expected2, n + 1);
    drop(client);
    drop(mutator);
    gateway.shutdown();

    // Stale-journal guard: with the WAL gone the shards are *ahead* of the
    // journal, which must be a loud startup failure, not silent divergence.
    std::fs::remove_file(&wal_path).expect("drop gateway wal");
    match Gateway::start(
        graph.clone(),
        &features,
        &partition,
        &shard_addrs,
        "127.0.0.1:0",
        gw_opts(),
    ) {
        Err(GatewayError::Layout(what)) => {
            assert!(what.contains("wal"), "unexpected layout error: {what}")
        }
        Ok(_) => panic!("gateway started against a stale journal"),
        Err(e) => panic!("expected layout error, got {e}"),
    }

    for server in servers {
        let _ = server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
}
