//! Telemetry is a pure tap: attaching an observer — session-local or
//! globally installed — must leave every training output bit-identical to a
//! bare run, at any thread count. Runs in CI under `GCMAE_NUM_THREADS=1`
//! and `=8` (fault-injection matrix), and additionally sweeps both thread
//! counts itself so a plain `cargo test` covers them too.

use std::sync::{Arc, Mutex};

use gcmae_repro::core::{FaultTolerance, GcmaeConfig, TrainSession};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::Dataset;
use gcmae_repro::obs::{JsonlObserver, NoopObserver, Registry};
use gcmae_repro::tensor::parallel::set_num_threads;

fn tiny() -> Dataset {
    generate(&CitationSpec::cora().scaled(0.02), 11)
}

fn cfg(epochs: usize) -> GcmaeConfig {
    GcmaeConfig {
        hidden_dim: 16,
        proj_dim: 8,
        epochs,
        ..GcmaeConfig::fast()
    }
}

/// The acceptance bar for the observability layer: a no-op observer, a live
/// registry, and a globally installed registry (which also activates the
/// kernel spans in `gcmae-tensor`) all reproduce the bare run to the bit.
/// Thread counts 1 and 8 are swept in a single #[test] because the worker
/// pool is process-global.
#[test]
fn observers_leave_training_bit_identical_at_1_and_8_threads() {
    let ds = tiny();
    let cfg = cfg(6);
    for threads in [1usize, 8] {
        set_num_threads(threads);
        let bare = TrainSession::new(&cfg).seed(9).run(&ds).expect("bare run");

        let noop = TrainSession::new(&cfg)
            .seed(9)
            .observer(Arc::new(NoopObserver))
            .run(&ds)
            .expect("noop run");
        assert_eq!(
            bare.embeddings.max_abs_diff(&noop.embeddings),
            0.0,
            "noop observer changed outputs at {threads} threads"
        );

        let registry = Arc::new(Registry::new());
        gcmae_repro::obs::install(registry.clone());
        let observed = TrainSession::new(&cfg)
            .seed(9)
            .observer(registry.clone())
            .run(&ds)
            .expect("observed run");
        gcmae_repro::obs::uninstall();
        assert_eq!(
            bare.embeddings.max_abs_diff(&observed.embeddings),
            0.0,
            "registry observer changed outputs at {threads} threads"
        );
        assert_eq!(bare.history.len(), observed.history.len());
        assert!(
            registry.counter_value("train.step") as usize >= observed.history.len(),
            "registry must have seen at least one step per epoch"
        );
        assert!(
            registry.counter_value("kernel.matmul.calls") > 0,
            "global install must activate kernel spans"
        );
    }
    set_num_threads(0);
}

/// The JSON-lines sink receives one `train.step` event per optimizer step,
/// carrying all four loss terms, the gradient norm, and the learning rate —
/// and the guarded regime reports rollbacks through the same stream.
#[test]
fn jsonl_stream_carries_losses_grad_norm_and_rollbacks() {
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let ds = tiny();
    let cfg = cfg(8);
    let ft = FaultTolerance {
        checkpoint_every: 2,
        ..FaultTolerance::default()
    };
    let plan = gcmae_repro::core::FaultPlan {
        nan_loss_at: Some(4),
        ..gcmae_repro::core::FaultPlan::default()
    };
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let out = TrainSession::new(&cfg)
        .seed(12)
        .guards(&ft)
        .inject_faults(plan)
        .observer(Arc::new(JsonlObserver::new(Box::new(buf.clone()))))
        .run(&ds)
        .expect("guarded run recovers");
    assert_eq!(out.rollbacks.len(), 1);

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let steps: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("{\"event\":\"train.step\""))
        .collect();
    assert!(
        steps.len() >= out.history.len(),
        "expected at least one train.step line per epoch, got {}",
        steps.len()
    );
    for field in [
        "\"total\":",
        "\"sce\":",
        "\"contrast\":",
        "\"adj\":",
        "\"variance\":",
        "\"grad_norm\":",
        "\"lr\":",
    ] {
        assert!(
            steps[0].contains(field),
            "train.step line missing {field}: {}",
            steps[0]
        );
    }
    let rollbacks = text
        .lines()
        .filter(|l| l.starts_with("{\"event\":\"train.rollback\""))
        .count();
    assert_eq!(
        rollbacks, 1,
        "one injected NaN must surface as one rollback event"
    );
}
