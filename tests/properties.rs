//! Workspace-level property-based tests (proptest) on the core invariants:
//! graph structure, metrics, clustering, and autograd.

use gcmae_repro::eval::kmeans;
use gcmae_repro::eval::metrics::classification::accuracy;
use gcmae_repro::eval::metrics::clustering::{ari, nmi};
use gcmae_repro::eval::metrics::link::roc_auc;
use gcmae_repro::graph::Graph;
use gcmae_repro::tensor::{Matrix, Tape};
use proptest::prelude::*;

/// Arbitrary small undirected edge list.
fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..3 * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_edges_are_symmetric(edges in edges_strategy(12)) {
        let g = Graph::from_edges(12, &edges);
        for (u, v) in g.directed_edges() {
            prop_assert!(g.has_edge(v, u), "({u},{v}) missing reverse");
            prop_assert_ne!(u, v, "self loop survived");
        }
        // handshake lemma
        let deg_sum: usize = (0..12).map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
    }

    #[test]
    fn induced_subgraph_never_invents_edges(edges in edges_strategy(10), keep in prop::collection::btree_set(0usize..10, 2..8)) {
        let g = Graph::from_edges(10, &edges);
        let nodes: Vec<usize> = keep.into_iter().collect();
        let sub = g.induced_subgraph(&nodes);
        for (a, b) in sub.undirected_edges() {
            prop_assert!(g.has_edge(nodes[a], nodes[b]));
        }
    }

    #[test]
    fn gcn_norm_is_symmetric_positive_with_correct_diagonal(edges in edges_strategy(10)) {
        let g = Graph::from_edges(10, &edges);
        let norm = g.gcn_norm();
        let dense = norm.to_dense();
        for r in 0..10 {
            // diagonal entry is 1/(deg+1)
            let expected = 1.0 / (g.degree(r) as f32 + 1.0);
            prop_assert!((dense[(r, r)] - expected).abs() < 1e-6);
            for c in 0..10 {
                prop_assert!(dense[(r, c)] >= 0.0);
                prop_assert!((dense[(r, c)] - dense[(c, r)]).abs() < 1e-6, "asymmetry at ({r},{c})");
            }
        }
        // mean normalization, by contrast, IS row-stochastic
        let (mean, _) = g.mean_norm();
        let md = mean.to_dense();
        for r in 0..10 {
            let s: f32 = (0..10).map(|c| md[(r, c)]).sum();
            prop_assert!((s - 1.0).abs() < 1e-5, "mean-norm row {r} sums to {s}");
        }
    }

    #[test]
    fn nmi_and_ari_are_permutation_invariant(labels in prop::collection::vec(0usize..4, 8..40), perm_seed in 0u64..100) {
        // relabel clusters by a fixed permutation: scores must not change
        let relabel: Vec<usize> = match perm_seed % 3 {
            0 => vec![1, 2, 3, 0],
            1 => vec![3, 2, 1, 0],
            _ => vec![2, 0, 3, 1],
        };
        let other: Vec<usize> = labels.iter().map(|&l| relabel[l]).collect();
        prop_assert!((nmi(&labels, &other) - 1.0).abs() < 1e-9);
        prop_assert!((ari(&labels, &other) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_is_symmetric_and_bounded(a in prop::collection::vec(0usize..3, 10..40), seed in 0u64..50) {
        let b: Vec<usize> = a.iter().map(|&x| (x + seed as usize) % 3).collect();
        let ab = nmi(&a, &b);
        let ba = nmi(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn auc_is_complemented_by_label_flip(scores in prop::collection::vec(0.0f32..1.0, 10..50)) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
        let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&scores, &flipped);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }

    #[test]
    fn accuracy_is_bounded_and_exact_for_identity(labels in prop::collection::vec(0usize..5, 1..40)) {
        prop_assert_eq!(accuracy(&labels, &labels), 1.0);
    }

    #[test]
    fn kmeans_assignments_are_valid(
        points in prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 6..40),
        k in 1usize..4,
    ) {
        let n = points.len();
        let mut m = Matrix::zeros(n, 2);
        for (i, &(x, y)) in points.iter().enumerate() {
            m[(i, 0)] = x;
            m[(i, 1)] = y;
        }
        let res = kmeans(&m, k, 20, 0);
        prop_assert_eq!(res.assignments.len(), n);
        prop_assert!(res.assignments.iter().all(|&a| a < k));
        prop_assert!(res.inertia.is_finite() && res.inertia >= 0.0);
    }

    #[test]
    fn autograd_linear_layer_gradient_is_exact(
        xs in prop::collection::vec(-1.0f32..1.0, 6),
        ws in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        // loss = ‖X·W‖² has a closed-form gradient dW = 2·Xᵀ·X·W
        let x = Matrix::from_vec(2, 3, xs);
        let w = Matrix::from_vec(3, 2, ws);
        let mut tape = Tape::new();
        let xi = tape.constant(x.clone());
        let wi = tape.leaf(w.clone());
        let y = tape.matmul(xi, wi);
        let loss = tape.frob_sq(y);
        let grads = tape.backward(loss);
        let g = grads.get(wi).unwrap();
        let xtx = gcmae_repro::tensor::dense::matmul_tn(&x, &x);
        let mut expected = gcmae_repro::tensor::dense::matmul(&xtx, &w);
        expected.scale_inplace(2.0);
        prop_assert!(g.max_abs_diff(&expected) < 1e-4, "grad mismatch {}", g.max_abs_diff(&expected));
    }

    #[test]
    fn masking_rate_zero_keeps_features(vals in prop::collection::vec(0.0f32..1.0, 12)) {
        use gcmae_repro::graph::augment::mask_node_features;
        use rand::{rngs::StdRng, SeedableRng};
        let x = Matrix::from_vec(4, 3, vals);
        let mut rng = StdRng::seed_from_u64(1);
        let m = mask_node_features(&x, 0.0, &mut rng);
        // exactly the one forced row is masked
        prop_assert_eq!(m.masked.len(), 1);
    }

    /// Checkpoint v2 round-trips every parameter value, both Adam moment
    /// matrices, and the training metadata bit-exactly, for arbitrary
    /// parameter shapes and mid-optimization state.
    #[test]
    fn train_checkpoint_v2_roundtrips_exactly(
        specs in prop::collection::vec((1usize..5, 1usize..5, 0u64..1 << 48), 1..5),
        epoch in proptest::num::u64::ANY,
        adam_step in proptest::num::u64::ANY,
        lr in 1e-6f32..1.0,
        rng_seed in proptest::num::u64::ANY,
        retries_used in proptest::num::u32::ANY,
    ) {
        use gcmae_repro::nn::{load_train_state, save_train_state, Adam, ParamId, ParamStore, Session, TrainMeta};
        use rand::{rngs::StdRng, SeedableRng};
        let build = |with_values: bool| {
            let mut store = ParamStore::new();
            for &(r, c, s) in &specs {
                let mut rng = StdRng::seed_from_u64(s);
                if with_values {
                    store.create(Matrix::uniform(r, c, -2.0, 2.0, &mut rng));
                } else {
                    store.create(Matrix::zeros(r, c));
                }
            }
            store
        };
        // a few optimizer steps so the moments are non-trivial
        let mut store = build(true);
        let mut adam = Adam::new(0.05, 0.0);
        for _ in 0..3 {
            let mut sess = Session::new();
            let mut loss = None;
            for i in 0..store.len() {
                let w = sess.param(&store, ParamId::from_index(i));
                let l = sess.tape.frob_sq(w);
                loss = Some(match loss { None => l, Some(acc) => sess.tape.add(acc, l) });
            }
            let mut grads = sess.tape.backward(loss.unwrap());
            adam.step(&mut store, &sess, &mut grads);
        }

        let meta = TrainMeta { epoch, adam_step, lr, rng_seed, retries_used };
        let bytes = save_train_state(&store, &meta);
        let mut fresh = build(false);
        let restored = load_train_state(&mut fresh, bytes).unwrap();
        prop_assert_eq!(restored, meta);
        for i in 0..store.len() {
            let id = ParamId::from_index(i);
            prop_assert_eq!(store.value(id).max_abs_diff(fresh.value(id)), 0.0);
            let (m0, v0) = store.moments(id);
            let (m1, v1) = fresh.moments(id);
            prop_assert_eq!(m0.max_abs_diff(m1), 0.0);
            prop_assert_eq!(v0.max_abs_diff(v1), 0.0);
        }
    }
}
