//! Failure-injection and degenerate-input tests: the library must either
//! handle edge cases gracefully or fail fast with a clear panic — never
//! return silently-wrong results.

use gcmae_repro::core::{GcmaeConfig, TrainSession};
use gcmae_repro::eval::kmeans;
use gcmae_repro::graph::augment::mask_node_features;
use gcmae_repro::graph::{Dataset, Graph};
use gcmae_repro::tensor::{CsrMatrix, Matrix, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn training_survives_disconnected_graph() {
    // isolated nodes + two components: message passing must not NaN
    let graph = Graph::from_edges(10, &[(0, 1), (1, 2), (5, 6)]);
    let mut rng = StdRng::seed_from_u64(1);
    let features = Matrix::uniform(10, 6, -1.0, 1.0, &mut rng);
    let ds = Dataset {
        name: "disconnected".into(),
        graph,
        features,
        labels: vec![0; 10],
        num_classes: 1,
    };
    let cfg = GcmaeConfig {
        epochs: 5,
        hidden_dim: 8,
        proj_dim: 4,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_repro::core::Objective::paper().with_dense_caps(0, 10));
    let out = TrainSession::new(&cfg)
        .seed(0)
        .run(&ds)
        .expect("unguarded session cannot fail");
    assert!(out.embeddings.all_finite());
    assert!(out.history.iter().all(|b| b.total.is_finite()));
}

#[test]
fn training_survives_all_zero_features() {
    let graph = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (6, 7), (3, 4), (5, 6)]);
    let ds = Dataset {
        name: "zeros".into(),
        graph,
        features: Matrix::zeros(8, 4),
        labels: vec![0; 8],
        num_classes: 1,
    };
    let cfg = GcmaeConfig {
        epochs: 3,
        hidden_dim: 8,
        proj_dim: 4,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_repro::core::Objective::paper().with_dense_caps(0, 8));
    let out = TrainSession::new(&cfg)
        .seed(0)
        .run(&ds)
        .expect("unguarded session cannot fail");
    assert!(
        out.embeddings.all_finite(),
        "zero features must not produce NaNs"
    );
}

#[test]
fn extreme_mask_rates_are_clamped() {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::uniform(6, 3, 0.0, 1.0, &mut rng);
    // rate 1.0: at least one node must stay visible
    let m = mask_node_features(&x, 1.0, &mut rng);
    assert!(m.masked.len() < 6);
    // rate 0.0: at least one node must be masked (SCE needs a target)
    let m = mask_node_features(&x, 0.0, &mut rng);
    assert_eq!(m.masked.len(), 1);
}

#[test]
#[should_panic(expected = "shape mismatch")]
fn matmul_shape_mismatch_fails_fast() {
    let mut tape = Tape::new();
    let a = tape.constant(Matrix::zeros(2, 3));
    let b = tape.constant(Matrix::zeros(4, 2));
    let _ = tape.matmul(a, b);
}

#[test]
#[should_panic(expected = "scalar loss")]
fn backward_rejects_non_scalar_loss() {
    let mut tape = Tape::new();
    let a = tape.leaf(Matrix::zeros(2, 2));
    let _ = tape.backward(a);
}

#[test]
#[should_panic(expected = "out of range")]
fn csr_rejects_out_of_range_columns() {
    let _ = CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]);
}

#[test]
#[should_panic(expected = "label")]
fn cross_entropy_rejects_out_of_range_labels() {
    let mut tape = Tape::new();
    let logits = tape.constant(Matrix::zeros(2, 3));
    let _ = tape.softmax_ce(logits, vec![0], vec![7]);
}

#[test]
fn kmeans_handles_duplicate_points() {
    // all points identical: must terminate and put everything somewhere
    let data = Matrix::full(10, 3, 1.5);
    let res = kmeans(&data, 3, 20, 0);
    assert_eq!(res.assignments.len(), 10);
    assert!(res.inertia < 1e-6);
}

#[test]
fn kmeans_with_k_equal_n_is_exact() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = Matrix::uniform(5, 2, -1.0, 1.0, &mut rng);
    let res = kmeans(&data, 5, 20, 0);
    // every point can have its own centroid → near-zero inertia
    assert!(res.inertia < 1e-6, "inertia {}", res.inertia);
}

#[test]
fn single_edge_graph_link_split_is_rejected_gracefully() {
    // splitting a graph with very few edges still produces disjoint sets
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let mut rng = StdRng::seed_from_u64(4);
    let split = gcmae_repro::graph::splits::link_split(&g, 0.2, 0.2, &mut rng);
    assert!(split.train_graph.num_edges() >= 1);
    assert!(!split.test_pos.is_empty());
}

#[test]
fn checkpoint_rejects_garbage() {
    use gcmae_repro::nn::{load_params, ParamStore};
    let mut store = ParamStore::new();
    store.create(Matrix::zeros(2, 2));
    let garbage = bytes_from(vec![1, 2, 3]);
    assert!(load_params(&mut store, garbage).is_err());
}

fn bytes_from(v: Vec<u8>) -> bytes::Bytes {
    bytes::Bytes::from(v)
}
