//! Fault-tolerance integration suite: resumable v2 checkpoints, divergence
//! rollback with learning-rate backoff, crash-safe kernels, and v1/v2
//! checkpoint compatibility. Runs in CI under `GCMAE_NUM_THREADS=1` and
//! `=8` — every assertion here must hold at any thread count.

use gcmae_repro::core::model::seeded_rng;
use gcmae_repro::core::{
    FaultPlan, FaultTolerance, Gcmae, GcmaeConfig, StepFault, TrainError, TrainSession,
};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::Dataset;
use gcmae_repro::nn::{load_params, save_params, CheckpointError};
use gcmae_repro::tensor::parallel::par_rows;

fn tiny() -> Dataset {
    generate(&CitationSpec::cora().scaled(0.02), 11)
}

fn cfg(epochs: usize) -> GcmaeConfig {
    GcmaeConfig {
        hidden_dim: 16,
        proj_dim: 8,
        epochs,
        ..GcmaeConfig::fast()
    }
}

/// The acceptance bar for checkpoint v2: resuming from a mid-run snapshot
/// reproduces the uninterrupted run's final embeddings exactly — not close,
/// identical to the bit.
#[test]
fn resume_from_mid_run_checkpoint_is_bit_identical() {
    let ds = tiny();
    let cfg = cfg(12);
    let ft = FaultTolerance::default();
    let mut snapshots = vec![];
    let full = TrainSession::new(&cfg)
        .seed(3)
        .guards(&ft)
        .on_epoch(|e, view| {
            if e == 2 || e == 7 {
                snapshots.push(view.checkpoint());
            }
        })
        .run(&ds)
        .expect("clean run");
    for (i, snap) in snapshots.into_iter().enumerate() {
        let resumed = TrainSession::new(&cfg)
            .guards(&ft)
            .resume_from(snap)
            .run(&ds)
            .expect("resume");
        assert_eq!(
            full.embeddings.max_abs_diff(&resumed.embeddings),
            0.0,
            "snapshot {i} diverged from the uninterrupted run"
        );
    }
}

/// An injected NaN must trigger rollback + learning-rate backoff, and the
/// recovered run must still converge.
#[test]
fn nan_divergence_recovers_and_converges() {
    let ds = tiny();
    let cfg = cfg(20);
    let ft = FaultTolerance {
        checkpoint_every: 5,
        clip_norm: 5.0,
        ..FaultTolerance::default()
    };
    let plan = FaultPlan {
        nan_loss_at: Some(12),
        ..FaultPlan::default()
    };
    let out =
        gcmae_repro::core::trainer::train_checked_injected(&ds, &cfg, 4, &ft, plan, |_, _| {})
            .expect("recovery should succeed");
    assert_eq!(out.rollbacks.len(), 1);
    assert_eq!(out.rollbacks[0].restored_epoch, 10);
    assert!(out.rollbacks[0].lr_after < cfg.lr);
    assert_eq!(out.history.len(), 20);
    let first = out.history[0].total;
    let last = out.history.last().unwrap().total;
    assert!(
        last < first,
        "recovered run must still converge: {first} -> {last}"
    );
    assert!(out.history.iter().all(|b| b.total.is_finite()));
}

/// A panic inside a parallel job surfaces as a structured error — never a
/// hang — and the worker pool stays serviceable afterwards.
#[test]
fn parallel_panic_surfaces_and_pool_stays_serviceable() {
    let ds = tiny();
    let cfg = cfg(6);
    let ft = FaultTolerance {
        max_retries: 0,
        ..FaultTolerance::default()
    };
    let plan = FaultPlan {
        panic_at: Some(1),
        ..FaultPlan::default()
    };
    let Err(err) =
        gcmae_repro::core::trainer::train_checked_injected(&ds, &cfg, 5, &ft, plan, |_, _| {})
    else {
        panic!("zero retries + injected panic must fail the run")
    };
    match err {
        TrainError::RetriesExhausted {
            last: StepFault::KernelPanic { message },
            ..
        } => {
            assert!(
                message.contains("injected parallel-job fault"),
                "payload: {message}"
            )
        }
        other => panic!("expected a kernel-panic failure, got {other}"),
    }
    // the pool still does real work after the panic
    use std::sync::atomic::{AtomicUsize, Ordering};
    let total = AtomicUsize::new(0);
    par_rows(2048, 64 * 1024, |i| {
        total.fetch_add(i, Ordering::Relaxed);
    });
    assert_eq!(total.into_inner(), 2048 * 2047 / 2);
}

/// v1 inference checkpoints written by `save_params` stay readable, and
/// `load_params` also accepts v2 training checkpoints (values only).
#[test]
fn checkpoint_compat_v1_and_v2() {
    let ds = tiny();
    let cfg = cfg(3);
    let ft = FaultTolerance::default();
    let mut mid = None;
    let out = TrainSession::new(&cfg)
        .seed(6)
        .guards(&ft)
        .on_epoch(|e, view| {
            if e == 2 {
                mid = Some(view.checkpoint());
            }
        })
        .run(&ds)
        .expect("clean run");

    // v1 roundtrip against the trained model
    let v1 = save_params(&out.model.store);
    let mut rng = seeded_rng(6);
    let mut fresh = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
    load_params(&mut fresh.store, v1).expect("v1 read");
    assert_eq!(
        out.model
            .encode_dataset(&ds)
            .max_abs_diff(&fresh.encode_dataset(&ds)),
        0.0
    );

    // v2 bytes load as params-only through the v1 entry point
    let mut rng = seeded_rng(7);
    let mut fresh2 = Gcmae::new(&cfg, ds.feature_dim(), &mut rng);
    load_params(&mut fresh2.store, mid.clone().unwrap()).expect("v2 read via load_params");
    assert_eq!(
        out.model
            .store
            .value(gcmae_repro::nn::ParamId::from_index(0))
            .shape(),
        fresh2
            .store
            .value(gcmae_repro::nn::ParamId::from_index(0))
            .shape()
    );

    // a truncated v2 checkpoint is a structured error, not a panic
    let cut = mid.unwrap();
    let cut = cut.slice(0..cut.len() - 7);
    let Err(err) = TrainSession::new(&cfg)
        .guards(&ft)
        .resume_from(cut)
        .run(&ds)
    else {
        panic!("truncated checkpoint must not resume")
    };
    assert!(
        matches!(err, TrainError::Checkpoint(CheckpointError::Truncated)),
        "{err}"
    );
}

/// Exhausting the retry budget on a persistently-diverging run is a
/// structured `RetriesExhausted`, with the rollbacks it *did* attempt
/// recorded on the way.
#[test]
fn persistent_divergence_exhausts_the_budget() {
    let ds = tiny();
    let cfg = cfg(8);
    // lr large enough to blow up f32 on this tiny graph is hard to force
    // reliably, so drive the policy with injections at two epochs and a
    // budget of one.
    let ft = FaultTolerance {
        max_retries: 1,
        checkpoint_every: 1,
        ..FaultTolerance::default()
    };
    let plan = FaultPlan {
        nan_loss_at: Some(2),
        nan_grad_at: Some(4),
        ..FaultPlan::default()
    };
    let Err(err) =
        gcmae_repro::core::trainer::train_checked_injected(&ds, &cfg, 8, &ft, plan, |_, _| {})
    else {
        panic!("two faults on a budget of one must fail")
    };
    match err {
        TrainError::RetriesExhausted {
            epoch,
            retries,
            last,
        } => {
            assert_eq!(epoch, 4);
            assert_eq!(retries, 1);
            assert!(matches!(last, StepFault::NonFiniteGradient { .. }));
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}
