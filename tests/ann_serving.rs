//! ANN serving parity and recall.
//!
//! `sim_top_k` candidates come from the quantized ANN index, but every
//! returned score is an exact f32 re-score of the cached embedding row —
//! and whenever the index's search beam covers the whole resident set
//! (`ef_search >= n`, as in the small proptest graphs here) the candidate
//! set is exhaustive, so the served answer must be **identical** to a
//! brute-force f32 oracle: same ids, same order, same bits. The recall
//! test then drops the exhaustive-beam crutch on a citation graph large
//! enough that the index genuinely approximates.

use gcmae_repro::core::{model::seeded_rng, EncoderChoice, Gcmae, GcmaeConfig};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::Graph;
use gcmae_repro::serve::{Client, Engine, Server};
use gcmae_repro::tensor::Matrix;
use proptest::prelude::*;

/// Fixed-order dot product, matching the engine's re-score reduction.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Brute-force oracle over served rows: score-descending, ids ascending on
/// ties, anchor excluded.
fn oracle(rows: &[Vec<f32>], anchor: usize, k: usize) -> Vec<(usize, f32)> {
    let a = &rows[anchor];
    let mut ranked: Vec<(usize, f32)> = rows
        .iter()
        .enumerate()
        .filter(|&(v, _)| v != anchor)
        .map(|(v, r)| (v, dot(a, r)))
        .collect();
    ranked.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    ranked.truncate(k);
    ranked
}

fn small_engine(n: usize, edges: &[(usize, usize)], seed: u64) -> Engine {
    let mut rng = seeded_rng(seed);
    let graph = Graph::from_edges(n, edges);
    let features = Matrix::uniform(n, 12, -1.0, 1.0, &mut rng);
    let cfg = GcmaeConfig {
        encoder: EncoderChoice::Sage,
        hidden_dim: 24,
        proj_dim: 12,
        ..GcmaeConfig::fast()
    };
    // Untrained weights: parity does not depend on training, and skipping
    // it keeps each proptest case cheap.
    let model = Gcmae::new(&cfg, 12, &mut rng);
    Engine::new(model, graph, features).expect("engine builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// One server per case; `sim_top_k` must equal the brute-force oracle
    /// bit-for-bit from a single client, from 8 concurrent clients, and
    /// again after `add_edges` / `add_node` invalidate cached rows.
    #[test]
    fn sim_top_k_matches_a_brute_force_oracle(
        n in 20usize..48,
        edges in prop::collection::vec((0usize..48, 0usize..48), 8..96),
        seed in 0u64..1000,
    ) {
        let mut edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .filter(|(u, v)| u != v)
            .collect();
        if edges.is_empty() {
            edges.push((0, 1));
        }
        let server = Server::start(small_engine(n, &edges, seed), "127.0.0.1:0", 8)
            .expect("server binds");
        let addr = server.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");

        let all: Vec<usize> = (0..n).collect();
        let rows = client.embed(&all).expect("embed all");
        let k = 5;
        // 1 thread.
        for anchor in [0, n / 2, n - 1] {
            let got = client.sim_top_k(anchor, k).expect("sim_top_k");
            prop_assert_eq!(&got, &oracle(&rows, anchor, k), "anchor {}", anchor);
        }
        // 8 threads, every client checking a different anchor.
        let mut handles = Vec::new();
        for t in 0..8usize {
            let addr = addr.clone();
            let rows = rows.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                let anchor = (t * 5) % n;
                let got = c.sim_top_k(anchor, k).expect("sim_top_k");
                assert_eq!(got, oracle(&rows, anchor, k), "thread {t} anchor {anchor}");
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }

        // Mutations invalidate cached rows and delete them from the index;
        // the next search re-warms and must again equal the oracle.
        client.add_edges(&[(0, n - 1)]).expect("add_edges");
        let rows = client.embed(&all).expect("embed after add_edges");
        for anchor in [0, n - 1] {
            let got = client.sim_top_k(anchor, k).expect("sim_top_k");
            prop_assert_eq!(&got, &oracle(&rows, anchor, k), "post-add_edges anchor {}", anchor);
        }
        let grown = client.add_node(&[0, 1], &vec![0.25; 12]).expect("add_node");
        prop_assert_eq!(grown, n);
        let all: Vec<usize> = (0..=n).collect();
        let rows = client.embed(&all).expect("embed after add_node");
        let got = client.sim_top_k(grown, k).expect("sim_top_k on the new node");
        prop_assert_eq!(&got, &oracle(&rows, grown, k), "post-add_node");

        client.shutdown().expect("shutdown");
        server.run_until_shutdown();
    }
}

/// On a citation graph big enough that the default search beam is a real
/// approximation (n >> ef_search), ANN + exact re-score still recovers at
/// least 95% of the true top-10.
#[test]
fn recall_at_10_beats_095_on_the_citation_generator() {
    let ds = generate(&CitationSpec::cora().scaled(0.5), 7);
    let n = ds.num_nodes();
    let cfg = GcmaeConfig {
        encoder: EncoderChoice::Sage,
        ..GcmaeConfig::fast()
    };
    let mut rng = seeded_rng(7);
    let model = Gcmae::new(&cfg, ds.features.cols(), &mut rng);
    let exact = model.encode(&ds.graph, &ds.features);
    let mut engine = Engine::new(model, ds.graph.clone(), ds.features.clone()).expect("engine");

    let k = 10;
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in 0..60 {
        let anchor = q * n / 60;
        let got = engine.sim_top_k(anchor, k).expect("sim_top_k");
        let mut truth: Vec<(usize, f32)> = (0..n)
            .filter(|&v| v != anchor)
            .map(|v| (v, dot(exact.row(anchor), exact.row(v))))
            .collect();
        truth.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        truth.truncate(k);
        hits += got.iter().filter(|(v, _)| truth.iter().any(|(t, _)| t == v)).count();
        total += truth.len();
    }
    let recall = hits as f64 / total as f64;
    let stats = engine.stats();
    assert!(
        stats.ann.indexed == n && (stats.cache.quantized_rows) == n,
        "index must be warm before judging recall"
    );
    assert!(recall >= 0.95, "recall@10 {recall:.3} < 0.95 over {total} truths");
}
