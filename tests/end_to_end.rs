//! End-to-end integration: GCMAE pre-training feeding every downstream
//! task, across crate boundaries, at smoke scale.

use gcmae_repro::core::{GcmaeConfig, TrainOutput, TrainSession};
use gcmae_repro::eval::metrics::clustering::nmi;
use gcmae_repro::eval::{finetuned_eval, kmeans, linear_probe, ProbeConfig};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::splits::{link_split, planetoid_split};
use gcmae_repro::graph::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_dataset() -> Dataset {
    generate(&CitationSpec::cora().scaled(0.06), 42)
}

fn pretrain(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> TrainOutput {
    TrainSession::new(cfg)
        .seed(seed)
        .run(ds)
        .expect("unguarded session cannot fail")
}

fn smoke_config() -> GcmaeConfig {
    GcmaeConfig {
        epochs: 40,
        hidden_dim: 32,
        proj_dim: 16,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_repro::core::Objective::paper().with_dense_caps(0, 128))
}

#[test]
fn classification_pipeline_beats_chance() {
    let ds = smoke_dataset();
    let out = pretrain(&ds, &smoke_config(), 0);
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 8, 30, &mut rng);
    let r = linear_probe(
        &out.embeddings,
        &ds.labels,
        ds.num_classes,
        &split,
        &ProbeConfig::default(),
        0,
    );
    let chance = 1.0 / ds.num_classes as f64;
    assert!(
        r.accuracy > chance * 1.8,
        "accuracy {} vs chance {chance}",
        r.accuracy
    );
}

#[test]
fn clustering_pipeline_beats_random_assignment() {
    let ds = smoke_dataset();
    let out = pretrain(&ds, &smoke_config(), 1);
    let km = kmeans(&out.embeddings, ds.num_classes, 100, 1);
    let score = nmi(&km.assignments, &ds.labels);
    assert!(
        score > 0.05,
        "NMI {score} should be clearly above random (~0)"
    );
}

#[test]
fn link_prediction_pipeline_beats_coin_flip() {
    let ds = smoke_dataset();
    let mut rng = StdRng::seed_from_u64(7);
    let split = link_split(&ds.graph, 0.05, 0.10, &mut rng);
    let train_ds = Dataset {
        graph: split.train_graph.clone(),
        ..ds.clone()
    };
    let out = pretrain(&train_ds, &smoke_config(), 2);
    let (auc, ap) = finetuned_eval(&out.embeddings, &split, 2);
    assert!(auc > 0.6, "AUC {auc}");
    assert!(ap > 0.55, "AP {ap}");
}

#[test]
fn training_beats_random_initialization() {
    let ds = smoke_dataset();
    let cfg = smoke_config();
    let untrained = pretrain(
        &ds,
        &GcmaeConfig {
            epochs: 0,
            ..cfg.clone()
        },
        3,
    );
    let trained = pretrain(&ds, &cfg, 3);
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 8, 30, &mut rng);
    let probe = |emb: &gcmae_repro::tensor::Matrix| {
        linear_probe(
            emb,
            &ds.labels,
            ds.num_classes,
            &split,
            &ProbeConfig::default(),
            3,
        )
        .accuracy
    };
    let a_trained = probe(&trained.embeddings);
    let a_untrained = probe(&untrained.embeddings);
    assert!(
        a_trained >= a_untrained - 0.02,
        "training hurt: {a_trained} vs untrained {a_untrained}"
    );
    // loss must actually have decreased
    let h = &trained.history;
    assert!(h.last().unwrap().total < h.first().unwrap().total);
}

#[test]
fn graph_level_pipeline_classifies_structures() {
    use gcmae_repro::core::train_graph_level;
    use gcmae_repro::eval::{cross_validate, SvmConfig};
    use gcmae_repro::graph::generators::collection::{generate as gen_c, CollectionSpec};
    let c = gen_c(&CollectionSpec::imdb_b().scaled(0.08), 42);
    let cfg = GcmaeConfig {
        epochs: 8,
        hidden_dim: 24,
        proj_dim: 12,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_repro::core::Objective::paper().with_dense_caps(96, 96));
    let emb = train_graph_level(&c, &cfg, 16, 0);
    let (acc, _) = cross_validate(&emb, &c.labels, c.num_classes, 5, &SvmConfig::default(), 0);
    assert!(acc > 0.55, "graph classification accuracy {acc}");
}
