//! Cross-crate matrix test: every node-level baseline produces embeddings
//! that the shared evaluation stack can consume, and every graph-level
//! baseline produces one embedding per graph — the contract the bench
//! harness relies on.

use gcmae_repro::baselines::{self, SslConfig};
use gcmae_repro::core::GcmaeConfig;
use gcmae_repro::eval::{linear_probe, ProbeConfig};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::generators::collection::{generate as gen_c, CollectionSpec};
use gcmae_repro::graph::splits::planetoid_split;
use gcmae_repro::graph::Dataset;
use gcmae_repro::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> Dataset {
    generate(&CitationSpec::cora().scaled(0.03), 42)
}

fn cfg() -> SslConfig {
    SslConfig { hidden_dim: 16, proj_dim: 8, epochs: 4, contrast_sample: 64, ..SslConfig::default() }
}

fn check_node(emb: Matrix, ds: &Dataset, name: &str) {
    assert_eq!(emb.rows(), ds.num_nodes(), "{name}: wrong row count");
    assert!(emb.all_finite(), "{name}: non-finite embeddings");
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 4, 15, &mut rng);
    let r = linear_probe(&emb, &ds.labels, ds.num_classes, &split, &ProbeConfig::default(), 0);
    assert!((0.0..=1.0).contains(&r.accuracy), "{name}: accuracy out of range");
}

#[test]
fn all_contrastive_node_baselines_integrate() {
    let ds = tiny();
    let c = cfg();
    check_node(baselines::dgi::train(&ds, &c, 0), &ds, "DGI");
    check_node(baselines::grace::train(&ds, &c, 0), &ds, "GRACE");
    check_node(baselines::cca_ssg::train(&ds, &c, 0), &ds, "CCA-SSG");
    check_node(baselines::mvgrl::train(&ds, &c, 0), &ds, "MVGRL");
}

#[test]
fn all_mae_node_baselines_integrate() {
    let ds = tiny();
    let c = cfg();
    check_node(baselines::graphmae::train(&ds, &c, 0), &ds, "GraphMAE");
    check_node(baselines::maskgae::train(&ds, &c, 0), &ds, "MaskGAE");
    check_node(baselines::s2gae::train(&ds, &c, 0), &ds, "S2GAE");
    check_node(baselines::seegera::train(&ds, &c, 0), &ds, "SeeGera");
}

#[test]
fn all_clustering_baselines_integrate() {
    let ds = tiny();
    let c = cfg();
    check_node(baselines::clustering::gc_vge::train(&ds, &c, 0), &ds, "GC-VGE");
    check_node(baselines::clustering::scgc::train(&ds, &c, 0), &ds, "SCGC");
    let out = baselines::clustering::gcc::train(&ds, ds.num_classes, 16, 2, 0);
    assert_eq!(out.embeddings.rows(), ds.num_nodes());
    assert_eq!(out.assignments.len(), ds.num_nodes());
}

#[test]
fn all_graph_level_baselines_integrate() {
    let coll = gen_c(&CollectionSpec::imdb_m().scaled(0.03), 42);
    let c = cfg();
    let gc = GcmaeConfig {
        hidden_dim: 16,
        proj_dim: 8,
        epochs: 2,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_repro::core::Objective::paper().with_dense_caps(64, 64));
    let runs: Vec<(&str, Matrix)> = vec![
        ("InfoGraph", baselines::graph_level::infograph::train(&coll, &c, 8, 0)),
        ("GraphCL", baselines::graph_level::graphcl::train(&coll, &c, 8, 0)),
        ("JOAO", baselines::graph_level::joao::train(&coll, &c, 8, 0)),
        ("InfoGCL", baselines::graph_level::infogcl::train(&coll, &c, 8, 0)),
        ("MVGRL-G", baselines::graph_level::mvgrl_g::train(&coll, &c, 8, 0)),
        ("S2GAE-G", baselines::graph_level::s2gae_g::train(&coll, &c, 8, 0)),
        ("GCMAE-G", gcmae_repro::core::train_graph_level(&coll, &gc, 8, 0)),
    ];
    for (name, emb) in runs {
        assert_eq!(emb.rows(), coll.len(), "{name}: one row per graph");
        assert!(emb.all_finite(), "{name}: non-finite");
    }
}

#[test]
fn supervised_baselines_integrate() {
    let ds = tiny();
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 4, 15, &mut rng);
    for kind in [gcmae_repro::nn::EncoderKind::Gcn, gcmae_repro::nn::EncoderKind::Gat { heads: 2 }] {
        let cfg = baselines::SupervisedConfig::fast(kind);
        let acc = baselines::supervised::train(&ds, &split, &cfg, 0);
        assert!((0.0..=1.0).contains(&acc), "{kind:?}");
    }
}
