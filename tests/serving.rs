//! Integration test: train → bundle → serve → query over TCP, asserting
//! bit-parity between served answers and the offline encoder at every step.

use gcmae_repro::core::{train, GcmaeConfig};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::serve::{load_bundle, save_bundle, Client, Engine, Server};

#[test]
fn served_embeddings_match_offline_encode_through_training_and_mutation() {
    // Train a real (small) checkpoint.
    let ds = generate(&CitationSpec::cora().scaled(0.02), 3);
    let cfg = GcmaeConfig { epochs: 2, ..GcmaeConfig::fast() };
    let trained = train(&ds, &cfg, 3);
    let n = ds.num_nodes();

    // Bundle round-trip preserves the encoder bit-for-bit.
    let blob = save_bundle(&trained.model, &ds.graph, &ds.features);
    let (model, graph, features) = load_bundle(&blob).expect("bundle decodes");
    let offline = model.encode(&graph, &features);
    assert_eq!(
        offline.as_slice(),
        trained.model.encode(&ds.graph, &ds.features).as_slice(),
        "bundle changed the model"
    );

    // Serve it and query from several concurrent connections.
    let engine = Engine::new(model, graph, features).expect("engine builds");
    let server = Server::start(engine, "127.0.0.1:0", 16).expect("server binds");
    let addr = server.addr().to_string();
    let mut handles = Vec::new();
    for t in 0..4_usize {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            let nodes: Vec<usize> = (0..5).map(|i| (t * 11 + i * 3) % n).collect();
            (nodes.clone(), c.embed(&nodes).expect("embed"))
        }));
    }
    for h in handles {
        let (nodes, rows) = h.join().expect("client thread");
        for (row, &v) in rows.iter().zip(&nodes) {
            assert_eq!(row.as_slice(), offline.row(v), "node {v} mismatch over TCP");
        }
    }

    // Incremental update: served answers equal a cold encode on the
    // mutated graph.
    let mut client = Client::connect(&addr).expect("connect");
    let new_edges = [(0, n - 1), (1, n / 2)];
    client.add_edges(&new_edges).expect("add_edges");
    let all: Vec<usize> = (0..n).collect();
    let served = client.embed(&all).expect("embed all");
    let (mutated, _) = ds.graph.add_edges(&new_edges).expect("local add_edges");
    let expected = trained.model.encode(&mutated, &ds.features);
    for (v, row) in served.iter().enumerate() {
        assert_eq!(row.as_slice(), expected.row(v), "node {v} after add_edges");
    }

    // Link scores come from the same embeddings.
    let scores = client.link_scores(&[(0, n - 1)]).expect("link");
    let want: f32 =
        expected.row(0).iter().zip(expected.row(n - 1)).map(|(a, b)| a * b).sum();
    assert_eq!(scores[0], want);

    client.shutdown().expect("shutdown");
    assert!(server.run_until_shutdown().is_some());
}
