//! Integration test: train → bundle → serve → query over TCP, asserting
//! bit-parity between served answers and the offline encoder at every step.

use gcmae_repro::core::{GcmaeConfig, TrainSession};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::serve::{load_bundle, save_bundle, Client, Engine, Server};

#[test]
fn served_embeddings_match_offline_encode_through_training_and_mutation() {
    // Train a real (small) checkpoint.
    let ds = generate(&CitationSpec::cora().scaled(0.02), 3);
    let cfg = GcmaeConfig {
        epochs: 2,
        ..GcmaeConfig::fast()
    };
    let trained = TrainSession::new(&cfg)
        .seed(3)
        .run(&ds)
        .expect("unguarded session cannot fail");
    let n = ds.num_nodes();

    // Bundle round-trip preserves the encoder bit-for-bit.
    let blob = save_bundle(&trained.model, &ds.graph, &ds.features);
    let (model, graph, features) = load_bundle(&blob).expect("bundle decodes");
    let offline = model.encode(&graph, &features);
    assert_eq!(
        offline.as_slice(),
        trained.model.encode(&ds.graph, &ds.features).as_slice(),
        "bundle changed the model"
    );

    // Serve it and query from several concurrent connections.
    let engine = Engine::new(model, graph, features).expect("engine builds");
    let server = Server::start(engine, "127.0.0.1:0", 16).expect("server binds");
    let addr = server.addr().to_string();
    let mut handles = Vec::new();
    for t in 0..4_usize {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            let nodes: Vec<usize> = (0..5).map(|i| (t * 11 + i * 3) % n).collect();
            (nodes.clone(), c.embed(&nodes).expect("embed"))
        }));
    }
    for h in handles {
        let (nodes, rows) = h.join().expect("client thread");
        for (row, &v) in rows.iter().zip(&nodes) {
            assert_eq!(row.as_slice(), offline.row(v), "node {v} mismatch over TCP");
        }
    }

    // Incremental update: served answers equal a cold encode on the
    // mutated graph.
    let mut client = Client::connect(&addr).expect("connect");
    let new_edges = [(0, n - 1), (1, n / 2)];
    client.add_edges(&new_edges).expect("add_edges");
    let all: Vec<usize> = (0..n).collect();
    let served = client.embed(&all).expect("embed all");
    let (mutated, _) = ds.graph.add_edges(&new_edges).expect("local add_edges");
    let expected = trained.model.encode(&mutated, &ds.features);
    for (v, row) in served.iter().enumerate() {
        assert_eq!(row.as_slice(), expected.row(v), "node {v} after add_edges");
    }

    // Link scores come from the same embeddings.
    let scores = client.link_scores(&[(0, n - 1)]).expect("link");
    let want: f32 = expected
        .row(0)
        .iter()
        .zip(expected.row(n - 1))
        .map(|(a, b)| a * b)
        .sum();
    assert_eq!(scores[0], want);

    client.shutdown().expect("shutdown");
    assert!(server.run_until_shutdown().is_some());
}

/// The `metrics` op must agree with the clients' own bookkeeping: after a
/// concurrent run where every client counts its requests, the server-side
/// counters report exactly the same tallies.
#[test]
fn metrics_counters_match_client_side_request_tally() {
    let ds = generate(&CitationSpec::cora().scaled(0.02), 5);
    let cfg = GcmaeConfig {
        epochs: 1,
        ..GcmaeConfig::fast()
    };
    let trained = TrainSession::new(&cfg)
        .seed(5)
        .run(&ds)
        .expect("unguarded session cannot fail");
    let n = ds.num_nodes();
    let engine = Engine::new(trained.model, ds.graph, ds.features).expect("engine builds");
    let server = Server::start(engine, "127.0.0.1:0", 8).expect("server binds");
    let addr = server.addr().to_string();

    let mut handles = Vec::new();
    for t in 0..4_usize {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || -> (u64, u64, u64) {
            let mut c = Client::connect(&addr).expect("connect");
            let (mut embeds, mut links, mut pings) = (0u64, 0u64, 0u64);
            for q in 0..12_usize {
                match q % 3 {
                    0 => {
                        c.embed(&[(t * 7 + q) % n]).expect("embed");
                        embeds += 1;
                    }
                    1 => {
                        c.link_scores(&[(t % n, (t + q) % n)]).expect("link");
                        links += 1;
                    }
                    _ => {
                        c.ping().expect("ping");
                        pings += 1;
                    }
                }
            }
            (embeds, links, pings)
        }));
    }
    let (mut embeds, mut links, mut pings) = (0u64, 0u64, 0u64);
    for h in handles {
        let (e, l, p) = h.join().expect("client thread");
        embeds += e;
        links += l;
        pings += p;
    }

    let mut client = Client::connect(&addr).expect("connect");
    let snap = client.metrics().expect("metrics");
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(counter("serve.requests.embed"), embeds);
    assert_eq!(counter("serve.requests.link_score"), links);
    assert_eq!(counter("serve.requests.ping"), pings);
    assert_eq!(counter("serve.errors"), 0);
    let latency = snap
        .histograms
        .iter()
        .find(|h| h.name == "serve.request.ns")
        .expect("latency histogram present");
    assert_eq!(
        latency.count,
        embeds + links + pings,
        "one latency sample per answered request"
    );
    client.shutdown().expect("shutdown");
    server.shutdown();
}
