//! Convergence parity and determinism for the sampled O(N·k) objectives:
//! training with per-anchor negative sampling must reach linear-probe
//! accuracy on par with the dense O(N²) losses, and the sampled step must
//! be bit-identical across worker-thread counts (the determinism contract
//! in DESIGN.md "Sampled objectives & the Objective API").

use gcmae_repro::core::{GcmaeConfig, Objective, SamplerDist, TrainSession};
use gcmae_repro::eval::{linear_probe, ProbeConfig};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::splits::planetoid_split;
use gcmae_repro::graph::Dataset;
use gcmae_repro::tensor::parallel::set_num_threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn probe_accuracy(ds: &Dataset, cfg: &GcmaeConfig, seed: u64) -> f64 {
    let out = TrainSession::new(cfg)
        .seed(seed)
        .run(ds)
        .expect("unguarded session cannot fail");
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 10, 40, &mut rng);
    linear_probe(
        &out.embeddings,
        &ds.labels,
        ds.num_classes,
        &split,
        &ProbeConfig::default(),
        seed,
    )
    .accuracy
}

fn base_config() -> GcmaeConfig {
    GcmaeConfig {
        epochs: 40,
        hidden_dim: 32,
        proj_dim: 16,
        ..GcmaeConfig::default()
    }
}

/// Sampled InfoNCE + sampled adjacency reconstruction must stay within a
/// few points of the dense losses on a citation graph — the whole point of
/// the O(N·k) path is paying a negligible accuracy cost for the speedup.
#[test]
fn sampled_objective_matches_dense_linear_probe() {
    let ds = generate(&CitationSpec::cora().scaled(0.25), 42);
    let dense = base_config().with_objective(Objective::paper().with_dense_caps(0, 256));
    let sampled =
        base_config().with_objective(Objective::paper().sampled(8, SamplerDist::Uniform));
    let chance = 1.0 / ds.num_classes as f64;
    // average over two seeds to damp single-seed probe noise
    let acc_dense = (probe_accuracy(&ds, &dense, 0) + probe_accuracy(&ds, &dense, 1)) / 2.0;
    let acc_sampled = (probe_accuracy(&ds, &sampled, 0) + probe_accuracy(&ds, &sampled, 1)) / 2.0;
    assert!(acc_dense > 2.0 * chance, "dense probe at chance: {acc_dense}");
    assert!(
        acc_sampled > 2.0 * chance,
        "sampled probe at chance: {acc_sampled}"
    );
    assert!(
        acc_sampled >= acc_dense - 0.07,
        "sampled {acc_sampled:.3} trails dense {acc_dense:.3} by more than 7 points"
    );
}

/// Degree-proportional negatives must also train to better-than-chance
/// embeddings (they skew toward hubs, which changes the loss, not its
/// usefulness).
#[test]
fn degree_sampled_objective_beats_chance() {
    let ds = generate(&CitationSpec::citeseer().scaled(0.15), 11);
    let cfg = base_config().with_objective(Objective::paper().sampled(8, SamplerDist::Degree));
    let chance = 1.0 / ds.num_classes as f64;
    let acc = probe_accuracy(&ds, &cfg, 0);
    assert!(acc > 2.0 * chance, "degree-sampled probe at chance: {acc}");
}

/// The sampled step must produce bit-identical training trajectories at any
/// worker-thread count: anchor-parallel forward with sequential f64
/// reductions, and a two-pass scatter backward with one owner per row.
#[test]
fn sampled_training_is_thread_invariant() {
    let ds = generate(&CitationSpec::cora().scaled(0.08), 5);
    let cfg = GcmaeConfig {
        epochs: 6,
        hidden_dim: 16,
        proj_dim: 8,
        ..GcmaeConfig::default()
    }
    .with_objective(Objective::paper().sampled(4, SamplerDist::Uniform));
    let run = |threads: usize| -> Vec<(u32, Vec<u32>)> {
        set_num_threads(threads);
        let out = TrainSession::new(&cfg)
            .seed(3)
            .run(&ds)
            .expect("unguarded session cannot fail");
        set_num_threads(0);
        out.history
            .iter()
            .map(|b| (b.total.to_bits(), vec![]))
            .chain(std::iter::once((
                0,
                out.embeddings.as_slice().iter().map(|v| v.to_bits()).collect(),
            )))
            .collect()
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(one, eight, "sampled training diverged across thread counts");
}
