//! Crash-recovery integration: concurrent queries + sequenced mutations with
//! injected disconnects and duplicate deliveries, then a graceful drain and a
//! WAL replay onto a fresh engine. The recovered state must be bit-identical
//! both to the engine that lived through the chaos AND to a clean
//! single-process replay of the acknowledged-mutation ledger — at 1 and 8
//! kernel threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gcmae_repro::core::{GcmaeConfig, TrainSession};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::serve::{
    load_bundle, replay, save_bundle, Client, DedupTable, Engine, Request, RequestMeta,
    ResilientClient, Response, Server, ServerOptions, Wal,
};
use gcmae_repro::tensor::parallel::set_num_threads;

fn chaos_round(kernel_threads: usize, seed: u64) {
    set_num_threads(kernel_threads);
    let ds = generate(&CitationSpec::cora().scaled(0.02), seed);
    let cfg = GcmaeConfig { epochs: 2, ..GcmaeConfig::fast() };
    let trained = TrainSession::new(&cfg).seed(seed).run(&ds).expect("unguarded run");
    let n = ds.num_nodes();
    let bundle = save_bundle(&trained.model, &ds.graph, &ds.features);

    let wal_path = std::env::temp_dir().join(format!(
        "gcmae_chaos_test_{}_{kernel_threads}_{seed}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&wal_path);
    let (model, graph, features) = load_bundle(&bundle).expect("bundle");
    let engine = Engine::new(model, graph, features).expect("engine");
    let (wal, empty) = Wal::open(&wal_path).expect("wal");
    assert!(empty.is_empty());
    let server = Server::start_with(
        engine,
        "127.0.0.1:0",
        ServerOptions {
            max_batch: 8,
            read_timeout: Some(std::time::Duration::from_millis(500)),
            wal: Some(wal),
            dedup: DedupTable::default(),
            ..ServerOptions::default()
        },
    )
    .expect("server");
    let addr = server.addr().to_string();

    // Background readers keep the scheduler busy so mutations interleave
    // with real query batches.
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for t in 0..3_usize {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("reader connect");
            let mut i = 0_usize;
            while !stop.load(Ordering::Acquire) {
                let nodes: Vec<usize> = (0..3).map(|k| (t * 17 + i * 5 + k) % n).collect();
                c.embed(&nodes).expect("read during chaos");
                i += 1;
            }
        }));
    }
    // A disconnector drops half-written frames on the floor the whole time.
    let disconnector = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            use std::io::Write;
            while !stop.load(Ordering::Acquire) {
                if let Ok(mut s) = std::net::TcpStream::connect(&addr) {
                    let _ = s.write_all(&32_u32.to_le_bytes());
                    let _ = s.write_all(b"{\"op\"");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };

    // Sequenced mutator: a ledger of acknowledged edges, with a simulated
    // lost-ack after every third mutation — the same (client, seq) frame is
    // re-delivered on a brand-new connection and must dedup, not reapply.
    let mut mutator = ResilientClient::new(&addr, 42);
    let mut ledger: Vec<(usize, usize)> = Vec::new();
    for m in 0..12_usize {
        let u = (seed as usize + m * 7) % n;
        let v = (u + 1 + m * 13) % n;
        if u == v {
            continue;
        }
        let edge = (u.min(v), u.max(v));
        let seq = mutator.next_seq();
        let first = mutator.add_edges(&[edge]).expect("mutation acked");
        ledger.push(edge);
        if m % 3 == 2 {
            let mut dup = Client::connect(&addr).expect("retry connection");
            let meta = RequestMeta {
                client: Some(mutator.client_id()),
                seq: Some(seq),
                ..RequestMeta::default()
            };
            match dup
                .call_with(&Request::AddEdges { edges: vec![edge] }, &meta)
                .expect("duplicate delivery answered")
            {
                Response::EdgesAdded { invalidated } => assert_eq!(invalidated, first),
                other => panic!("expected dedup'd edges_added, got {other:?}"),
            }
        }
    }

    let stats = {
        let mut c = Client::connect(&addr).expect("stats connect");
        c.stats().expect("stats")
    };
    assert_eq!(stats.wal_records as usize, ledger.len(), "one WAL record per ack");
    assert_eq!(stats.dedup_hits, 4, "every re-delivered frame deduped");

    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().expect("reader");
    }
    disconnector.join().expect("disconnector");
    let mut engine_a = server.shutdown().expect("graceful drain returns engine");

    // Recovery path: fresh engine from the pre-chaos bundle + WAL replay.
    let (_wal2, records) = Wal::open(&wal_path).expect("wal reopen");
    assert_eq!(records.len(), ledger.len());
    let (model_b, graph_b, features_b) = load_bundle(&bundle).expect("bundle reload");
    let mut engine_b = Engine::new(model_b, graph_b, features_b).expect("engine b");
    let dedup = replay(&mut engine_b, &records).expect("replay");
    assert_eq!(dedup.len(), 1, "one mutating client");

    // Clean single-process replay of the ledger, no serving stack at all.
    let mut clean = ds.graph.clone();
    for &e in &ledger {
        let (next, _) = clean.add_edges(&[e]).expect("clean replay");
        clean = next;
    }
    let expected = trained.model.encode(&clean, &ds.features);

    assert_eq!(engine_a.graph().num_edges(), clean.num_edges(), "live edges");
    assert_eq!(engine_b.graph().num_edges(), clean.num_edges(), "recovered edges");
    let all: Vec<usize> = (0..n).collect();
    let sweep_a = engine_a.embed_batch(&all).expect("live sweep");
    let sweep_b = engine_b.embed_batch(&all).expect("recovered sweep");
    for v in 0..n {
        assert_eq!(sweep_a.row(v), expected.row(v), "live node {v}");
        assert_eq!(sweep_b.row(v), expected.row(v), "recovered node {v}");
    }

    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn wal_recovery_is_bit_exact_with_single_threaded_kernels() {
    chaos_round(1, 5);
    set_num_threads(0);
}

#[test]
fn wal_recovery_is_bit_exact_with_eight_kernel_threads() {
    chaos_round(8, 6);
    set_num_threads(0);
}
