//! End-to-end backend sanity: a full GCMAE pre-training run under the Simd
//! backend must land where the Reference run lands — same loss trajectory
//! within rounding-accumulation noise, and a linear probe within noise of
//! the Reference probe. This is the system-level complement to the kernel
//! tolerance parity in `crates/tensor/tests/backend_parity.rs`: it proves
//! the relaxed floating-point semantics do not alter training dynamics.
//!
//! On hosts without AVX2+FMA the Simd request demotes to Reference and the
//! comparisons become exact — the test stays portable.

use gcmae_repro::core::{GcmaeConfig, TrainOutput, TrainSession};
use gcmae_repro::eval::{linear_probe, ProbeConfig};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::graph::splits::planetoid_split;
use gcmae_repro::graph::Dataset;
use gcmae_repro::tensor::Backend;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_dataset() -> Dataset {
    generate(&CitationSpec::cora().scaled(0.06), 42)
}

fn smoke_config() -> GcmaeConfig {
    GcmaeConfig {
        epochs: 30,
        hidden_dim: 32,
        proj_dim: 16,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_repro::core::Objective::paper().with_dense_caps(1024, 128))
}

fn pretrain(ds: &Dataset, backend: Backend, seed: u64) -> TrainOutput {
    TrainSession::new(&smoke_config())
        .seed(seed)
        .backend(backend)
        .run(ds)
        .expect("unguarded session cannot fail")
}

fn probe_accuracy(ds: &Dataset, out: &TrainOutput) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 8, 30, &mut rng);
    linear_probe(
        &out.embeddings,
        &ds.labels,
        ds.num_classes,
        &split,
        &ProbeConfig::default(),
        0,
    )
    .accuracy
}

#[test]
fn simd_training_matches_reference_within_noise() {
    let ds = smoke_dataset();
    let reference = pretrain(&ds, Backend::Reference, 0);
    let simd = pretrain(&ds, Backend::Simd, 0);

    // Same seed, same data, same number of epochs recorded.
    assert_eq!(reference.history.len(), simd.history.len());

    // The loss trajectories must track each other closely: kernel-level
    // rounding differences compound across epochs, but they must not change
    // where optimization goes. 2% relative on every epoch's total is far
    // tighter than run-to-run seed variance.
    for (e, (r, s)) in reference.history.iter().zip(&simd.history).enumerate() {
        let tol = 0.02 * r.total.abs().max(1.0);
        assert!(
            (r.total - s.total).abs() <= tol,
            "epoch {e}: reference loss {} vs simd loss {}",
            r.total,
            s.total
        );
    }

    // Downstream quality: the Simd probe must be within noise of Reference
    // and must clear the same beats-chance bar the Reference pipeline does.
    let acc_ref = probe_accuracy(&ds, &reference);
    let acc_simd = probe_accuracy(&ds, &simd);
    let chance = 1.0 / ds.num_classes as f64;
    assert!(
        acc_simd > chance * 1.8,
        "simd probe accuracy {acc_simd} vs chance {chance}"
    );
    assert!(
        (acc_ref - acc_simd).abs() <= 0.10,
        "probe accuracy diverged: reference {acc_ref} vs simd {acc_simd}"
    );
}
