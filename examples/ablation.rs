//! Ablation walk-through: toggle GCMAE's three components (contrastive
//! branch, adjacency reconstruction, discrimination loss) and watch node
//! classification accuracy move — the Table 10 experiment on one dataset.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use gcmae_core::{GcmaeConfig, Objective, TrainSession};
use gcmae_eval::{linear_probe, ProbeConfig};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_graph::splits::planetoid_split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = generate(&CitationSpec::cora().scaled(0.25), 42);
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 15, 100, &mut rng);
    // calibrated loss weights (see DESIGN.md "Loss weights")
    let base = GcmaeConfig {
        epochs: 80,
        hidden_dim: 64,
        proj_dim: 32,
        ..GcmaeConfig::default()
    }
    .with_objective(Objective::paper().with_weights(0.3, 0.1, 0.2));

    let variants: Vec<(&str, GcmaeConfig)> = vec![
        ("GCMAE (full)", base.clone()),
        ("w/o contrastive", base.clone().without_contrastive()),
        ("w/o struct recon", base.clone().without_struct_recon()),
        ("w/o discrimination", base.clone().without_discrimination()),
        (
            "GraphMAE (all off)",
            base.clone()
                .without_contrastive()
                .without_struct_recon()
                .without_discrimination(),
        ),
    ];

    println!("{:20} | accuracy", "Variant");
    for (name, cfg) in variants {
        let mut acc = 0.0;
        let seeds = 3;
        for s in 0..seeds {
            let out = TrainSession::new(&cfg)
                .seed(s)
                .run(&ds)
                .expect("unguarded session cannot fail");
            let r = linear_probe(
                &out.embeddings,
                &ds.labels,
                ds.num_classes,
                &split,
                &ProbeConfig::default(),
                s,
            );
            acc += r.accuracy * 100.0;
        }
        println!("{name:20} | {:.1}%", acc / seeds as f64);
    }
}
