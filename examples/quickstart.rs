//! Quickstart: pre-train GCMAE on a Cora-like graph and evaluate the frozen
//! embeddings on node classification with a linear probe.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use gcmae_core::{GcmaeConfig, TrainSession};
use gcmae_eval::{linear_probe, ProbeConfig};
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_graph::splits::planetoid_split;
use gcmae_obs::JsonlObserver;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate a Cora-like citation network (see DESIGN.md for why the
    //    planetoid download is replaced by a matched generator).
    let ds = generate(&CitationSpec::cora().scaled(0.25), 42);
    println!(
        "dataset: {} — {} nodes, {} edges, {} features, {} classes",
        ds.name,
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.feature_dim(),
        ds.num_classes
    );

    // 2. Pre-train GCMAE (self-supervised: no labels used). The optional
    //    observer streams one `train.step` JSON line per optimizer step —
    //    all four loss terms, gradient norm, learning rate — without
    //    perturbing a single output bit.
    let cfg = GcmaeConfig {
        epochs: 80,
        hidden_dim: 64,
        proj_dim: 32,
        ..GcmaeConfig::default()
    };
    let mut session = TrainSession::new(&cfg).seed(0);
    if let Ok(sink) = JsonlObserver::create("target/quickstart_telemetry.jsonl") {
        session = session.observer(Arc::new(sink));
        println!("per-step telemetry -> target/quickstart_telemetry.jsonl");
    }
    let out = session.run(&ds).expect("unguarded session cannot fail");
    let first = out.history.first().unwrap();
    let last = out.history.last().unwrap();
    println!(
        "pre-training: {} epochs in {:.1}s  |  loss {:.3} -> {:.3} (sce {:.3}, contrast {:.3})",
        cfg.epochs, out.train_seconds, first.total, last.total, last.sce, last.contrast
    );

    // 3. Evaluate the frozen embeddings with a linear probe.
    let mut rng = StdRng::seed_from_u64(7);
    let split = planetoid_split(&ds.labels, ds.num_classes, 15, 100, &mut rng);
    let result = linear_probe(
        &out.embeddings,
        &ds.labels,
        ds.num_classes,
        &split,
        &ProbeConfig::default(),
        0,
    );
    println!(
        "node classification: accuracy {:.1}%  macro-F1 {:.1}%",
        result.accuracy * 100.0,
        result.macro_f1 * 100.0
    );
    assert!(
        result.accuracy > 1.5 / ds.num_classes as f64,
        "embeddings carry no signal"
    );
}
