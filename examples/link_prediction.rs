//! Link prediction: compare GCMAE against GraphMAE and MaskGAE on held-out
//! edges, reproducing the Table 5 protocol on one dataset.
//!
//! The expected shape (paper §5.2): feature-only reconstruction (GraphMAE)
//! is weak on links; edge-aware methods (MaskGAE) are strong; GCMAE's full
//! adjacency reconstruction matches or beats them.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use gcmae_baselines::SslConfig;
use gcmae_core::{GcmaeConfig, TrainSession};
use gcmae_eval::finetuned_eval;
use gcmae_graph::generators::citation::{generate, CitationSpec};
use gcmae_graph::splits::link_split;
use gcmae_graph::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = generate(&CitationSpec::citeseer().scaled(0.25), 42);
    let mut rng = StdRng::seed_from_u64(7);
    let split = link_split(&ds.graph, 0.05, 0.10, &mut rng);
    println!(
        "{}: {} train edges, {} test positives / {} negatives",
        ds.name,
        split.train_graph.num_edges(),
        split.test_pos.len(),
        split.test_neg.len()
    );
    // every method trains on the graph WITHOUT the held-out edges
    let train_ds = Dataset {
        graph: split.train_graph.clone(),
        ..ds.clone()
    };

    let ssl = SslConfig {
        epochs: 80,
        hidden_dim: 64,
        proj_dim: 32,
        ..SslConfig::default()
    };
    let gc = GcmaeConfig {
        epochs: 80,
        hidden_dim: 64,
        proj_dim: 32,
        ..GcmaeConfig::default()
    };

    let gcmae = TrainSession::new(&gc)
        .seed(0)
        .run(&train_ds)
        .expect("unguarded session cannot fail")
        .embeddings;
    let graphmae = gcmae_baselines::graphmae::train(&train_ds, &ssl, 0);
    let maskgae = gcmae_baselines::maskgae::train(&train_ds, &ssl, 0);

    println!("{:10} | {:>7} | {:>7}", "Method", "AUC", "AP");
    for (name, emb) in [
        ("GraphMAE", &graphmae),
        ("MaskGAE", &maskgae),
        ("GCMAE", &gcmae),
    ] {
        let (auc, ap) = finetuned_eval(emb, &split, 0);
        println!("{name:10} | {:>6.2}% | {:>6.2}%", auc * 100.0, ap * 100.0);
    }
}
