//! Serving quickstart: train a checkpoint, stand up the embedding server,
//! and query it — embeddings, link scores, top-k neighbors, and a live graph
//! update — all in one process.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use gcmae_repro::core::{GcmaeConfig, TrainSession};
use gcmae_repro::graph::generators::citation::{generate, CitationSpec};
use gcmae_repro::serve::{Client, Engine, Server};

fn main() {
    // 1. Train a small GCMAE checkpoint.
    let ds = generate(&CitationSpec::cora().scaled(0.05), 0);
    let cfg = GcmaeConfig {
        epochs: 5,
        ..GcmaeConfig::fast()
    };
    println!(
        "training on {} nodes / {} edges",
        ds.num_nodes(),
        ds.graph.num_edges()
    );
    let trained = TrainSession::new(&cfg)
        .seed(0)
        .run(&ds)
        .expect("unguarded session cannot fail");

    // 2. Serve it. Port 0 picks a free port; max_batch 32 lets the
    //    scheduler coalesce concurrent queries into one encoder forward.
    let engine = Engine::new(trained.model, ds.graph, ds.features).expect("engine");
    let server = Server::start(engine, "127.0.0.1:0", 32).expect("server");
    println!("serving on {}", server.addr());

    // 3. Query it like any remote client would.
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let rows = client.embed(&[0, 1, 2]).expect("embed");
    println!(
        "node 0 embedding starts with {:?}",
        &rows[0][..4.min(rows[0].len())]
    );

    let scores = client.link_scores(&[(0, 1), (0, 2)]).expect("link scores");
    println!("link scores 0-1: {:.4}, 0-2: {:.4}", scores[0], scores[1]);

    // 4. The graph is live: insert an edge and query again. Only the
    //    2-hop neighborhood of the endpoints is recomputed.
    let stale = client.add_edges(&[(0, 40)]).expect("add edge");
    println!("edge (0, 40) inserted; {stale} cached embeddings invalidated");

    for (v, s) in client.top_k(0, 3).expect("top-k") {
        println!("node 0 neighbor {v} scores {s:.4}");
    }
    let after = client.embed(&[0]).expect("embed after update");
    println!(
        "node 0 embedding now starts with {:?}",
        &after[0][..4.min(after[0].len())]
    );

    let stats = client.stats().expect("stats");
    println!(
        "server stats: {} nodes, {} edges, cache {} hits / {} misses, {} batches",
        stats.num_nodes, stats.num_edges, stats.cache_hits, stats.cache_misses, stats.batches
    );

    // 5. Live telemetry: per-op request counters and latency histograms.
    let snap = client.metrics().expect("metrics");
    for (name, v) in &snap.counters {
        if name.starts_with("serve.requests.") {
            println!("{name}: {v}");
        }
    }

    client.shutdown().expect("shutdown");
    server.run_until_shutdown();
    println!("done");
}
