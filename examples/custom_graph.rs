//! Bring your own graph: build a [`Dataset`] from raw edges and features,
//! pre-train GCMAE on it, checkpoint the parameters, and reuse the
//! embeddings — the adoption path for downstream users.
//!
//! ```sh
//! cargo run --release --example custom_graph
//! ```

use gcmae_core::{GcmaeConfig, TrainSession};
use gcmae_graph::{Dataset, Graph};
use gcmae_nn::{load_params, save_params};
use gcmae_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- 1. your data: an edge list and a feature row per node ------------
    // here: two ring communities bridged by one edge, with 8-dim features
    let mut rng = StdRng::seed_from_u64(0);
    let n = 60;
    let mut edges = vec![];
    for i in 0..30usize {
        edges.push((i, (i + 1) % 30));
        edges.push((30 + i, 30 + (i + 1) % 30));
        // a few chords inside each community
        if i % 5 == 0 {
            edges.push((i, (i + 7) % 30));
            edges.push((30 + i, 30 + (i + 11) % 30));
        }
    }
    edges.push((0, 30)); // the bridge
                         // `try_from_edges` reports *which* edge is malformed instead of panicking,
                         // which is what you want when the edge list comes from user data.
    let graph = Graph::try_from_edges(n, &edges).expect("edge list references valid nodes");
    let features = Matrix::from_fn(n, 8, |r, c| {
        let community = if r < 30 { 0.0f32 } else { 1.0 };
        community * ((c % 2) as f32) + rng.gen_range(-0.2f32..0.2)
    });
    let labels: Vec<usize> = (0..n).map(|v| usize::from(v >= 30)).collect();
    let ds = Dataset {
        name: "custom".into(),
        graph,
        features,
        labels,
        num_classes: 2,
    };
    ds.validate();

    // --- 2. pre-train -----------------------------------------------------
    let cfg = GcmaeConfig {
        epochs: 60,
        hidden_dim: 16,
        proj_dim: 8,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_core::Objective::paper().with_dense_caps(0, 60));
    let out = TrainSession::new(&cfg)
        .seed(0)
        .run(&ds)
        .expect("unguarded session cannot fail");
    println!(
        "trained {} epochs, loss {:.3} -> {:.3}",
        cfg.epochs,
        out.history.first().unwrap().total,
        out.history.last().unwrap().total
    );

    // --- 3. checkpoint and restore ----------------------------------------
    let bytes = save_params(&out.model.store);
    println!("checkpoint: {} bytes", bytes.len());
    let mut rng2 = gcmae_core::model::seeded_rng(0);
    let mut fresh = gcmae_core::Gcmae::new(&cfg, ds.feature_dim(), &mut rng2);
    load_params(&mut fresh.store, bytes).expect("architectures match");
    let emb_restored = fresh.encode_dataset(&ds);
    let diff = out.embeddings.max_abs_diff(&emb_restored);
    println!("restored-model embedding drift: {diff:e}");
    assert!(diff < 1e-6, "checkpoint roundtrip must be exact");

    // --- 4. the embeddings separate the two communities --------------------
    let mean = |range: std::ops::Range<usize>, c: usize| -> f32 {
        range.clone().map(|r| out.embeddings[(r, c)]).sum::<f32>() / range.len() as f32
    };
    let gap: f32 = (0..16)
        .map(|c| (mean(0..30, c) - mean(30..60, c)).abs())
        .sum::<f32>()
        / 16.0;
    println!("mean per-dimension community gap: {gap:.3}");
}
