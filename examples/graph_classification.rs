//! Graph classification: pre-train GCMAE on a collection of small graphs
//! (MUTAG-like molecules) and classify whole graphs with an SVM over the
//! mean-pooled embeddings — the Table 7 protocol.
//!
//! ```sh
//! cargo run --release --example graph_classification
//! ```

use gcmae_baselines::graph_level::graphcl;
use gcmae_baselines::SslConfig;
use gcmae_core::{train_graph_level, GcmaeConfig};
use gcmae_eval::{cross_validate, SvmConfig};
use gcmae_graph::generators::collection::{generate, CollectionSpec};

fn main() {
    let collection = generate(&CollectionSpec::mutag(), 42);
    println!(
        "{}: {} graphs, {} classes, {:.1} avg nodes",
        collection.name,
        collection.len(),
        collection.num_classes,
        collection.avg_nodes()
    );

    let gc = GcmaeConfig {
        epochs: 20,
        hidden_dim: 64,
        proj_dim: 32,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_core::Objective::paper().with_dense_caps(256, 256));
    let ssl = SslConfig {
        epochs: 20,
        hidden_dim: 64,
        proj_dim: 32,
        contrast_sample: 0,
        ..SslConfig::default()
    };

    let gcmae_emb = train_graph_level(&collection, &gc, 32, 0);
    let graphcl_emb = graphcl::train(&collection, &ssl, 32, 0);

    println!("{:10} | 5-fold SVM accuracy", "Method");
    for (name, emb) in [("GraphCL", &graphcl_emb), ("GCMAE", &gcmae_emb)] {
        let (mean, std) = cross_validate(
            emb,
            &collection.labels,
            collection.num_classes,
            5,
            &SvmConfig::default(),
            0,
        );
        println!("{name:10} | {:.1}% ± {:.1}%", mean * 100.0, std * 100.0);
    }
}
