//! Node clustering: the Figure 1 experiment — cluster frozen embeddings of
//! GCMAE, GraphMAE, and CCA-SSG with k-means and compare NMI/ARI.
//!
//! ```sh
//! cargo run --release --example node_clustering
//! ```

use gcmae_baselines::{cca_ssg, SslConfig};
use gcmae_core::{GcmaeConfig, TrainSession};
use gcmae_eval::kmeans;
use gcmae_eval::metrics::clustering::{ari, nmi};
use gcmae_eval::pca;
use gcmae_graph::generators::citation::{generate, CitationSpec};

fn main() {
    let ds = generate(&CitationSpec::cora().scaled(0.25), 42);
    println!(
        "{}: {} nodes, {} classes",
        ds.name,
        ds.num_nodes(),
        ds.num_classes
    );

    // calibrated loss weights (see DESIGN.md "Loss weights")
    let gc = GcmaeConfig {
        epochs: 80,
        hidden_dim: 64,
        proj_dim: 32,
        ..GcmaeConfig::default()
    }
    .with_objective(gcmae_core::Objective::paper().with_weights(0.3, 0.1, 0.2));
    let mae_cfg = gc
        .clone()
        .without_contrastive()
        .without_struct_recon()
        .without_discrimination();
    let ssl = SslConfig {
        epochs: 80,
        hidden_dim: 64,
        proj_dim: 32,
        ..SslConfig::default()
    };

    let gcmae_run = |cfg: &GcmaeConfig| {
        TrainSession::new(cfg)
            .seed(0)
            .run(&ds)
            .expect("unguarded session cannot fail")
            .embeddings
    };
    let runs = [
        ("CCA-SSG", cca_ssg::train(&ds, &ssl, 0)),
        ("GraphMAE", gcmae_run(&mae_cfg)),
        ("GCMAE", gcmae_run(&gc)),
    ];
    println!("{:10} | {:>7} | {:>7}", "Method", "NMI", "ARI");
    for (name, emb) in &runs {
        let km = kmeans(emb, ds.num_classes, 100, 0);
        println!(
            "{name:10} | {:>6.2}% | {:>6.2}%",
            nmi(&km.assignments, &ds.labels) * 100.0,
            ari(&km.assignments, &ds.labels) * 100.0
        );
    }

    // 2-D projection of the best method's embeddings (the paper's Figure 1
    // scatter, with PCA substituting t-SNE): print the per-class centroids
    // so separation is visible in the terminal.
    let coords = pca(&runs[2].1, 2, 0);
    let mut centroids = vec![(0.0f32, 0.0f32, 0usize); ds.num_classes];
    for v in 0..ds.num_nodes() {
        let c = ds.labels[v];
        centroids[c].0 += coords[(v, 0)];
        centroids[c].1 += coords[(v, 1)];
        centroids[c].2 += 1;
    }
    println!("GCMAE class centroids in PCA space:");
    for (c, (x, y, n)) in centroids.iter().enumerate() {
        println!(
            "  class {c}: ({:+.2}, {:+.2})",
            x / *n as f32,
            y / *n as f32
        );
    }
}
