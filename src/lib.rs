//! # gcmae-repro
//!
//! Workspace facade for the GCMAE reproduction: re-exports the public API of
//! every crate so the examples and integration tests read naturally.
//!
//! * [`tensor`] — dense matrices, CSR, autograd tape
//! * [`graph`] — graphs, generators, augmentations, splits
//! * [`nn`] — GNN layers and optimizers
//! * [`core`] — the GCMAE model and trainers
//! * [`baselines`] — the 17 comparison methods
//! * [`eval`] — probes, SVM, k-means, metrics
//! * [`serve`] — online inference: micro-batched embedding server
//! * [`obs`] — structured telemetry: observers, registries, JSON-lines sinks

pub use gcmae_baselines as baselines;
pub use gcmae_core as core;
pub use gcmae_eval as eval;
pub use gcmae_graph as graph;
pub use gcmae_nn as nn;
pub use gcmae_obs as obs;
pub use gcmae_serve as serve;
pub use gcmae_tensor as tensor;
